"""Scenario: hospitals with different disease mixes (label skew).

The paper's motivating example: hospitals specialize, so their patient
record distributions differ — label distribution skew.  We simulate ten
"hospitals" holding Dirichlet-skewed shares of a diagnostic task, ask the
Figure 6 decision tree which algorithm to use, then measure all four and
compare.

Run:  python examples/hospital_label_skew.py     (~1 minute on CPU)
"""

import numpy as np

from repro import run_federated_experiment
from repro.data import load_dataset
from repro.experiments import SkewDescription, recommend_algorithm
from repro.experiments.scale import ScalePreset
from repro.partition import DistributionBasedLabelSkew, stats

PRESET = ScalePreset(
    name="hospitals", n_train=800, n_test=400, num_rounds=8, local_epochs=3, batch_size=32
)
BETA = 0.3  # strong specialization


def main() -> None:
    # First, profile the skew the hospitals actually have (paper 6.1:
    # "light-weight data techniques for profiling non-IID data").
    train, _, info = load_dataset("covtype", n_train=PRESET.n_train, seed=0)
    partition = DistributionBasedLabelSkew(BETA).partition(
        train, 10, np.random.default_rng(17)
    )
    description = SkewDescription(
        label_skew=stats.label_skew_index(partition, train.labels, info.num_classes),
        quantity_skew=stats.quantity_skew_index(partition),
        min_classes_per_party=int(
            stats.effective_classes_per_party(
                partition, train.labels, info.num_classes
            ).min()
        ),
    )
    recommendation = recommend_algorithm(description)
    print(f"measured label skew (KL): {description.label_skew:.3f}")
    print(f"measured quantity skew (CV): {description.quantity_skew:.3f}")
    print(f"decision-tree recommendation: {recommendation}\n")

    # Then measure every algorithm on the same federation.
    results = {}
    for algorithm in ("fedavg", "fedprox", "scaffold", "fednova"):
        outcome = run_federated_experiment(
            dataset="covtype",
            partition=DistributionBasedLabelSkew(BETA),
            algorithm=algorithm,
            preset=PRESET,
            lr=0.1,
            seed=17,
            algorithm_kwargs={"mu": 0.01} if algorithm == "fedprox" else None,
        )
        results[algorithm] = outcome
        curve = " ".join(f"{a:.2f}" for a in outcome.history.accuracies)
        print(f"{algorithm:9s}: final {outcome.final_accuracy:.3f}  curve: {curve}")

    best = max(results, key=lambda a: results[a].final_accuracy)
    print(f"\nbest measured algorithm: {best}")
    print(
        "Note: the paper's Finding 2 — no algorithm wins everywhere — means "
        "the recommendation is a prior, not a guarantee."
    )


if __name__ == "__main__":
    main()
