"""Scenario: benchmark several algorithms and maintain a leaderboard.

The paper maintains a public leaderboard ranking FL algorithms per
non-IID setting.  This example runs a small slice of the Table 3 matrix
(two datasets x three partitions x three algorithms), persists every run
in a result store, and renders the leaderboard with the paper-style
"number of times that performs best" tally.

Run:  python examples/benchmark_leaderboard.py     (~2 minutes on CPU)
"""

import tempfile

from repro.experiments import run_federated_experiment
from repro.experiments.scale import ScalePreset
from repro.experiments.store import ResultStore
from repro.experiments.table3 import settings_matrix

PRESET = ScalePreset(
    name="board", n_train=500, n_test=300, num_rounds=6, local_epochs=3, batch_size=32
)
DATASETS = ("mnist", "adult")
PARTITIONS = ("iid", "dir(0.5)", "quantity(0.5)")
ALGORITHMS = ("fedavg", "fedprox", "scaffold")


def main() -> None:
    store = ResultStore(tempfile.mkdtemp(prefix="repro-leaderboard-"))
    for dataset, partition in settings_matrix(DATASETS, PARTITIONS):
        for algorithm in ALGORITHMS:
            outcome = run_federated_experiment(
                dataset,
                partition,
                algorithm,
                preset=PRESET,
                lr=0.1 if dataset == "adult" else None,
                seed=31,
                algorithm_kwargs={"mu": 0.01} if algorithm == "fedprox" else None,
            )
            store.save(outcome)
            print(
                f"{dataset:6s} {partition:14s} {algorithm:9s} "
                f"final={outcome.final_accuracy:.3f}"
            )

    print(f"\n{len(store)} runs stored in {store.root}\n")
    print(store.leaderboard().render())


if __name__ == "__main__":
    main()
