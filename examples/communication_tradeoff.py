"""Scenario: how much accuracy does each byte on the wire buy?

The paper's Section 5.2 charges algorithms for their communication —
SCAFFOLD transmits twice the payload of FedAvg per round.  With the
:mod:`repro.comm` codecs the same accounting extends to compressed
updates: we run one MNIST label-skew cell under the default codec
ladder (uncompressed float32, float16, 4-bit QSGD, top-10% with error
feedback) and plot accuracy against *measured* cumulative megabytes.

Run:  python examples/communication_tradeoff.py    (~1 minute on CPU)
"""

from repro.experiments.comm import communication_sweep
from repro.experiments.scale import ScalePreset

PRESET = ScalePreset(
    name="comm-tradeoff", n_train=700, n_test=300, num_rounds=10, local_epochs=2, batch_size=32
)


def main() -> None:
    sweep = communication_sweep(
        dataset="mnist",
        partition="#C=2",
        algorithm="fedavg",
        preset=PRESET,
        seed=7,
    )
    print(sweep.to_text())
    print()
    ratios = sweep.compression_ratios()
    for label, ratio in ratios.items():
        print(f"  {label:16s} {100 * ratio:5.1f}% of the uncompressed bytes")
    print()
    print(sweep.chart(height=12, width=64))
    print()
    best_cheap = min(
        (label for label in ratios if ratios[label] < 0.5),
        key=lambda label: ratios[label],
    )
    finals = sweep.final_accuracies()
    print(
        f"{best_cheap} sends {100 * ratios[best_cheap]:.1f}% of the bytes and "
        f"still reaches {finals[best_cheap]:.3f} "
        f"(vs {finals['identity']:.3f} uncompressed)."
    )


if __name__ == "__main__":
    main()
