"""Scenario: a federation that also wants differential privacy.

The paper's Section 6.1: FL hides raw data but models can still leak;
"techniques such as differential privacy are useful to protect the local
databases", at some accuracy cost.  This example trains the same
label-skewed federation at several DP noise levels and prints the
privacy-utility frontier with the coarse epsilon estimate.

Run:  python examples/private_federation.py     (~1 minute on CPU)
"""

from repro.data import load_dataset
from repro.federated import (
    DifferentialPrivacy,
    FedAvg,
    FederatedConfig,
    FederatedServer,
    approximate_epsilon,
    make_clients,
)
from repro.models import build_model
from repro.partition import parse_strategy

import numpy as np

ROUNDS = 6
LOCAL_EPOCHS = 3
NOISE_LEVELS = (0.0, 0.3, 1.0, 3.0)


def main() -> None:
    train, test, info = load_dataset("mnist", n_train=600, n_test=300, seed=8)
    partition = parse_strategy("dir(0.5)").partition(train, 10, np.random.default_rng(8))

    print(f"{'noise':>6s} | {'final acc':>9s} | {'~epsilon (coarse upper bound)':>30s}")
    print("-" * 52)
    for noise in NOISE_LEVELS:
        dp = None
        if noise > 0:
            dp = DifferentialPrivacy(clip_norm=1.0, noise_multiplier=noise, seed=8)
        clients = make_clients(partition, train, seed=8, drop_empty=True)
        model = build_model("cnn", info, seed=8)
        config = FederatedConfig(
            num_rounds=ROUNDS, local_epochs=LOCAL_EPOCHS, batch_size=32,
            lr=0.01, seed=8, dp=dp,
        )
        server = FederatedServer(model, FedAvg(), clients, config, test_dataset=test)
        history = server.fit()
        steps = ROUNDS * LOCAL_EPOCHS * 2  # ~2 batches per epoch per party
        if noise == 0:
            epsilon_text = "inf (no privacy)"
        else:
            epsilon = approximate_epsilon(steps, sample_rate=0.5, noise_multiplier=noise)
            epsilon_text = f"{epsilon:,.0f}"
        print(f"{noise:6.1f} | {history.final_accuracy:9.3f} | {epsilon_text:>30s}")

    print(
        "\nThe trade-off the paper's Section 6.1 calls a 'challenging research"
        "\ndirection': each step down in epsilon costs accuracy."
    )


if __name__ == "__main__":
    main()
