"""Scenario: multi-writer handwriting recognition (feature skew).

The paper's other motivating example: "people have different writing
styles even for the same word" — feature distribution skew.  We build the
FEMNIST stand-in (digits carrying writer IDs, each writer with a distinct
shear/thickness/intensity style), partition *by writer* so every party is
a disjoint group of writers, and compare FedAvg against SCAFFOLD — the
algorithm Figure 6 recommends for feature skew.

Run:  python examples/handwriting_ocr_writers.py    (~1 minute on CPU)
"""

import numpy as np

from repro import run_federated_experiment
from repro.data import load_dataset
from repro.experiments import recommend_algorithm
from repro.experiments.scale import ScalePreset
from repro.partition import RealWorldFeatureSkew

PRESET = ScalePreset(
    name="ocr", n_train=800, n_test=400, num_rounds=8, local_epochs=3, batch_size=32
)
NUM_WRITERS = 30


def main() -> None:
    train, _, info = load_dataset(
        "femnist", n_train=PRESET.n_train, n_test=PRESET.n_test,
        num_writers=NUM_WRITERS, seed=3,
    )
    partition = RealWorldFeatureSkew().partition(train, 10, np.random.default_rng(3))
    print(f"{NUM_WRITERS} writers across {partition.num_parties} parties")
    for party, idx in enumerate(partition.indices[:3]):
        writers = np.unique(train.groups[idx])
        print(f"  party {party}: writers {list(writers)} ({len(idx)} samples)")
    print("  ...")
    print(f"decision-tree recommendation: {recommend_algorithm('real-world')}\n")

    for algorithm in ("fedavg", "scaffold"):
        outcome = run_federated_experiment(
            dataset="femnist",
            partition="real-world",
            algorithm=algorithm,
            preset=PRESET,
            seed=3,
            dataset_kwargs={"num_writers": NUM_WRITERS},
        )
        curve = " ".join(f"{a:.2f}" for a in outcome.history.accuracies)
        print(f"{algorithm:9s}: final {outcome.final_accuracy:.3f}  curve: {curve}")


if __name__ == "__main__":
    main()
