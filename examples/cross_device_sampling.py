"""Scenario: cross-device federation with partial participation.

The paper's scalability study (Section 5.6 / Figure 12): many parties, a
small fraction sampled each round.  We run 30 parties with 10% sampling
and show the two effects of Finding 8: training curves destabilize, and
SCAFFOLD — whose control variates update only when a party is sampled —
falls behind the FedAvg family.

Run:  python examples/cross_device_sampling.py    (~1 minute on CPU)
"""

from repro import run_federated_experiment
from repro.experiments.scale import ScalePreset

PRESET = ScalePreset(
    name="cross-device", n_train=900, n_test=400, num_rounds=15, local_epochs=2, batch_size=32
)
NUM_PARTIES = 30
SAMPLE_FRACTION = 0.1


def main() -> None:
    print(
        f"{NUM_PARTIES} parties, {int(SAMPLE_FRACTION * NUM_PARTIES)} sampled "
        f"per round, label skew dir(0.5)\n"
    )
    results = {}
    for algorithm in ("fedavg", "fedprox", "scaffold"):
        outcome = run_federated_experiment(
            dataset="mnist",
            partition="dir(0.5)",
            algorithm=algorithm,
            preset=PRESET,
            num_parties=NUM_PARTIES,
            sample_fraction=SAMPLE_FRACTION,
            seed=23,
            algorithm_kwargs={"mu": 0.01} if algorithm == "fedprox" else None,
        )
        results[algorithm] = outcome
        curve = " ".join(f"{a:.2f}" for a in outcome.history.accuracies)
        print(
            f"{algorithm:8s}: final {outcome.final_accuracy:.3f}  "
            f"instability {outcome.history.accuracy_instability():.3f}\n"
            f"          curve: {curve}"
        )

    # Contrast with full participation.
    full = run_federated_experiment(
        dataset="mnist",
        partition="dir(0.5)",
        algorithm="fedavg",
        preset=PRESET,
        num_parties=NUM_PARTIES,
        sample_fraction=1.0,
        seed=23,
    )
    print(
        f"\nfull participation fedavg: final {full.final_accuracy:.3f}  "
        f"instability {full.history.accuracy_instability():.3f}"
    )
    print(
        "Partial participation raises instability "
        f"({results['fedavg'].history.accuracy_instability():.3f} vs "
        f"{full.history.accuracy_instability():.3f}) — the paper's Finding 8."
    )


if __name__ == "__main__":
    main()
