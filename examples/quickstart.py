"""Quickstart: partition a dataset, train federated, inspect the result.

Runs one small FedAvg experiment on the MNIST stand-in under the paper's
``#C=2`` label-skew partition (each party holds samples of two digits),
then prints the partition report and the per-round accuracy curve.

Run:  python examples/quickstart.py        (~15 seconds on a laptop CPU)
"""

from repro import run_federated_experiment
from repro.experiments.scale import ScalePreset
from repro.partition import stats


def main() -> None:
    preset = ScalePreset(
        name="quickstart",
        n_train=800,
        n_test=400,
        num_rounds=6,
        local_epochs=3,
        batch_size=32,
    )
    outcome = run_federated_experiment(
        dataset="mnist",
        partition="#C=2",
        algorithm="fedavg",
        preset=preset,
        seed=0,
    )

    print("== partition ==")
    train_labels_report = stats.report(
        outcome.partition_result,
        labels=_reload_labels(outcome),
        num_classes=outcome.info.num_classes,
    )
    print(train_labels_report.to_text())

    print("\n== training ==")
    for record in outcome.history.records:
        print(
            f"round {record.round_index:2d}: "
            f"test accuracy {record.test_accuracy:.3f}, "
            f"mean local loss {record.train_loss:.3f}"
        )
    print(f"\nfinal accuracy: {outcome.final_accuracy:.3f}")


def _reload_labels(outcome):
    # The runner generated the dataset from (name, sizes, seed); regenerate
    # to fetch the labels for the report.
    from repro.data import load_dataset

    train, _, _ = load_dataset(
        outcome.dataset,
        n_train=outcome.info.num_train,
        n_test=outcome.info.num_test,
        seed=outcome.seed,
    )
    return train.labels


if __name__ == "__main__":
    main()
