"""Typed, content-addressed experiment specification (``RunSpec``).

Every experiment this repository can run — a Table 3 cell, a codec
ladder point, a dropout sweep entry — is one :class:`RunSpec`: a nested,
serializable value object covering data, partition, model, algorithm,
training, communication, fault and execution settings plus the seed.
The spec is the single currency between layers:

- the CLI parses flags (or a ``--spec file.json``) into a ``RunSpec``;
- :func:`repro.experiments.runner.run_spec` executes one;
- sweeps and the Table 3 driver generate matrix cells with
  :meth:`RunSpec.with_overrides` instead of threading keyword arguments;
- :class:`repro.experiments.store.ResultStore` keys saved runs by
  :meth:`RunSpec.run_id` and embeds the full spec in every record.

Content addressing
------------------
``run_id()`` is a deterministic hash of the spec's *scientific* content:
canonical JSON (sorted keys, no whitespace) fed through SHA-256.  It is
stable across processes and ``PYTHONHASHSEED`` values, and it changes
when any result-affecting field changes.  The :class:`ExecSpec` section
(executor backend, worker count, checkpoint cadence) is deliberately
excluded: executors are bitwise-identical by contract, so two runs
differing only in how they were scheduled share one ``run_id`` — a
result computed serially satisfies a parallel sweep's cache lookup.

Validation happens against the unified component registries
(:mod:`repro.registry`), so a spec naming an unknown dataset, model,
algorithm or codec fails fast with the live list of alternatives.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any


def _freeze_kwargs(kwargs: dict | None) -> dict:
    """Copy a kwargs mapping, insisting on JSON-compatible content."""
    kwargs = dict(kwargs or {})
    try:
        json.dumps(kwargs, sort_keys=True)
    except (TypeError, ValueError):
        raise TypeError(
            f"spec kwargs must be JSON-serializable, got {kwargs!r}"
        ) from None
    return kwargs


@dataclass(frozen=True)
class DataSpec:
    """Which dataset, at what size."""

    name: str
    n_train: int | None = None
    n_test: int | None = None
    #: generator extras (``num_writers`` for femnist, ``num_features``
    #: for rcv1, ...) — must be JSON-serializable
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class PartitionSpec:
    """How the dataset is split across parties."""

    #: the paper's strategy notation (``"iid"``, ``"#C=2"``, ``"dir(0.5)"``)
    strategy: str
    num_parties: int = 10


@dataclass(frozen=True)
class ModelSpec:
    """Which model the parties train."""

    #: a registered model name, or ``"default"`` for the paper's
    #: per-modality choice (CNN for images, MLP for tabular)
    name: str = "default"
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class AlgorithmSpec:
    """Which federated optimization algorithm, with its knobs."""

    name: str
    #: algorithm-specific settings (``mu`` for fedprox, ``option`` for
    #: scaffold, ``server_momentum``/``variant`` for fedopt)
    kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class TrainSpec:
    """The training protocol of a run (paper Section 5 knobs)."""

    num_rounds: int
    local_epochs: int
    batch_size: int
    lr: float
    optimizer: str = "sgd"
    sample_fraction: float = 1.0
    sampler: str = "uniform"
    bn_policy: str = "average"
    eval_every: int = 1


@dataclass(frozen=True)
class CommSpec:
    """Update-compression settings (see :mod:`repro.comm`)."""

    codec: str = "identity"
    bits: int = 8
    k: float = 0.1


@dataclass(frozen=True)
class FaultSpec:
    """Fault-injection settings (see :mod:`repro.federated.faults`)."""

    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 1.0
    crash_prob: float = 0.0
    deadline: float | None = None


@dataclass(frozen=True)
class PopulationSpec:
    """Population scale and aggregation mode (the async-engine axes).

    With ``size=None`` and ``aggregation="sync"`` (the defaults) the run
    is the classic partition-based synchronous federation and this
    section contributes nothing.  Setting ``size`` switches the run to a
    lazy :class:`~repro.federated.population.VirtualPopulation` of that
    many parties (the ``partition`` section's strategy is then ignored —
    per-party data comes from the closed-form ``(seed, party)`` draws);
    ``aggregation="async"`` runs the virtual-clock buffered engine
    (:class:`~repro.federated.async_engine.AsyncFederation`) — with or
    without a virtual population.
    """

    #: total parties; None = materialize clients from the partition
    size: int | None = None
    #: cohort size (clients concurrently in flight) for the async
    #: engine; None derives it from ``train.sample_fraction``
    sample_per_round: int | None = None
    #: local dataset size per virtual party
    samples_per_client: int = 64
    #: Dirichlet label-skew beta for virtual parties (None = iid)
    skew_beta: float | None = None
    #: "sync" (barrier rounds) or "async" (FedBuff-style buffering)
    aggregation: str = "sync"
    #: async buffer M; None = the cohort (an exact barrier)
    buffer_size: int | None = None
    #: staleness discount exponent for mixed-version async flushes
    staleness_exponent: float = 0.0


@dataclass(frozen=True)
class ExecSpec:
    """How a run is executed — excluded from :meth:`RunSpec.run_id`.

    Executors are bitwise-identical by contract and checkpointing does
    not change results, so none of these fields affect the History a
    spec produces.
    """

    executor: str = "auto"
    num_workers: int = 0
    #: clients per stack for ``executor="stacked"``
    stack_size: int = 16
    #: max drift the stacked executor's serial-vs-stacked check accepts
    #: (0.0 = bitwise, the contract on hosts with slice-exact kernels)
    stacked_tolerance: float = 0.0
    checkpoint_every: int = 0
    checkpoint_path: str | None = None
    #: capture & replay training/inference steps (bitwise-identical to
    #: eager by contract, hence exec-section; see repro.grad.capture)
    compile: bool = False
    #: run the program optimizer on captured steps (arena planning,
    #: dead-op elimination, constant interning — bitwise-identical by
    #: construction; ``--no-optimize`` is the escape hatch)
    optimize: bool = True


#: RunSpec section name -> section dataclass (the order of to_dict output)
SECTIONS = {
    "data": DataSpec,
    "partition": PartitionSpec,
    "model": ModelSpec,
    "algorithm": AlgorithmSpec,
    "train": TrainSpec,
    "comm": CommSpec,
    "faults": FaultSpec,
    "population": PopulationSpec,
    "exec": ExecSpec,
}

#: flat override name -> (section, field) accepted by ``with_overrides``.
#: ``seed`` lives on the RunSpec itself; ``mu`` is an algorithm-kwargs
#: convenience alias registered separately below.
OVERRIDE_PATHS: dict[str, tuple[str | None, str]] = {
    "dataset": ("data", "name"),
    "n_train": ("data", "n_train"),
    "n_test": ("data", "n_test"),
    "dataset_kwargs": ("data", "kwargs"),
    "partition": ("partition", "strategy"),
    "num_parties": ("partition", "num_parties"),
    "model": ("model", "name"),
    "model_kwargs": ("model", "kwargs"),
    "algorithm": ("algorithm", "name"),
    "algorithm_kwargs": ("algorithm", "kwargs"),
    "num_rounds": ("train", "num_rounds"),
    "local_epochs": ("train", "local_epochs"),
    "batch_size": ("train", "batch_size"),
    "lr": ("train", "lr"),
    "optimizer": ("train", "optimizer"),
    "sample_fraction": ("train", "sample_fraction"),
    "sampler": ("train", "sampler"),
    "bn_policy": ("train", "bn_policy"),
    "eval_every": ("train", "eval_every"),
    "codec": ("comm", "codec"),
    "codec_bits": ("comm", "bits"),
    "codec_k": ("comm", "k"),
    "dropout_prob": ("faults", "dropout_prob"),
    "straggler_prob": ("faults", "straggler_prob"),
    "straggler_factor": ("faults", "straggler_factor"),
    "crash_prob": ("faults", "crash_prob"),
    "deadline": ("faults", "deadline"),
    "population": ("population", "size"),
    "sample_per_round": ("population", "sample_per_round"),
    "samples_per_client": ("population", "samples_per_client"),
    "population_skew_beta": ("population", "skew_beta"),
    "aggregation": ("population", "aggregation"),
    "buffer_size": ("population", "buffer_size"),
    "staleness_exponent": ("population", "staleness_exponent"),
    "executor": ("exec", "executor"),
    "num_workers": ("exec", "num_workers"),
    "stack_size": ("exec", "stack_size"),
    "stacked_tolerance": ("exec", "stacked_tolerance"),
    "checkpoint_every": ("exec", "checkpoint_every"),
    "checkpoint_path": ("exec", "checkpoint_path"),
    "compile": ("exec", "compile"),
    "optimize": ("exec", "optimize"),
    "seed": (None, "seed"),
}


def overridable_names() -> tuple[str, ...]:
    """Every flat name ``with_overrides`` accepts (plus dotted paths)."""
    return tuple(sorted([*OVERRIDE_PATHS, "mu"]))


def _section_to_dict(section) -> dict:
    out = {}
    for f in dataclasses.fields(section):
        value = getattr(section, f.name)
        out[f.name] = dict(value) if isinstance(value, dict) else value
    return out


def _section_from_dict(cls, data: dict):
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - names
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields {sorted(unknown)}; "
            f"known: {sorted(names)}"
        )
    return cls(**data)


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified experiment (see module docstring)."""

    data: DataSpec
    partition: PartitionSpec
    algorithm: AlgorithmSpec
    train: TrainSpec
    model: ModelSpec = field(default_factory=ModelSpec)
    comm: CommSpec = field(default_factory=CommSpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    population: PopulationSpec = field(default_factory=PopulationSpec)
    exec: ExecSpec = field(default_factory=ExecSpec)
    seed: int = 0

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        dataset: str,
        partition,
        algorithm: str,
        *,
        model: str = "default",
        num_parties: int | None = None,
        preset=None,
        num_rounds: int | None = None,
        local_epochs: int | None = None,
        batch_size: int | None = None,
        lr: float | None = None,
        sample_fraction: float = 1.0,
        sampler: str = "uniform",
        optimizer: str = "sgd",
        bn_policy: str = "average",
        executor: str = "auto",
        num_workers: int = 0,
        stack_size: int = 16,
        stacked_tolerance: float = 0.0,
        codec: str = "identity",
        codec_bits: int = 8,
        codec_k: float = 0.1,
        dropout_prob: float = 0.0,
        straggler_prob: float = 0.0,
        straggler_factor: float = 1.0,
        crash_prob: float = 0.0,
        deadline: float | None = None,
        population: int | None = None,
        sample_per_round: int | None = None,
        samples_per_client: int = 64,
        population_skew_beta: float | None = None,
        aggregation: str = "sync",
        buffer_size: int | None = None,
        staleness_exponent: float = 0.0,
        checkpoint_every: int = 0,
        checkpoint_path: str | None = None,
        compile: bool = False,
        optimize: bool = True,
        seed: int = 0,
        algorithm_kwargs: dict | None = None,
        model_kwargs: dict | None = None,
        dataset_kwargs: dict | None = None,
        eval_every: int = 1,
    ) -> "RunSpec":
        """Resolve runner-style keyword arguments into a concrete spec.

        This is the single place preset defaults, the per-dataset paper
        learning rate, and the partitioner's default party count are
        applied — the spec that comes out holds only concrete values, so
        its :meth:`run_id` does not depend on how it was phrased.

        ``partition`` may be a strategy string or a
        :class:`~repro.partition.base.Partitioner` instance (recorded
        via its canonical ``spec_string()``).
        """
        from repro.experiments.runner import paper_lr_for
        from repro.experiments.scale import BENCH
        from repro.partition import parse_strategy
        from repro.partition.base import Partitioner

        if preset is None:
            preset = BENCH
        if isinstance(partition, Partitioner):
            partitioner, strategy = partition, partition.spec_string()
        else:
            strategy = str(partition)
            partitioner = parse_strategy(strategy)
        if num_parties is None:
            num_parties = partitioner.default_num_parties

        dataset_kwargs = dict(dataset_kwargs or {})
        n_train = dataset_kwargs.pop("n_train", preset.n_train)
        n_test = dataset_kwargs.pop("n_test", preset.n_test)
        if dataset.lower().replace("-", "") == "fcube":
            # FCUBE is defined at its paper size; keep it unless asked.
            n_train = n_test = None

        return cls(
            data=DataSpec(
                name=dataset,
                n_train=n_train,
                n_test=n_test,
                kwargs=_freeze_kwargs(dataset_kwargs),
            ),
            partition=PartitionSpec(strategy=strategy, num_parties=num_parties),
            model=ModelSpec(name=model, kwargs=_freeze_kwargs(model_kwargs)),
            algorithm=AlgorithmSpec(
                name=algorithm, kwargs=_freeze_kwargs(algorithm_kwargs)
            ),
            train=TrainSpec(
                num_rounds=num_rounds if num_rounds is not None else preset.num_rounds,
                local_epochs=(
                    local_epochs if local_epochs is not None else preset.local_epochs
                ),
                batch_size=batch_size if batch_size is not None else preset.batch_size,
                lr=lr if lr is not None else paper_lr_for(dataset),
                optimizer=optimizer,
                sample_fraction=sample_fraction,
                sampler=sampler,
                bn_policy=bn_policy,
                eval_every=eval_every,
            ),
            comm=CommSpec(codec=codec, bits=codec_bits, k=codec_k),
            faults=FaultSpec(
                dropout_prob=dropout_prob,
                straggler_prob=straggler_prob,
                straggler_factor=straggler_factor,
                crash_prob=crash_prob,
                deadline=deadline,
            ),
            population=PopulationSpec(
                size=population,
                sample_per_round=sample_per_round,
                samples_per_client=samples_per_client,
                skew_beta=population_skew_beta,
                aggregation=aggregation,
                buffer_size=buffer_size,
                staleness_exponent=staleness_exponent,
            ),
            exec=ExecSpec(
                executor=executor,
                num_workers=num_workers,
                stack_size=stack_size,
                stacked_tolerance=stacked_tolerance,
                checkpoint_every=checkpoint_every,
                checkpoint_path=checkpoint_path,
                compile=compile,
                optimize=optimize,
            ),
            seed=seed,
        )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict:
        """Plain nested dict, the inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {
            name: _section_to_dict(getattr(self, name)) for name in SECTIONS
        }
        out["seed"] = self.seed
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (e.g. a JSON file).

        Sections and fields may be omitted — defaults fill them — but
        unknown sections or fields are an error, so a typo in a spec
        file cannot silently no-op.
        """
        data = dict(data)
        seed = int(data.pop("seed", 0))
        unknown = set(data) - set(SECTIONS)
        if unknown:
            raise ValueError(
                f"unknown RunSpec sections {sorted(unknown)}; "
                f"known: {sorted([*SECTIONS, 'seed'])}"
            )
        kwargs = {
            name: _section_from_dict(section_cls, data.get(name, {}))
            for name, section_cls in SECTIONS.items()
        }
        return cls(seed=seed, **kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    # -- content addressing ---------------------------------------------

    def canonical_dict(self) -> dict:
        """The hash input: :meth:`to_dict` minus the ``exec`` section."""
        out = self.to_dict()
        del out["exec"]
        return out

    def run_id(self) -> str:
        """Deterministic 16-hex-digit content hash of the spec.

        Stable across processes and ``PYTHONHASHSEED``; identical specs
        (including specs differing only in ``exec``) share it, and any
        change to a scientific field changes it.
        """
        payload = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- derivation ------------------------------------------------------

    def with_overrides(self, **overrides) -> "RunSpec":
        """A copy with the given fields replaced (literal, no re-resolution).

        Accepts the flat names in :data:`OVERRIDE_PATHS` (``lr``,
        ``codec``, ``dropout_prob``, ...), dotted section paths
        (``"train.lr"``), and ``mu`` as a shorthand for the fedprox
        proximal weight in ``algorithm.kwargs``.  Unknown names raise
        ``KeyError`` listing every valid option — a typo'd sweep axis
        fails loudly instead of silently sweeping nothing.
        """
        per_section: dict[str, dict] = {}
        flat: dict[str, Any] = {}
        for name, value in overrides.items():
            if name == "mu":
                merged = dict(self.algorithm.kwargs)
                merged["mu"] = value
                per_section.setdefault("algorithm", {})["kwargs"] = merged
                continue
            if "." in name:
                section, attr = name.split(".", 1)
                if section not in SECTIONS or attr not in {
                    f.name for f in dataclasses.fields(SECTIONS[section])
                }:
                    raise KeyError(
                        f"cannot override {name!r}; overridable: "
                        f"{list(overridable_names())} or section.field paths"
                    )
            elif name in OVERRIDE_PATHS:
                section, attr = OVERRIDE_PATHS[name]
            else:
                raise KeyError(
                    f"cannot override {name!r}; overridable: "
                    f"{list(overridable_names())} or section.field paths"
                )
            if section is None:
                flat[attr] = value
            else:
                per_section.setdefault(section, {})[attr] = value
        replacements: dict[str, Any] = dict(flat)
        for section, attrs in per_section.items():
            replacements[section] = dataclasses.replace(
                getattr(self, section), **attrs
            )
        return dataclasses.replace(self, **replacements)

    def trial_specs(
        self, num_trials: int, base_seed: int = 0, seed_stride: int = 1000
    ) -> list["RunSpec"]:
        """The paper's repeated-trial protocol as concrete specs.

        Pure enumeration — nothing runs.  Trial ``t`` is this spec with
        ``seed = base_seed + seed_stride * t``, exactly the seeds
        :func:`repro.experiments.runner.run_trials` executes, so a
        scheduler can claim the cells, and the store can answer
        ``completed()`` per trial, without ever touching the runner.
        """
        if num_trials <= 0:
            raise ValueError(f"num_trials must be positive, got {num_trials}")
        return [
            self.with_overrides(seed=base_seed + seed_stride * trial)
            for trial in range(num_trials)
        ]

    # -- validation ------------------------------------------------------

    def validate(self) -> "RunSpec":
        """Check names against the component registries and basic ranges.

        Returns ``self`` so call sites can chain
        ``RunSpec.from_dict(...).validate()``.  Deeper numeric checks
        (codec bit ranges, fault probabilities, ...) happen in
        :class:`repro.federated.config.FederatedConfig` at run time.
        """
        from repro.comm.codecs import CODECS
        from repro.data.registry import DATASETS
        from repro.federated.algorithms import ALGORITHMS
        from repro.models.registry import MODELS
        from repro.partition import parse_strategy

        problems = []
        if self.data.name not in DATASETS:
            problems.append(
                f"unknown dataset {self.data.name!r}; "
                f"available: {list(DATASETS.names())}"
            )
        if self.model.name != "default" and self.model.name not in MODELS:
            problems.append(
                f"unknown model {self.model.name!r}; "
                f"available: {list(MODELS.names())}"
            )
        if self.algorithm.name not in ALGORITHMS:
            problems.append(
                f"unknown algorithm {self.algorithm.name!r}; "
                f"available: {list(ALGORITHMS.names())}"
            )
        if self.comm.codec not in CODECS:
            problems.append(
                f"unknown codec {self.comm.codec!r}; "
                f"available: {list(CODECS.names())}"
            )
        try:
            parse_strategy(self.partition.strategy)
        except ValueError as error:
            problems.append(str(error))
        if self.partition.num_parties <= 0:
            problems.append(
                f"num_parties must be positive, got {self.partition.num_parties}"
            )
        for attr in ("num_rounds", "local_epochs", "batch_size"):
            if getattr(self.train, attr) <= 0:
                problems.append(
                    f"train.{attr} must be positive, got {getattr(self.train, attr)}"
                )
        if self.train.lr <= 0:
            problems.append(f"train.lr must be positive, got {self.train.lr}")
        if not 0.0 < self.train.sample_fraction <= 1.0:
            problems.append(
                "train.sample_fraction must be in (0, 1], "
                f"got {self.train.sample_fraction}"
            )
        pop = self.population
        if pop.aggregation not in ("sync", "async"):
            problems.append(
                "population.aggregation must be 'sync' or 'async', "
                f"got {pop.aggregation!r}"
            )
        if pop.size is not None and pop.size <= 0:
            problems.append(
                f"population.size must be positive, got {pop.size}"
            )
        if pop.sample_per_round is not None:
            if pop.sample_per_round <= 0:
                problems.append(
                    "population.sample_per_round must be positive, "
                    f"got {pop.sample_per_round}"
                )
            elif pop.size is not None and pop.sample_per_round > pop.size:
                problems.append(
                    f"population.sample_per_round ({pop.sample_per_round}) "
                    f"exceeds population.size ({pop.size}): cannot sample "
                    "more clients per round than the population holds"
                )
        if pop.samples_per_client <= 0:
            problems.append(
                "population.samples_per_client must be positive, "
                f"got {pop.samples_per_client}"
            )
        if pop.skew_beta is not None and pop.skew_beta <= 0:
            problems.append(
                f"population.skew_beta must be positive, got {pop.skew_beta}"
            )
        if pop.buffer_size is not None:
            if pop.buffer_size <= 0:
                problems.append(
                    f"population.buffer_size must be positive, got {pop.buffer_size}"
                )
            elif (
                pop.sample_per_round is not None
                and pop.buffer_size > pop.sample_per_round
            ):
                problems.append(
                    f"population.buffer_size ({pop.buffer_size}) exceeds the "
                    f"cohort (sample_per_round={pop.sample_per_round})"
                )
        if pop.staleness_exponent < 0:
            problems.append(
                "population.staleness_exponent must be non-negative, "
                f"got {pop.staleness_exponent}"
            )
        if problems:
            raise ValueError("invalid RunSpec:\n  " + "\n  ".join(problems))
        return self

    def describe(self) -> str:
        """One-line human summary: the cell key plus its run id."""
        return (
            f"{self.data.name} / {self.partition.strategy} / "
            f"{self.algorithm.name} / seed {self.seed} "
            f"[{self.run_id()}]"
        )


__all__ = [
    "DataSpec",
    "PartitionSpec",
    "ModelSpec",
    "AlgorithmSpec",
    "TrainSpec",
    "CommSpec",
    "FaultSpec",
    "PopulationSpec",
    "ExecSpec",
    "RunSpec",
    "OVERRIDE_PATHS",
    "overridable_names",
]
