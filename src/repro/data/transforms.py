"""Feature-space transforms.

``gaussian_noise`` implements the paper's noise-based feature imbalance
(Section 4.2): party ``P_i`` receives noise drawn from ``Gau(sigma * i / N)``
where ``Gau(v)`` is a zero-mean Gaussian with *variance* ``v``.
"""

from __future__ import annotations

import numpy as np


def gaussian_noise(
    features: np.ndarray, variance: float, rng: np.random.Generator
) -> np.ndarray:
    """Return ``features`` plus zero-mean Gaussian noise of given variance."""
    if variance < 0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    if variance == 0:
        return features.copy()
    noise = rng.normal(0.0, np.sqrt(variance), size=features.shape)
    return (features + noise).astype(features.dtype)


def party_noise_variance(sigma: float, party_index: int, num_parties: int) -> float:
    """Noise variance for party ``i`` under the paper's ``Gau(sigma)`` scheme.

    The paper adds noise ``Gau(sigma * i / N)`` to party ``P_i``; we index
    parties from 0, so party 0 gets no noise and party ``N-1`` gets
    ``sigma * (N-1)/N`` — matching Figure 4 where lower-indexed parties are
    cleaner.
    """
    if num_parties <= 0:
        raise ValueError("num_parties must be positive")
    if not 0 <= party_index < num_parties:
        raise ValueError(f"party_index {party_index} out of range [0, {num_parties})")
    return sigma * party_index / num_parties


def normalize(features: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Standard (x - mean) / std normalization."""
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    return ((features - mean) / std).astype(features.dtype)


def flatten_images(features: np.ndarray) -> np.ndarray:
    """``(N, C, H, W) -> (N, C*H*W)`` for MLP consumption."""
    return features.reshape(features.shape[0], -1)
