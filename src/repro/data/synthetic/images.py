"""Synthetic image-classification datasets.

Each class is defined by a smooth random *prototype* image (low-frequency
Gaussian field).  A sample is its class prototype, randomly shifted and
scaled, plus pixel noise.  Two knobs control task difficulty:

- ``signal``: amplitude of the prototype relative to the noise — lower
  signal means classes overlap more (CIFAR-10-like).
- ``deform``: magnitude of the random spatial shift — higher deformation
  means more within-class variation.

- ``label_noise``: fraction of observed labels flipped to a random other
  class, in both splits.  Prototype tasks have near-zero Bayes error (the
  aggregate SNR grows with pixel count), so this knob sets the accuracy
  *ceiling* at roughly ``1 - label_noise`` — the mechanism by which each
  stand-in matches its original's centralized accuracy.

The defaults below are calibrated (see ``tests/data/test_learnability.py``)
so that centralized training reproduces the paper's difficulty ordering:
MNIST-like is nearly saturated, CIFAR-10-like is clearly harder.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetInfo


def _smooth_field(
    rng: np.random.Generator, channels: int, size: int, coarse: int = 4
) -> np.ndarray:
    """A smooth random image: coarse Gaussian noise, bilinearly upsampled."""
    grid = rng.standard_normal((channels, coarse, coarse))
    # Bilinear upsample coarse -> size via separable interpolation.
    src = np.linspace(0, coarse - 1, size)
    low = np.floor(src).astype(int)
    high = np.minimum(low + 1, coarse - 1)
    frac = src - low
    rows = grid[:, low, :] * (1 - frac)[None, :, None] + grid[:, high, :] * frac[None, :, None]
    field = (
        rows[:, :, low] * (1 - frac)[None, None, :]
        + rows[:, :, high] * frac[None, None, :]
    )
    return field.astype(np.float32)


def _random_shift(image: np.ndarray, shift: tuple[int, int]) -> np.ndarray:
    """Integer circular shift of an image stack (C, H, W)."""
    return np.roll(image, shift, axis=(1, 2))


def _generate_split(
    rng: np.random.Generator,
    prototypes: np.ndarray,
    labels: np.ndarray,
    signal: float,
    deform: int,
    noise_std: float,
) -> np.ndarray:
    """Render samples for given labels from their class prototypes."""
    n = labels.shape[0]
    channels, size, _ = prototypes.shape[1:]
    images = np.empty((n, channels, size, size), dtype=np.float32)
    shifts = rng.integers(-deform, deform + 1, size=(n, 2)) if deform > 0 else np.zeros((n, 2), int)
    amplitudes = rng.uniform(0.7, 1.3, size=n).astype(np.float32)
    noise = rng.normal(0.0, noise_std, size=images.shape).astype(np.float32)
    for i in range(n):
        proto = prototypes[labels[i]]
        if deform > 0:
            proto = _random_shift(proto, tuple(shifts[i]))
        images[i] = signal * amplitudes[i] * proto
    images += noise
    return images


def _balanced_labels(rng: np.random.Generator, n: int, num_classes: int) -> np.ndarray:
    """Labels covering all classes as evenly as possible, shuffled."""
    base = np.arange(n) % num_classes
    rng.shuffle(base)
    return base.astype(np.int64)


def flip_labels(
    rng: np.random.Generator, labels: np.ndarray, rate: float, num_classes: int
) -> np.ndarray:
    """Flip a ``rate`` fraction of labels to a uniformly random other class."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"label_noise must be in [0, 1), got {rate}")
    if rate == 0.0:
        return labels
    flipped = labels.copy()
    mask = rng.random(labels.shape[0]) < rate
    offsets = rng.integers(1, num_classes, size=int(mask.sum()))
    flipped[mask] = (flipped[mask] + offsets) % num_classes
    return flipped


def make_image_classification(
    name: str,
    num_classes: int,
    channels: int,
    image_size: int,
    n_train: int,
    n_test: int,
    signal: float,
    deform: int,
    noise_std: float,
    seed: int,
    class_probs: np.ndarray | None = None,
    label_noise: float = 0.0,
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Generate a synthetic image-classification dataset.

    Parameters
    ----------
    class_probs:
        Optional class marginal (defaults to balanced classes).  SVHN-like
        uses a skewed marginal mirroring real street-number digit counts.
    label_noise:
        Fraction of observed labels flipped uniformly to another class
        (applied to both splits after rendering, so images always depict
        their true class).  Sets the accuracy ceiling near ``1 - noise``.
    """
    if n_train <= 0 or n_test <= 0:
        raise ValueError("dataset sizes must be positive")
    rng = np.random.default_rng(seed)
    prototypes = np.stack(
        [_smooth_field(rng, channels, image_size) for _ in range(num_classes)]
    )
    if class_probs is None:
        train_labels = _balanced_labels(rng, n_train, num_classes)
        test_labels = _balanced_labels(rng, n_test, num_classes)
    else:
        class_probs = np.asarray(class_probs, dtype=np.float64)
        class_probs = class_probs / class_probs.sum()
        train_labels = rng.choice(num_classes, size=n_train, p=class_probs).astype(np.int64)
        test_labels = rng.choice(num_classes, size=n_test, p=class_probs).astype(np.int64)
        # Guarantee every class appears at least once in each split.
        for k in range(num_classes):
            if not (train_labels == k).any():
                train_labels[rng.integers(n_train)] = k
            if not (test_labels == k).any():
                test_labels[rng.integers(n_test)] = k

    train_x = _generate_split(rng, prototypes, train_labels, signal, deform, noise_std)
    test_x = _generate_split(rng, prototypes, test_labels, signal, deform, noise_std)
    train_labels = flip_labels(rng, train_labels, label_noise, num_classes)
    test_labels = flip_labels(rng, test_labels, label_noise, num_classes)
    info = DatasetInfo(
        name=name,
        modality="image",
        num_classes=num_classes,
        input_shape=(channels, image_size, image_size),
        num_train=n_train,
        num_test=n_test,
        extra={
            "signal": signal,
            "deform": deform,
            "noise_std": noise_std,
            "label_noise": label_noise,
        },
    )
    train = ArrayDataset(train_x, train_labels)
    test = ArrayDataset(test_x, test_labels)
    return train, test, info


def make_mnist_like(
    n_train: int = 4000, n_test: int = 1000, image_size: int = 16, seed: int = 0
):
    """MNIST stand-in: 10 classes, 1 channel, easy (strong signal)."""
    return make_image_classification(
        name="mnist",
        num_classes=10,
        channels=1,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        signal=2.0,
        deform=1,
        noise_std=0.3,
        seed=seed + 101,
        label_noise=0.005,
    )


def make_fmnist_like(
    n_train: int = 4000, n_test: int = 1000, image_size: int = 16, seed: int = 0
):
    """Fashion-MNIST stand-in: like MNIST but with weaker signal."""
    return make_image_classification(
        name="fmnist",
        num_classes=10,
        channels=1,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        signal=1.3,
        deform=1,
        noise_std=0.45,
        seed=seed + 202,
        label_noise=0.10,
    )


def make_cifar10_like(
    n_train: int = 4000, n_test: int = 1000, image_size: int = 16, seed: int = 0
):
    """CIFAR-10 stand-in: 3 channels, weak signal, strong deformation (hard)."""
    return make_image_classification(
        name="cifar10",
        num_classes=10,
        channels=3,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        signal=0.7,
        deform=3,
        noise_std=0.6,
        seed=seed + 303,
        label_noise=0.29,
    )


def make_svhn_like(
    n_train: int = 4000, n_test: int = 1400, image_size: int = 16, seed: int = 0
):
    """SVHN stand-in: 3 channels, medium difficulty, skewed digit marginal.

    Street-number digits follow a Benford-like distribution (1 and 2 far
    more common than 9), which we mirror so quantity effects are realistic.
    """
    benford_like = np.array([0.07, 0.19, 0.15, 0.12, 0.10, 0.09, 0.08, 0.07, 0.07, 0.06])
    return make_image_classification(
        name="svhn",
        num_classes=10,
        channels=3,
        image_size=image_size,
        n_train=n_train,
        n_test=n_test,
        signal=1.1,
        deform=2,
        noise_std=0.5,
        seed=seed + 404,
        class_probs=benford_like,
        label_noise=0.115,
    )
