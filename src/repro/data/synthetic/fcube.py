"""FCUBE: the paper's own synthetic feature-imbalance dataset (Section 4.2).

Data points are uniform in the cube ``[-1, 1]^3`` and labelled by the sign
of ``x1`` (label 0 for ``x1 > 0``, label 1 for ``x1 < 0``, matching
Figure 5 where the upper four cubes have label 0).  The cube splits into
8 octants by the coordinate planes; the companion partitioner in
``repro.partition.feature_skew`` assigns each party a pair of octants
symmetric about the origin, giving feature skew with balanced labels.

``octant_of`` lives here because it is a property of the dataset geometry,
not of the partitioning strategy.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetInfo


def octant_of(points: np.ndarray) -> np.ndarray:
    """Octant index in [0, 8) from the signs of (x1, x2, x3)."""
    points = np.asarray(points)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    bits = (points > 0).astype(int)
    return bits[:, 0] * 4 + bits[:, 1] * 2 + bits[:, 2]


def make_fcube(
    n_train: int = 4000, n_test: int = 1000, seed: int = 0, margin: float = 0.05
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Generate FCUBE at the paper's original size (4,000 / 1,000).

    ``margin`` keeps points away from the decision plane ``x1 = 0`` so the
    task is cleanly separable, as in the paper's visualization.
    """
    if not 0 <= margin < 1:
        raise ValueError(f"margin must be in [0, 1), got {margin}")
    rng = np.random.default_rng(seed + 606)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        points = rng.uniform(-1.0, 1.0, size=(n, 3)).astype(np.float32)
        # Push x1 outside the +-margin band around the separating plane.
        signs = np.sign(points[:, 0])
        signs[signs == 0] = 1.0
        points[:, 0] = signs * (margin + (1 - margin) * np.abs(points[:, 0]))
        labels = (points[:, 0] < 0).astype(np.int64)  # upper half (x1>0) = 0
        return points, labels

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    info = DatasetInfo(
        name="fcube",
        modality="tabular",
        num_classes=2,
        input_shape=(3,),
        num_train=n_train,
        num_test=n_test,
        extra={"margin": margin},
    )
    return ArrayDataset(train_x, train_y), ArrayDataset(test_x, test_y), info
