"""Tabular dataset stand-ins: adult, rcv1 and covtype.

All three are binary classification, like the paper's versions.  Each keeps
the structural property that matters for the experiments:

- ``adult``: 123 sparse binary (one-hot) features, moderately separable,
  class imbalance ~3:1 (the real adult dataset is ~76% negative) — this is
  why the paper's Table 3 shows algorithms collapsing to ~76% accuracy on
  bad runs (majority-class prediction).
- ``rcv1``: high-dimensional sparse bag-of-words.  The paper uses 47,236
  features; we default to 2,000 (dense storage) which preserves the
  "p >> n per party" regime at our reduced scale.  Balanced classes, so a
  collapsed model scores ~50% — matching the paper's degenerate 51.8% rows.
- ``covtype``: 54 dense features (10 continuous + 44 one-hot), binarized
  labels as in the LIBSVM version the paper uses.

Class-conditional distributions are drawn *once* per dataset and shared by
the train and test splits — the splits must be i.i.d. from the same source.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetInfo


class _CategoricalBlocks:
    """Fixed class-conditional one-hot feature blocks.

    Each block is a categorical variable whose distribution depends on the
    binary label; ``mix`` controls how far apart the two class-conditional
    distributions are (0 = identical, 1 = maximally tilted).
    """

    def __init__(self, rng: np.random.Generator, block_sizes: list[int], mix: float):
        if not 0.0 <= mix <= 1.0:
            raise ValueError(f"mix must be in [0, 1], got {mix}")
        self.block_sizes = list(block_sizes)
        self.class_probs: list[tuple[np.ndarray, np.ndarray]] = []
        for size in self.block_sizes:
            base = rng.dirichlet(np.ones(size))
            shift = rng.dirichlet(np.ones(size))
            prob0 = (1 - mix) * base + mix * shift
            prob1 = (1 - mix) * base + mix * shift[::-1]
            self.class_probs.append((prob0, prob1))

    @property
    def num_features(self) -> int:
        return sum(self.block_sizes)

    def sample(self, rng: np.random.Generator, labels: np.ndarray) -> np.ndarray:
        n = labels.shape[0]
        columns = []
        for size, (prob0, prob1) in zip(self.block_sizes, self.class_probs):
            choices = np.where(
                labels == 0,
                rng.choice(size, size=n, p=prob0),
                rng.choice(size, size=n, p=prob1),
            )
            block = np.zeros((n, size), dtype=np.float32)
            block[np.arange(n), choices] = 1.0
            columns.append(block)
        return np.concatenate(columns, axis=1)


def make_adult_like(
    n_train: int = 3000, n_test: int = 1500, seed: int = 0, mix: float = 0.45
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Adult stand-in: 123 binary features, imbalanced binary labels.

    The 23.6% positive rate matches the real dataset, so a collapsed
    majority-class predictor scores 76.4% — the exact degenerate value
    several Table 3 rows report.
    """
    rng = np.random.default_rng(seed + 707)
    positive_rate = 0.236
    blocks = _CategoricalBlocks(rng, [8, 16, 7, 14, 6, 5, 2, 41, 9, 15], mix)
    assert blocks.num_features == 123

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = (rng.random(n) < positive_rate).astype(np.int64)
        return blocks.sample(rng, labels), labels

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    info = DatasetInfo(
        name="adult",
        modality="tabular",
        num_classes=2,
        input_shape=(123,),
        num_train=n_train,
        num_test=n_test,
        extra={"positive_rate": positive_rate, "mix": mix},
    )
    return ArrayDataset(train_x, train_y), ArrayDataset(test_x, test_y), info


def make_rcv1_like(
    n_train: int = 3000,
    n_test: int = 1000,
    num_features: int = 2000,
    seed: int = 0,
    tilt_strength: float = 1.6,
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """RCV1 stand-in: sparse TF-style bag-of-words, balanced binary labels.

    Documents draw ~1.5% of the vocabulary from a class-tilted topic
    distribution; features are L2-normalized term frequencies like the
    LIBSVM rcv1.binary preprocessing.
    """
    if num_features < 10:
        raise ValueError("rcv1-like needs a reasonably large vocabulary")
    rng = np.random.default_rng(seed + 808)
    # Zipfian word popularity shared by both classes, tilted per class.
    popularity = 1.0 / np.arange(1, num_features + 1) ** 0.8
    tilt = rng.permutation(num_features)
    topic0 = popularity * (1.0 + tilt_strength * (tilt < num_features // 2))
    topic1 = popularity * (1.0 + tilt_strength * (tilt >= num_features // 2))
    topic0 /= topic0.sum()
    topic1 /= topic1.sum()
    words_per_doc = max(10, int(0.015 * num_features))

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 2, size=n).astype(np.int64)
        features = np.zeros((n, num_features), dtype=np.float32)
        for i in range(n):
            topic = topic1 if labels[i] else topic0
            words = rng.choice(num_features, size=words_per_doc, p=topic)
            counts = np.bincount(words, minlength=num_features).astype(np.float32)
            features[i] = counts / np.linalg.norm(counts)
        return features, labels

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    info = DatasetInfo(
        name="rcv1",
        modality="tabular",
        num_classes=2,
        input_shape=(num_features,),
        num_train=n_train,
        num_test=n_test,
        extra={"words_per_doc": words_per_doc},
    )
    return ArrayDataset(train_x, train_y), ArrayDataset(test_x, test_y), info


def make_covtype_like(
    n_train: int = 4000,
    n_test: int = 1500,
    seed: int = 0,
    separation: float = 0.55,
    label_noise: float = 0.08,
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Covtype stand-in: 10 continuous + 44 one-hot features, binary labels.

    The continuous block is a two-component Gaussian mixture per class with
    overlapping means (``separation`` controls the overlap).  ``label_noise``
    sets the accuracy ceiling near the paper's 88% — covtype is one of the
    paper's "challenging tabular" datasets.
    """
    from repro.data.synthetic.images import flip_labels

    rng = np.random.default_rng(seed + 909)
    num_continuous = 10
    centers = {
        0: rng.standard_normal((2, num_continuous)),
        1: rng.standard_normal((2, num_continuous)) + separation,
    }
    blocks = _CategoricalBlocks(rng, [4, 40], mix=0.3)

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, 2, size=n).astype(np.int64)
        component = rng.integers(0, 2, size=n)
        means = np.stack([centers[int(y)][c] for y, c in zip(labels, component)])
        continuous = (means + rng.standard_normal((n, num_continuous)) * 1.2).astype(
            np.float32
        )
        categorical = blocks.sample(rng, labels)
        features = np.concatenate([continuous, categorical], axis=1)
        return features, flip_labels(rng, labels, label_noise, num_classes=2)

    train_x, train_y = sample(n_train)
    test_x, test_y = sample(n_test)
    info = DatasetInfo(
        name="covtype",
        modality="tabular",
        num_classes=2,
        input_shape=(54,),
        num_train=n_train,
        num_test=n_test,
        extra={"separation": separation, "label_noise": label_noise},
    )
    return ArrayDataset(train_x, train_y), ArrayDataset(test_x, test_y), info
