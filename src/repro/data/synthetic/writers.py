"""FEMNIST stand-in: digit images grouped by synthetic writers.

The real FEMNIST collects handwritten digits from thousands of writers;
its defining property for this paper is that *samples carry writer IDs and
writers differ in style* (stroke width, slant), so partitioning by writer
yields natural feature-distribution skew (Section 4.2, real-world feature
imbalance).

We simulate that: digits share the global class prototypes, but every
writer has a persistent style — a 2D shear, an intensity gain, a blur level
(stroke thickness) and a brightness offset — applied to all of their
samples.  Writer identity is stored in ``ArrayDataset.groups``.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset, DatasetInfo
from repro.data.synthetic.images import _balanced_labels, _smooth_field


def _writer_style(rng: np.random.Generator) -> dict:
    return {
        "shear": rng.uniform(-0.35, 0.35),
        "gain": rng.uniform(0.6, 1.4),
        "blur": rng.uniform(0.0, 1.2),
        "offset": rng.uniform(-0.3, 0.3),
    }


def _apply_style(image: np.ndarray, style: dict) -> np.ndarray:
    """Apply a writer's style to a (C, H, W) image."""
    shear = style["shear"]
    matrix = np.array([[1.0, shear], [0.0, 1.0]])
    out = np.empty_like(image)
    size = image.shape[1]
    center = (size - 1) / 2.0
    offset = center - matrix @ np.array([center, center])
    for c in range(image.shape[0]):
        sheared = ndimage.affine_transform(
            image[c], matrix, offset=offset, order=1, mode="nearest"
        )
        if style["blur"] > 0:
            sheared = ndimage.gaussian_filter(sheared, sigma=style["blur"])
        out[c] = sheared
    return (style["gain"] * out + style["offset"]).astype(np.float32)


def make_femnist_like(
    n_train: int = 4000,
    n_test: int = 1000,
    num_writers: int = 40,
    image_size: int = 16,
    seed: int = 0,
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Generate the writer-grouped digit dataset.

    Train and test samples are drawn from the same writer pool (as in LEAF,
    where each writer's data is split train/test), so a global model faces
    the same style mixture at train and test time.
    """
    if num_writers < 2:
        raise ValueError("need at least 2 writers for feature skew to exist")
    rng = np.random.default_rng(seed + 505)
    num_classes = 10
    prototypes = np.stack([_smooth_field(rng, 1, image_size) for _ in range(num_classes)])
    styles = [_writer_style(rng) for _ in range(num_writers)]

    def render(n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        labels = _balanced_labels(rng, n, num_classes)
        writers = rng.integers(0, num_writers, size=n)
        images = np.empty((n, 1, image_size, image_size), dtype=np.float32)
        noise = rng.normal(0.0, 0.35, size=images.shape).astype(np.float32)
        amplitudes = rng.uniform(0.8, 1.2, size=n).astype(np.float32)
        for i in range(n):
            base = 1.8 * amplitudes[i] * prototypes[labels[i]]
            images[i] = _apply_style(base, styles[writers[i]])
        images += noise
        return images, labels, writers

    train_x, train_y, train_w = render(n_train)
    test_x, test_y, test_w = render(n_test)
    info = DatasetInfo(
        name="femnist",
        modality="image",
        num_classes=num_classes,
        input_shape=(1, image_size, image_size),
        num_train=n_train,
        num_test=n_test,
        extra={"num_writers": num_writers},
    )
    train = ArrayDataset(train_x, train_y, groups=train_w)
    test = ArrayDataset(test_x, test_y, groups=test_w)
    return train, test, info
