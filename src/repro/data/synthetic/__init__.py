"""Synthetic stand-ins for the paper's nine public datasets.

The execution environment has no network access, so the original datasets
cannot be downloaded.  Each generator here is a seeded simulation that
preserves the properties the paper's experiments manipulate — modality,
class count, task difficulty ordering, and (for FEMNIST) per-writer style
structure.  See DESIGN.md, substitution 2.
"""

from repro.data.synthetic.images import (
    make_cifar10_like,
    make_fmnist_like,
    make_image_classification,
    make_mnist_like,
    make_svhn_like,
)
from repro.data.synthetic.writers import make_femnist_like
from repro.data.synthetic.fcube import make_fcube
from repro.data.synthetic.tabular import (
    make_adult_like,
    make_covtype_like,
    make_rcv1_like,
)

__all__ = [
    "make_image_classification",
    "make_mnist_like",
    "make_fmnist_like",
    "make_cifar10_like",
    "make_svhn_like",
    "make_femnist_like",
    "make_fcube",
    "make_adult_like",
    "make_rcv1_like",
    "make_covtype_like",
]
