"""In-memory datasets.

Everything in this reproduction fits in RAM, so a dataset is simply a pair
of aligned NumPy arrays plus optional per-sample metadata (e.g. FEMNIST
writer IDs, which the real-world feature-skew partition groups by).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class DatasetInfo:
    """Static description of a dataset, mirroring the paper's Table 2."""

    name: str
    modality: str  # "image" or "tabular"
    num_classes: int
    input_shape: tuple[int, ...]  # (C, H, W) for images, (F,) for tabular
    num_train: int
    num_test: int
    extra: dict = field(default_factory=dict)

    @property
    def num_features(self) -> int:
        """Flattened feature count (the paper's '#features' column)."""
        return int(np.prod(self.input_shape))


class ArrayDataset:
    """A dataset backed by dense arrays.

    Parameters
    ----------
    features:
        ``(N, ...)`` float array — images as ``(N, C, H, W)``, tabular as
        ``(N, F)``.
    labels:
        ``(N,)`` integer class labels.
    groups:
        Optional ``(N,)`` integer group IDs (e.g. writer IDs for FEMNIST).
    """

    def __init__(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        groups: np.ndarray | None = None,
    ):
        features = np.asarray(features)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                f"features ({features.shape[0]}) and labels ({labels.shape[0]}) "
                "disagree on sample count"
            )
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if not np.issubdtype(labels.dtype, np.integer):
            raise TypeError(f"labels must be integers, got {labels.dtype}")
        if groups is not None:
            groups = np.asarray(groups)
            if groups.shape != labels.shape:
                raise ValueError("groups must align with labels")
        self.features = features
        self.labels = labels
        self.groups = groups

    def __len__(self) -> int:
        return int(self.labels.shape[0])

    def __getitem__(self, index):
        return self.features[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    def subset(self, indices: np.ndarray) -> "Subset":
        return Subset(self, indices)

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        """Histogram of labels (length ``num_classes``)."""
        k = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=k)

    def map_features(self, fn) -> "ArrayDataset":
        """Return a new dataset with ``fn`` applied to the feature array."""
        return ArrayDataset(fn(self.features), self.labels, self.groups)


class Subset:
    """A view of a dataset restricted to ``indices`` (no data copied)."""

    def __init__(self, dataset, indices: np.ndarray):
        indices = np.asarray(indices)
        if indices.ndim != 1:
            raise ValueError("indices must be 1-D")
        if len(indices) and (indices.min() < 0 or indices.max() >= len(dataset)):
            raise IndexError("subset indices out of range")
        self.dataset = dataset
        self.indices = indices

    def __len__(self) -> int:
        return int(len(self.indices))

    def __getitem__(self, index):
        return self.dataset[self.indices[index]]

    @property
    def features(self) -> np.ndarray:
        return self.dataset.features[self.indices]

    @property
    def labels(self) -> np.ndarray:
        return self.dataset.labels[self.indices]

    @property
    def groups(self) -> np.ndarray | None:
        base = getattr(self.dataset, "groups", None)
        return None if base is None else base[self.indices]

    def class_counts(self, num_classes: int | None = None) -> np.ndarray:
        labels = self.labels
        k = num_classes
        if k is None:
            k = int(labels.max()) + 1 if len(labels) else 0
        return np.bincount(labels, minlength=k)

    def materialize(self) -> ArrayDataset:
        """Copy the view into a standalone :class:`ArrayDataset`."""
        return ArrayDataset(self.features.copy(), self.labels.copy(), self.groups)
