"""Content-addressed build cache for datasets and partitions.

Every Table-3 cell starts by generating its dataset and drawing its
partition, and both are pure functions of ``(dataset, partition, seed)``
— so a sweep of hundreds of cells rebuilds the same handful of arrays
hundreds of times.  This module memoizes those builds:

- **In-process**: one memo per build key.  Repeated cells in the same
  worker (or a ``--jobs 1`` sweep) construct each dataset and partition
  exactly once.
- **On disk** (optional): when a spill directory is set — the scheduler
  points it at ``<store>/.build_cache`` — dataset arrays are written as
  ``.npy`` files under a content-addressed subdirectory, so worker
  processes and *re-invoked* sweeps ``np.load(..., mmap_mode="r")`` the
  bytes instead of regenerating them.

Cached arrays are marked read-only (mmap-backed loads already are): the
training stack only ever fancy-indexes or copies out of the base
arrays, and a stray in-place write should fail loudly rather than
corrupt every cell sharing the cache.  Spills are atomic (tmp directory
+ ``os.replace``), so a crashed worker can never publish a torn entry.

Partitions carrying ``feature_transforms`` (noise-based feature skew)
hold per-party closures, which have no array serialization — they stay
memoized in-process but are never spilled.

Hit/miss counters are cheap, process-local, and surfaced per cell by
the scheduler (see :class:`repro.experiments.scheduler.MatrixReport`).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.data.dataset import ArrayDataset, DatasetInfo

_lock = threading.RLock()
_dataset_memo: dict[str, tuple] = {}
_partition_memo: dict[str, object] = {}
_spill_dir: Path | None = None

#: in-process memo cap (insertion-ordered eviction).  Sweeps cycle over
#: a handful of datasets; anything evicted is still served by the disk
#: spill, so this only bounds resident memory, never correctness.
_MEMO_MAX_ENTRIES = 32


def _memo_put(memo: dict, key: str, value) -> None:
    memo[key] = value
    while len(memo) > _MEMO_MAX_ENTRIES:
        memo.pop(next(iter(memo)))

#: process-local build counters; ``dataset_misses`` counts actual
#: regenerations (the expensive thing the cache exists to avoid).
_STAT_NAMES = (
    "dataset_hits",
    "dataset_disk_hits",
    "dataset_misses",
    "partition_hits",
    "partition_misses",
)
_stats = dict.fromkeys(_STAT_NAMES, 0)


def stats() -> dict:
    """A snapshot of the counters (copies; safe to diff across calls)."""
    with _lock:
        return dict(_stats)


def stats_delta(before: dict, after: dict) -> dict:
    """Counter-wise ``after - before``, dropping all-zero entries."""
    out = {}
    for name in _STAT_NAMES:
        diff = after.get(name, 0) - before.get(name, 0)
        if diff:
            out[name] = diff
    return out


def set_spill_dir(path) -> Path | None:
    """Enable (or with None, disable) the on-disk spill; returns it."""
    global _spill_dir
    with _lock:
        _spill_dir = None if path is None else Path(path)
        return _spill_dir


def spill_dir() -> Path | None:
    return _spill_dir


def reset(spill_dir: bool = True) -> None:
    """Clear memos and counters (tests; workers inherit a clean slate)."""
    global _spill_dir
    with _lock:
        _dataset_memo.clear()
        _partition_memo.clear()
        for name in _STAT_NAMES:
            _stats[name] = 0
        if spill_dir:
            _spill_dir = None


# -- keys ----------------------------------------------------------------


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def dataset_key(name: str, seed: int, kwargs: dict | None = None) -> str:
    """Content key for one dataset build (generator inputs, canonical)."""
    return _digest(
        {
            "kind": "dataset",
            "name": str(name).lower().replace("-", ""),
            "seed": int(seed),
            "kwargs": dict(kwargs or {}),
        }
    )


def partition_key(
    dataset_key_: str, strategy: str, num_parties: int, seed: int
) -> str:
    """Content key for one partition draw over a cached dataset."""
    return _digest(
        {
            "kind": "partition",
            "dataset": dataset_key_,
            "strategy": str(strategy),
            "num_parties": int(num_parties),
            "seed": int(seed),
        }
    )


# -- datasets ------------------------------------------------------------


def _freeze(arr: np.ndarray | None) -> np.ndarray | None:
    if arr is not None and arr.flags.writeable:
        arr.setflags(write=False)
    return arr


def _freeze_dataset(ds: ArrayDataset) -> ArrayDataset:
    _freeze(ds.features)
    _freeze(ds.labels)
    _freeze(ds.groups)
    return ds


def _entry_dir(key: str) -> Path | None:
    return None if _spill_dir is None else _spill_dir / key


def _save_array_dir(path: Path, prefix: str, ds: ArrayDataset) -> dict:
    np.save(path / f"{prefix}_features.npy", ds.features)
    np.save(path / f"{prefix}_labels.npy", ds.labels)
    meta = {"groups": ds.groups is not None}
    if ds.groups is not None:
        np.save(path / f"{prefix}_groups.npy", ds.groups)
    return meta


def _load_array_dir(path: Path, prefix: str, meta: dict) -> ArrayDataset:
    def load(stem):
        return np.load(path / f"{stem}.npy", mmap_mode="r")

    groups = load(f"{prefix}_groups") if meta["groups"] else None
    return ArrayDataset(load(f"{prefix}_features"), load(f"{prefix}_labels"), groups)


def _spill_dataset(key: str, train, test, info) -> None:
    entry = _entry_dir(key)
    if entry is None or entry.exists():
        return
    try:
        info_payload = json.dumps(asdict(info))
    except (TypeError, ValueError):
        return  # non-JSON info extras: memo-only for this dataset
    entry.parent.mkdir(parents=True, exist_ok=True)
    tmp = entry.parent / f".tmp-{key}-{os.getpid()}"
    try:
        tmp.mkdir()
        meta = {
            "train": _save_array_dir(tmp, "train", train),
            "test": _save_array_dir(tmp, "test", test),
            "info": json.loads(info_payload),
        }
        (tmp / "meta.json").write_text(json.dumps(meta))
        os.replace(tmp, entry)
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)


def _unspill_dataset(key: str):
    entry = _entry_dir(key)
    if entry is None:
        return None
    try:
        meta = json.loads((entry / "meta.json").read_text())
        train = _load_array_dir(entry, "train", meta["train"])
        test = _load_array_dir(entry, "test", meta["test"])
        info_fields = dict(meta["info"])
        info_fields["input_shape"] = tuple(info_fields["input_shape"])
        info = DatasetInfo(**info_fields)
    except (OSError, ValueError, KeyError, TypeError):
        return None  # absent or torn entry: fall through to a rebuild
    return train, test, info


def cached_dataset(key: str, builder):
    """``builder()``'s ``(train, test, info)``, built at most once per key.

    Lookup order: in-process memo, then the disk spill (mmap), then the
    builder — whose result is frozen, memoized, and spilled.
    """
    with _lock:
        hit = _dataset_memo.get(key)
        if hit is not None:
            _stats["dataset_hits"] += 1
            return hit
        loaded = _unspill_dataset(key)
        if loaded is not None:
            _stats["dataset_disk_hits"] += 1
            _memo_put(_dataset_memo, key, loaded)
            return loaded
        _stats["dataset_misses"] += 1
        train, test, info = builder()
        built = (_freeze_dataset(train), _freeze_dataset(test), info)
        _memo_put(_dataset_memo, key, built)
        _spill_dataset(key, *built)
        return built


# -- partitions ----------------------------------------------------------


def _spill_partition(key: str, partition) -> None:
    entry = _entry_dir(key)
    if entry is None or entry.exists() or partition.feature_transforms is not None:
        return
    entry.parent.mkdir(parents=True, exist_ok=True)
    tmp = entry.parent / f".tmp-{key}-{os.getpid()}"
    try:
        tmp.mkdir()
        for party, idx in enumerate(partition.indices):
            np.save(tmp / f"party_{party}.npy", idx)
        np.save(tmp / "unassigned.npy", partition.unassigned)
        meta = {
            "num_parties": partition.num_parties,
            "strategy": partition.strategy,
        }
        (tmp / "meta.json").write_text(json.dumps(meta))
        os.replace(tmp, entry)
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)


def _unspill_partition(key: str):
    from repro.partition.base import Partition

    entry = _entry_dir(key)
    if entry is None:
        return None
    try:
        meta = json.loads((entry / "meta.json").read_text())
        indices = [
            np.load(entry / f"party_{party}.npy")
            for party in range(int(meta["num_parties"]))
        ]
        unassigned = np.load(entry / "unassigned.npy")
    except (OSError, ValueError, KeyError, TypeError):
        return None
    return Partition(
        indices=indices, unassigned=unassigned, strategy=meta["strategy"]
    )


def cached_partition(key: str, builder):
    """``builder()``'s :class:`Partition`, drawn at most once per key."""
    with _lock:
        hit = _partition_memo.get(key)
        if hit is not None:
            _stats["partition_hits"] += 1
            return hit
        loaded = _unspill_partition(key)
        if loaded is not None:
            _stats["partition_hits"] += 1
            _memo_put(_partition_memo, key, loaded)
            return loaded
        _stats["partition_misses"] += 1
        partition = builder()
        _memo_put(_partition_memo, key, partition)
        _spill_partition(key, partition)
        return partition


__all__ = [
    "cached_dataset",
    "cached_partition",
    "dataset_key",
    "partition_key",
    "set_spill_dir",
    "spill_dir",
    "stats",
    "stats_delta",
    "reset",
]
