"""Datasets, loaders and the synthetic stand-ins for the paper's nine datasets.

See DESIGN.md (substitution 2) for why the datasets are synthetic and what
properties of the originals each generator preserves.
"""

from repro.data.dataset import ArrayDataset, DatasetInfo, Subset
from repro.data.loader import DataLoader
from repro.data.registry import DATASET_NAMES, DATASETS, dataset_info, load_dataset
from repro.data import transforms

__all__ = [
    "ArrayDataset",
    "DatasetInfo",
    "Subset",
    "DataLoader",
    "load_dataset",
    "dataset_info",
    "DATASET_NAMES",
    "DATASETS",
    "transforms",
]
