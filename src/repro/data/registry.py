"""Dataset registry: ``load_dataset("mnist")`` etc.

Names match the paper's Table 2.  Every loader accepts ``seed`` and size
overrides; ``paper_scale=True`` requests the original sizes (slow on CPU —
intended for users with time, not for the test suite).
"""

from __future__ import annotations

from typing import Callable

from repro.data.dataset import ArrayDataset, DatasetInfo
from repro.data import synthetic

# Paper's Table 2 sizes, used when paper_scale=True.
_PAPER_SIZES = {
    "mnist": (60_000, 10_000),
    "fmnist": (60_000, 10_000),
    "cifar10": (50_000, 10_000),
    "svhn": (73_257, 26_032),
    "adult": (32_561, 16_281),
    "rcv1": (15_182, 5_060),
    "covtype": (435_759, 145_253),
    "fcube": (4_000, 1_000),
    "femnist": (341_873, 40_832),
}

_GENERATORS: dict[str, Callable] = {
    "mnist": synthetic.make_mnist_like,
    "fmnist": synthetic.make_fmnist_like,
    "cifar10": synthetic.make_cifar10_like,
    "svhn": synthetic.make_svhn_like,
    "femnist": synthetic.make_femnist_like,
    "fcube": synthetic.make_fcube,
    "adult": synthetic.make_adult_like,
    "rcv1": synthetic.make_rcv1_like,
    "covtype": synthetic.make_covtype_like,
}

DATASET_NAMES = tuple(_GENERATORS)


def load_dataset(
    name: str,
    n_train: int | None = None,
    n_test: int | None = None,
    seed: int = 0,
    paper_scale: bool = False,
    **kwargs,
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Load (generate) a dataset by its paper name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (``cifar10`` accepts ``cifar-10`` too).
    n_train, n_test:
        Override the generator's reduced-scale defaults.
    paper_scale:
        Use the original Table 2 sizes instead (overridden by explicit
        ``n_train``/``n_test``).
    kwargs:
        Forwarded to the generator (e.g. ``num_writers`` for femnist,
        ``num_features`` for rcv1).
    """
    key = name.lower().replace("-", "")
    if key not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_GENERATORS)}")
    generator = _GENERATORS[key]
    if paper_scale:
        paper_train, paper_test = _PAPER_SIZES[key]
        n_train = n_train if n_train is not None else paper_train
        n_test = n_test if n_test is not None else paper_test
    if n_train is not None:
        kwargs["n_train"] = n_train
    if n_test is not None:
        kwargs["n_test"] = n_test
    return generator(seed=seed, **kwargs)


def dataset_info(name: str, **kwargs) -> DatasetInfo:
    """Info for a dataset without keeping the arrays around."""
    _, _, info = load_dataset(name, **kwargs)
    return info


def paper_sizes(name: str) -> tuple[int, int]:
    """The original (train, test) sizes from the paper's Table 2."""
    key = name.lower().replace("-", "")
    if key not in _PAPER_SIZES:
        raise KeyError(f"unknown dataset {name!r}")
    return _PAPER_SIZES[key]
