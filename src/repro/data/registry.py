"""Dataset registry: ``load_dataset("mnist")`` etc.

Names match the paper's Table 2 and live in the unified
:class:`repro.registry.Registry` (one instance per component family;
see ``repro list``).  Every loader accepts ``seed`` and size overrides;
``paper_scale=True`` requests the original sizes (slow on CPU —
intended for users with time, not for the test suite).
"""

from __future__ import annotations

from repro.data.dataset import ArrayDataset, DatasetInfo
from repro.data import synthetic
from repro.registry import Registry

# Paper's Table 2 sizes, used when paper_scale=True.
_PAPER_SIZES = {
    "mnist": (60_000, 10_000),
    "fmnist": (60_000, 10_000),
    "cifar10": (50_000, 10_000),
    "svhn": (73_257, 26_032),
    "adult": (32_561, 16_281),
    "rcv1": (15_182, 5_060),
    "covtype": (435_759, 145_253),
    "fcube": (4_000, 1_000),
    "femnist": (341_873, 40_832),
}

DATASETS = Registry("dataset")
DATASETS.register("mnist", synthetic.make_mnist_like, summary="28x28 grayscale digits")
DATASETS.register("fmnist", synthetic.make_fmnist_like, summary="28x28 grayscale apparel")
DATASETS.register("cifar10", synthetic.make_cifar10_like, summary="32x32 RGB objects")
DATASETS.register("svhn", synthetic.make_svhn_like, summary="32x32 RGB house numbers")
DATASETS.register(
    "femnist", synthetic.make_femnist_like, summary="per-writer digits (real-world skew)"
)
DATASETS.register("fcube", synthetic.make_fcube, summary="3-feature synthetic cube")
DATASETS.register("adult", synthetic.make_adult_like, summary="tabular census income")
DATASETS.register("rcv1", synthetic.make_rcv1_like, summary="sparse text categorization")
DATASETS.register("covtype", synthetic.make_covtype_like, summary="tabular forest cover")

DATASET_NAMES = DATASETS.names()


def load_dataset(
    name: str,
    n_train: int | None = None,
    n_test: int | None = None,
    seed: int = 0,
    paper_scale: bool = False,
    cache: bool = False,
    **kwargs,
) -> tuple[ArrayDataset, ArrayDataset, DatasetInfo]:
    """Load (generate) a dataset by its paper name.

    Parameters
    ----------
    name:
        One of :data:`DATASET_NAMES` (``cifar10`` accepts ``cifar-10`` too).
    n_train, n_test:
        Override the generator's reduced-scale defaults.
    paper_scale:
        Use the original Table 2 sizes instead (overridden by explicit
        ``n_train``/``n_test``).
    cache:
        Serve the build through :mod:`repro.data.build_cache`: memoized
        in-process per ``(name, sizes, seed, kwargs)`` and, when a spill
        directory is configured (the sweep scheduler does), mmapped from
        ``.npy`` files instead of regenerated.  Cached arrays are
        read-only.
    kwargs:
        Forwarded to the generator (e.g. ``num_writers`` for femnist,
        ``num_features`` for rcv1).
    """
    try:
        generator = DATASETS.get(name)
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_NAMES)}"
        ) from None
    if paper_scale:
        paper_train, paper_test = paper_sizes(name)
        n_train = n_train if n_train is not None else paper_train
        n_test = n_test if n_test is not None else paper_test
    if n_train is not None:
        kwargs["n_train"] = n_train
    if n_test is not None:
        kwargs["n_test"] = n_test
    if cache:
        from repro.data import build_cache

        key = build_cache.dataset_key(name, seed, kwargs)
        return build_cache.cached_dataset(
            key, lambda: generator(seed=seed, **kwargs)
        )
    return generator(seed=seed, **kwargs)


def dataset_info(name: str, **kwargs) -> DatasetInfo:
    """Info for a dataset without keeping the arrays around."""
    _, _, info = load_dataset(name, **kwargs)
    return info


def paper_sizes(name: str) -> tuple[int, int]:
    """The original (train, test) sizes from the paper's Table 2."""
    key = name.lower().replace("-", "")
    if key not in _PAPER_SIZES:
        raise KeyError(f"unknown dataset {name!r}")
    return _PAPER_SIZES[key]
