"""Mini-batch iteration over in-memory datasets."""

from __future__ import annotations

import numpy as np


class DataLoader:
    """Iterate a dataset in mini-batches of ``(features, labels)`` arrays.

    Shuffling uses the provided generator so local training is reproducible
    per party and per round; each full iteration reshuffles.
    """

    def __init__(
        self,
        dataset,
        batch_size: int,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if shuffle and rng is None:
            rng = np.random.default_rng()
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng
        self.drop_last = drop_last

    def __len__(self) -> int:
        """Number of batches per epoch (the paper's local steps per epoch)."""
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        features = self.dataset.features
        labels = self.dataset.labels
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            batch = order[start : start + self.batch_size]
            yield features[batch], labels[batch]
