"""Mixed skew: label distribution skew combined with quantity skew.

The paper studies each skew in isolation and notes real federations mix
them (a specialized hospital is often also a small one).  ``MixedSkew``
composes the two Dirichlet mechanisms: party sizes are drawn from
``Dir(quantity_beta)`` and each party's label mix from
``Dir(label_beta)``; samples are then drawn without replacement to match
both targets as closely as the class pools allow.
"""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partition, Partitioner


class MixedSkew(Partitioner):
    """Quantity skew and label-distribution skew at the same time.

    Parameters
    ----------
    label_beta:
        Dirichlet concentration of each party's label mix (smaller =
        parties more specialized).
    quantity_beta:
        Dirichlet concentration of party sizes (smaller = sizes more
        unequal).
    min_size:
        Resample the size vector until every party gets at least this
        many samples.
    """

    def __init__(
        self,
        label_beta: float = 0.5,
        quantity_beta: float = 0.5,
        min_size: int = 1,
        max_retries: int = 100,
    ):
        if label_beta <= 0 or quantity_beta <= 0:
            raise ValueError("both beta parameters must be positive")
        if min_size < 0:
            raise ValueError(f"min_size must be non-negative, got {min_size}")
        self.label_beta = label_beta
        self.quantity_beta = quantity_beta
        self.min_size = min_size
        self.max_retries = max_retries

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        labels = dataset.labels
        num_classes = int(labels.max()) + 1
        n = len(dataset)

        sizes = self._draw_sizes(n, num_parties, rng)

        # Shuffled per-class pools to draw from without replacement.
        pools = [
            list(rng.permutation(np.flatnonzero(labels == k))) for k in range(num_classes)
        ]
        party_indices: list[list[int]] = [[] for _ in range(num_parties)]
        for party in range(num_parties):
            mix = rng.dirichlet(np.full(num_classes, self.label_beta))
            targets = self._integer_targets(sizes[party], mix)
            for k in range(num_classes):
                take = min(targets[k], len(pools[k]))
                if take:
                    party_indices[party].extend(pools[k][:take])
                    del pools[k][:take]

        # Distribute whatever the clipping left over, smallest party first,
        # so every sample is assigned exactly once.
        leftovers = [index for pool in pools for index in pool]
        rng.shuffle(leftovers)
        for index in leftovers:
            smallest = min(range(num_parties), key=lambda p: len(party_indices[p]))
            party_indices[smallest].append(index)

        indices = [np.sort(np.asarray(chunk, dtype=np.int64)) for chunk in party_indices]
        return Partition(
            indices=indices,
            strategy=f"mixed(label={self.label_beta},quantity={self.quantity_beta})",
        )

    def _draw_sizes(self, n: int, num_parties: int, rng: np.random.Generator) -> np.ndarray:
        for _ in range(self.max_retries):
            proportions = rng.dirichlet(np.full(num_parties, self.quantity_beta))
            sizes = np.floor(proportions * n).astype(int)
            # Hand out the rounding remainder to the largest parties.
            remainder = n - sizes.sum()
            for party in np.argsort(proportions)[::-1][:remainder]:
                sizes[party] += 1
            if sizes.min() >= self.min_size:
                return sizes
        raise RuntimeError(
            f"could not satisfy min_size={self.min_size} within "
            f"{self.max_retries} retries; lower min_size or raise quantity_beta"
        )

    @staticmethod
    def _integer_targets(size: int, mix: np.ndarray) -> np.ndarray:
        targets = np.floor(mix * size).astype(int)
        remainder = size - targets.sum()
        for k in np.argsort(mix)[::-1][:remainder]:
            targets[k] += 1
        return targets

    def __repr__(self) -> str:
        return (
            f"MixedSkew(label_beta={self.label_beta}, "
            f"quantity_beta={self.quantity_beta}, min_size={self.min_size})"
        )

    def spec_string(self) -> str:
        return f"mixed({self.label_beta:g},{self.quantity_beta:g})"
