"""NIID-Bench data partitioning strategies (the paper's Section 4).

Six non-IID strategies plus the homogeneous (IID) baseline:

===========================  =============================================
Paper notation               Class
===========================  =============================================
``#C = k``                   :class:`QuantityBasedLabelSkew`
``p_k ~ Dir(beta)``          :class:`DistributionBasedLabelSkew`
``x ~ Gau(sigma)``           :class:`NoiseBasedFeatureSkew`
FCUBE synthetic              :class:`FCubePartitioner`
real-world (FEMNIST)         :class:`RealWorldFeatureSkew`
``q ~ Dir(beta)``            :class:`QuantitySkew`
homogeneous / IID            :class:`HomogeneousPartitioner`
===========================  =============================================

All partitioners are deterministic given a ``numpy.random.Generator`` and
produce a :class:`Partition` (per-party index arrays plus optional
per-party feature transforms).
"""

from repro.partition.base import Partition, Partitioner
from repro.partition.homogeneous import HomogeneousPartitioner
from repro.partition.label_skew import (
    DistributionBasedLabelSkew,
    QuantityBasedLabelSkew,
)
from repro.partition.feature_skew import (
    FCubePartitioner,
    NoiseBasedFeatureSkew,
    RealWorldFeatureSkew,
)
from repro.partition.quantity_skew import QuantitySkew
from repro.partition.mixed import MixedSkew
from repro.partition.registry import PARTITIONS, STRATEGY_EXAMPLES, parse_strategy
from repro.partition import stats

__all__ = [
    "Partition",
    "Partitioner",
    "HomogeneousPartitioner",
    "QuantityBasedLabelSkew",
    "DistributionBasedLabelSkew",
    "NoiseBasedFeatureSkew",
    "FCubePartitioner",
    "RealWorldFeatureSkew",
    "QuantitySkew",
    "MixedSkew",
    "parse_strategy",
    "STRATEGY_EXAMPLES",
    "PARTITIONS",
    "stats",
]
