"""Feature-distribution-skew partitioners (paper Section 4.2).

Three settings:

- **Noise-based** (``x ~ Gau(sigma)``): random equal split, then party
  ``P_i`` adds Gaussian noise of variance ``sigma * i / N`` to its local
  features.  The split itself is IID; the skew comes from the per-party
  transform carried in :attr:`Partition.feature_transforms`.
- **Synthetic (FCUBE)**: parties receive pairs of octants of the cube that
  are symmetric about the origin, so feature distributions differ while
  labels stay balanced (Figure 5).
- **Real-world (FEMNIST)**: writers are divided randomly and equally among
  parties; a party owns all samples of its writers, inheriting their
  styles.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.data import transforms
from repro.data.synthetic.fcube import octant_of
from repro.partition.base import Partition, Partitioner, split_evenly


class NoiseBasedFeatureSkew(Partitioner):
    """The paper's ``x ~ Gau(sigma)`` strategy.

    Parameters
    ----------
    sigma:
        User-defined noise level; party ``P_i`` receives noise variance
        ``sigma * i / N``.  The paper's Table 3 uses ``sigma = 0.1``.
    """

    def __init__(self, sigma: float):
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        indices = split_evenly(np.arange(len(dataset)), num_parties, rng)
        party_transforms = []
        for party in range(num_parties):
            variance = transforms.party_noise_variance(self.sigma, party, num_parties)
            # Each party gets an independent child generator so transforms
            # are reproducible regardless of application order.
            child = np.random.default_rng(rng.integers(2**63))
            party_transforms.append(
                functools.partial(transforms.gaussian_noise, variance=variance, rng=child)
            )
        return Partition(
            indices=indices,
            feature_transforms=party_transforms,
            strategy=f"x~Gau({self.sigma})",
        )

    def __repr__(self) -> str:
        return f"NoiseBasedFeatureSkew(sigma={self.sigma})"

    def spec_string(self) -> str:
        return f"gau({self.sigma:g})"


class FCubePartitioner(Partitioner):
    """The paper's synthetic feature-skew strategy for FCUBE.

    The cube splits into 8 octants; each party receives a pair of octants
    symmetric about the origin (bitwise-complement octant indices), so
    every party's label distribution is balanced but its feature support
    differs.  The paper uses exactly 4 parties; fewer are allowed (pairs
    are distributed round-robin), more are not.
    """

    def spec_string(self) -> str:
        return "fcube"

    default_num_parties = 4

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        if num_parties > 4:
            raise ValueError(
                f"FCUBE supports at most 4 parties (8 octants in symmetric "
                f"pairs), got {num_parties}"
            )
        octants = octant_of(dataset.features)
        # Symmetric pairs: octant o and its complement 7-o.
        pairs = [(0, 7), (1, 6), (2, 5), (3, 4)]
        party_chunks: list[list[np.ndarray]] = [[] for _ in range(num_parties)]
        for pair_id, (a, b) in enumerate(pairs):
            owner = pair_id % num_parties
            party_chunks[owner].append(np.flatnonzero((octants == a) | (octants == b)))
        indices = [np.sort(np.concatenate(chunks)) for chunks in party_chunks]
        return Partition(indices=indices, strategy="fcube")

    def __repr__(self) -> str:
        return "FCubePartitioner()"


class RealWorldFeatureSkew(Partitioner):
    """The paper's real-world strategy: partition FEMNIST by writer.

    Requires the dataset to carry per-sample ``groups`` (writer IDs).
    Writers are divided randomly and equally among the parties.
    """

    def spec_string(self) -> str:
        return "real-world"

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        groups = getattr(dataset, "groups", None)
        if groups is None:
            raise ValueError(
                "real-world feature skew needs a dataset with group IDs "
                "(e.g. femnist writer IDs)"
            )
        writers = np.unique(groups)
        if len(writers) < num_parties:
            raise ValueError(
                f"{len(writers)} writers cannot be split across "
                f"{num_parties} parties"
            )
        writer_split = split_evenly(writers, num_parties, rng)
        indices = [
            np.sort(np.flatnonzero(np.isin(groups, party_writers)))
            for party_writers in writer_split
        ]
        return Partition(indices=indices, strategy="real-world")

    def __repr__(self) -> str:
        return "RealWorldFeatureSkew()"
