"""Parse the paper's strategy notation into partitioner instances.

Accepted spec strings (case-insensitive, whitespace ignored):

================  ==========================================
Spec              Partitioner
================  ==========================================
``iid`` / ``homogeneous``   HomogeneousPartitioner
``#C=2`` / ``label2``       QuantityBasedLabelSkew(2)
``dir(0.5)`` / ``labeldir(0.5)``  DistributionBasedLabelSkew(0.5)
``gau(0.1)`` / ``noise(0.1)``     NoiseBasedFeatureSkew(0.1)
``fcube``                   FCubePartitioner
``realworld`` / ``real-world``    RealWorldFeatureSkew
``quantity(0.5)`` / ``qdir(0.5)`` QuantitySkew(0.5)
================  ==========================================

Each strategy family is an entry in the unified
:class:`repro.registry.Registry`; the registered factory is a *parser*
that receives the normalized spec text and returns a partitioner (or
``None`` when the text belongs to another family).  ``parse_strategy``
tries the families in registration order.
"""

from __future__ import annotations

import re

from repro.partition.base import Partitioner
from repro.partition.feature_skew import (
    FCubePartitioner,
    NoiseBasedFeatureSkew,
    RealWorldFeatureSkew,
)
from repro.partition.homogeneous import HomogeneousPartitioner
from repro.partition.label_skew import (
    DistributionBasedLabelSkew,
    QuantityBasedLabelSkew,
)
from repro.partition.quantity_skew import QuantitySkew
from repro.partition.mixed import MixedSkew
from repro.registry import Registry

STRATEGY_EXAMPLES = (
    "iid",
    "#C=1",
    "#C=2",
    "#C=3",
    "dir(0.5)",
    "gau(0.1)",
    "fcube",
    "real-world",
    "quantity(0.5)",
    "mixed(0.5,0.5)",
)

_NUMBER = r"([0-9]*\.?[0-9]+)"

#: strategy families; each parser takes the normalized text and returns a
#: partitioner or None (meaning "not mine").
PARTITIONS = Registry("partition strategy", normalize=lambda name: name)


def _literal(texts: tuple[str, ...], cls):
    def parse(text: str) -> Partitioner | None:
        return cls() if text in texts else None

    return parse


def _pattern(pattern: str, build):
    def parse(text: str) -> Partitioner | None:
        match = re.fullmatch(pattern, text)
        return build(match) if match else None

    return parse


PARTITIONS.register(
    "iid",
    _literal(("iid", "homogeneous", "homo"), HomogeneousPartitioner),
    summary="homogeneous split (the IID baseline)",
)
PARTITIONS.register(
    "#C=k",
    _pattern(r"(?:#c=|label)(\d+)", lambda m: QuantityBasedLabelSkew(int(m.group(1)))),
    summary="quantity-based label skew: each party sees k labels",
)
PARTITIONS.register(
    "dir(beta)",
    _pattern(
        rf"(?:labeldir|dir|p_k~dir)\({_NUMBER}\)",
        lambda m: DistributionBasedLabelSkew(float(m.group(1))),
    ),
    summary="Dirichlet label skew, p_k ~ Dir(beta)",
)
PARTITIONS.register(
    "gau(sigma)",
    _pattern(
        rf"(?:gau|noise|x~gau)\({_NUMBER}\)",
        lambda m: NoiseBasedFeatureSkew(float(m.group(1))),
    ),
    summary="noise-based feature skew, x ~ Gau(sigma)",
)
PARTITIONS.register(
    "fcube",
    _literal(("fcube",), FCubePartitioner),
    summary="FCUBE synthetic feature skew (4 parties)",
)
PARTITIONS.register(
    "real-world",
    _literal(("realworld", "real-world", "femnist-writers"), RealWorldFeatureSkew),
    summary="real-world skew: FEMNIST writers as parties",
)
PARTITIONS.register(
    "quantity(beta)",
    _pattern(
        rf"(?:quantity|qdir|q~dir)\({_NUMBER}\)",
        lambda m: QuantitySkew(float(m.group(1))),
    ),
    summary="quantity skew, party sizes q ~ Dir(beta)",
)
PARTITIONS.register(
    "mixed(lb,qb)",
    _pattern(
        rf"mixed\({_NUMBER},{_NUMBER}\)",
        lambda m: MixedSkew(
            label_beta=float(m.group(1)), quantity_beta=float(m.group(2))
        ),
    ),
    summary="label skew stacked on quantity skew",
)


def parse_strategy(spec: str) -> Partitioner:
    """Build a partitioner from the paper's notation (see module docstring)."""
    text = spec.strip().lower().replace(" ", "")
    for name in PARTITIONS:
        partitioner = PARTITIONS.build(name, text)
        if partitioner is not None:
            return partitioner
    raise ValueError(
        f"cannot parse partition strategy {spec!r}; "
        f"examples: {', '.join(STRATEGY_EXAMPLES)}"
    )
