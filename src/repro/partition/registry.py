"""Parse the paper's strategy notation into partitioner instances.

Accepted spec strings (case-insensitive, whitespace ignored):

================  ==========================================
Spec              Partitioner
================  ==========================================
``iid`` / ``homogeneous``   HomogeneousPartitioner
``#C=2`` / ``label2``       QuantityBasedLabelSkew(2)
``dir(0.5)`` / ``labeldir(0.5)``  DistributionBasedLabelSkew(0.5)
``gau(0.1)`` / ``noise(0.1)``     NoiseBasedFeatureSkew(0.1)
``fcube``                   FCubePartitioner
``realworld`` / ``real-world``    RealWorldFeatureSkew
``quantity(0.5)`` / ``qdir(0.5)`` QuantitySkew(0.5)
================  ==========================================
"""

from __future__ import annotations

import re

from repro.partition.base import Partitioner
from repro.partition.feature_skew import (
    FCubePartitioner,
    NoiseBasedFeatureSkew,
    RealWorldFeatureSkew,
)
from repro.partition.homogeneous import HomogeneousPartitioner
from repro.partition.label_skew import (
    DistributionBasedLabelSkew,
    QuantityBasedLabelSkew,
)
from repro.partition.quantity_skew import QuantitySkew
from repro.partition.mixed import MixedSkew

STRATEGY_EXAMPLES = (
    "iid",
    "#C=1",
    "#C=2",
    "#C=3",
    "dir(0.5)",
    "gau(0.1)",
    "fcube",
    "real-world",
    "quantity(0.5)",
    "mixed(0.5,0.5)",
)

_NUMBER = r"([0-9]*\.?[0-9]+)"


def parse_strategy(spec: str) -> Partitioner:
    """Build a partitioner from the paper's notation (see module docstring)."""
    text = spec.strip().lower().replace(" ", "")
    if text in ("iid", "homogeneous", "homo"):
        return HomogeneousPartitioner()
    if text == "fcube":
        return FCubePartitioner()
    if text in ("realworld", "real-world", "femnist-writers"):
        return RealWorldFeatureSkew()

    match = re.fullmatch(r"(?:#c=|label)(\d+)", text)
    if match:
        return QuantityBasedLabelSkew(int(match.group(1)))

    match = re.fullmatch(rf"(?:labeldir|dir|p_k~dir)\({_NUMBER}\)", text)
    if match:
        return DistributionBasedLabelSkew(float(match.group(1)))

    match = re.fullmatch(rf"(?:gau|noise|x~gau)\({_NUMBER}\)", text)
    if match:
        return NoiseBasedFeatureSkew(float(match.group(1)))

    match = re.fullmatch(rf"(?:quantity|qdir|q~dir)\({_NUMBER}\)", text)
    if match:
        return QuantitySkew(float(match.group(1)))

    match = re.fullmatch(rf"mixed\({_NUMBER},{_NUMBER}\)", text)
    if match:
        return MixedSkew(
            label_beta=float(match.group(1)), quantity_beta=float(match.group(2))
        )

    raise ValueError(
        f"cannot parse partition strategy {spec!r}; "
        f"examples: {', '.join(STRATEGY_EXAMPLES)}"
    )
