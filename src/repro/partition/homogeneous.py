"""Homogeneous (IID) partitioning — the paper's baseline setting."""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partition, Partitioner, split_evenly


class HomogeneousPartitioner(Partitioner):
    """Random, equal-size split: every party sees the global distribution."""

    def spec_string(self) -> str:
        return "iid"

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        indices = split_evenly(np.arange(len(dataset)), num_parties, rng)
        return Partition(indices=indices, strategy="homogeneous")

    def __repr__(self) -> str:
        return "HomogeneousPartitioner()"
