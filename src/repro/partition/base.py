"""Partition result type and the partitioner interface."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import ArrayDataset, Subset


@dataclass
class Partition:
    """The outcome of splitting a dataset across parties.

    Attributes
    ----------
    indices:
        One index array per party, referring into the source dataset.
    feature_transforms:
        Optional per-party callables applied to that party's feature array
        (used by noise-based feature skew).  ``None`` means identity.
    unassigned:
        Indices not assigned to any party.  Only quantity-based label skew
        can produce these (when a label has no owning party); every other
        strategy assigns every sample.
    strategy:
        Human-readable strategy tag for reports.
    """

    indices: list[np.ndarray]
    feature_transforms: list[Callable[[np.ndarray], np.ndarray]] | None = None
    unassigned: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))
    strategy: str = ""

    def __post_init__(self):
        self.indices = [np.asarray(idx, dtype=np.int64) for idx in self.indices]
        self.unassigned = np.asarray(self.unassigned, dtype=np.int64)
        if self.feature_transforms is not None:
            if len(self.feature_transforms) != len(self.indices):
                raise ValueError(
                    "feature_transforms must have one entry per party"
                )

    @property
    def num_parties(self) -> int:
        return len(self.indices)

    @property
    def sizes(self) -> np.ndarray:
        """Samples per party (the paper's ``|D^i|``)."""
        return np.array([len(idx) for idx in self.indices])

    def validate(self, dataset_size: int) -> None:
        """Check disjointness, range, and coverage accounting.

        Raises ``ValueError`` when parties overlap, indices fall outside
        the dataset, or assigned + unassigned do not cover it exactly.
        """
        all_assigned = (
            np.concatenate(self.indices) if self.indices else np.array([], dtype=np.int64)
        )
        combined = np.concatenate([all_assigned, self.unassigned])
        if combined.size != dataset_size:
            raise ValueError(
                f"partition covers {combined.size} samples, dataset has {dataset_size}"
            )
        if combined.size and (combined.min() < 0 or combined.max() >= dataset_size):
            raise ValueError("partition contains out-of-range indices")
        if np.unique(combined).size != combined.size:
            raise ValueError("partition assigns some sample more than once")

    def counts_matrix(self, labels: np.ndarray, num_classes: int) -> np.ndarray:
        """``(num_parties, num_classes)`` label-count matrix (Figure 3 data)."""
        labels = np.asarray(labels)
        matrix = np.zeros((self.num_parties, num_classes), dtype=np.int64)
        for party, idx in enumerate(self.indices):
            matrix[party] = np.bincount(labels[idx], minlength=num_classes)
        return matrix

    def subsets(self, dataset: ArrayDataset) -> list:
        """Materialize per-party datasets, applying feature transforms.

        Without transforms the result is a list of cheap :class:`Subset`
        views; with transforms each party's features are copied and
        transformed once.
        """
        parts = []
        for party, idx in enumerate(self.indices):
            view = Subset(dataset, idx)
            transform = None
            if self.feature_transforms is not None:
                transform = self.feature_transforms[party]
            if transform is None:
                parts.append(view)
            else:
                parts.append(
                    ArrayDataset(transform(view.features), view.labels, view.groups)
                )
        return parts


class Partitioner:
    """Interface: split a dataset's indices across ``num_parties`` parties."""

    #: default party count used by the paper (FCUBE overrides with 4)
    default_num_parties = 10

    def partition(
        self,
        dataset: ArrayDataset,
        num_parties: int,
        rng: np.random.Generator,
    ) -> Partition:
        raise NotImplementedError

    def spec_string(self) -> str:
        """The canonical strategy notation this partitioner round-trips
        through :func:`repro.partition.parse_strategy` — what a
        :class:`repro.spec.PartitionSpec` records for content addressing."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define its spec notation"
        )

    def _check_args(self, dataset, num_parties: int) -> None:
        if num_parties <= 0:
            raise ValueError(f"num_parties must be positive, got {num_parties}")
        if len(dataset) < num_parties:
            raise ValueError(
                f"cannot split {len(dataset)} samples across {num_parties} parties"
            )


def split_evenly(
    indices: np.ndarray, num_parties: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Shuffle ``indices`` and split into near-equal contiguous chunks."""
    shuffled = rng.permutation(indices)
    return [np.sort(chunk) for chunk in np.array_split(shuffled, num_parties)]


def proportions_to_splits(
    indices: np.ndarray, proportions: Sequence[float]
) -> list[np.ndarray]:
    """Split ``indices`` (already shuffled) by cumulative proportions."""
    proportions = np.asarray(proportions, dtype=np.float64)
    proportions = proportions / proportions.sum()
    cuts = (np.cumsum(proportions)[:-1] * len(indices)).astype(int)
    return [np.sort(chunk) for chunk in np.split(indices, cuts)]
