"""Quantity-skew partitioner (paper Section 4.3): ``q ~ Dir(beta)``."""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partition, Partitioner, proportions_to_splits


class QuantitySkew(Partitioner):
    """Dirichlet split of dataset *size* across parties.

    Label distributions stay (approximately) global on every party; only
    ``|D^i|`` varies.  Smaller ``beta`` makes sizes more unequal.

    Parameters
    ----------
    beta:
        Dirichlet concentration (paper default 0.5).
    min_size:
        Resample until every party has at least this many samples.
    """

    def __init__(self, beta: float, min_size: int = 1, max_retries: int = 100):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if min_size < 0:
            raise ValueError(f"min_size must be non-negative, got {min_size}")
        self.beta = beta
        self.min_size = min_size
        self.max_retries = max_retries

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        all_indices = np.arange(len(dataset))
        for _ in range(self.max_retries):
            proportions = rng.dirichlet(np.full(num_parties, self.beta))
            shuffled = rng.permutation(all_indices)
            indices = proportions_to_splits(shuffled, proportions)
            if min(len(idx) for idx in indices) >= self.min_size:
                return Partition(indices=indices, strategy=f"q~Dir({self.beta})")
        raise RuntimeError(
            f"could not satisfy min_size={self.min_size} within "
            f"{self.max_retries} retries; lower min_size or raise beta"
        )

    def __repr__(self) -> str:
        return f"QuantitySkew(beta={self.beta}, min_size={self.min_size})"

    def spec_string(self) -> str:
        return f"quantity({self.beta:g})"
