"""Label-distribution-skew partitioners (paper Section 4.1).

Two settings:

- **Quantity-based label imbalance** (``#C = k``): each party owns samples
  of exactly ``k`` labels.  Label IDs are assigned round-robin first (so
  every label has an owner whenever ``num_parties >= num_classes``), then
  uniformly at random; each label's samples are divided equally among the
  parties that own it.
- **Distribution-based label imbalance** (``p_k ~ Dir(beta)``): for every
  class ``k`` a proportion vector over parties is drawn from a Dirichlet
  with concentration ``beta`` and the class's samples are split
  accordingly.  Smaller ``beta`` means more imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.partition.base import Partition, Partitioner, proportions_to_splits


class QuantityBasedLabelSkew(Partitioner):
    """The paper's ``#C = k`` strategy.

    Parameters
    ----------
    labels_per_party:
        ``k`` — how many distinct labels each party owns.  ``k = 1`` is the
        pathological single-label setting of Finding (1); ``k = 2`` matches
        the original FedAvg experiments.
    """

    def __init__(self, labels_per_party: int):
        if labels_per_party < 1:
            raise ValueError(f"labels_per_party must be >= 1, got {labels_per_party}")
        self.labels_per_party = labels_per_party

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        labels = dataset.labels
        num_classes = int(labels.max()) + 1
        k = self.labels_per_party
        if k > num_classes:
            raise ValueError(
                f"labels_per_party={k} exceeds the {num_classes} classes present"
            )

        # Assign label IDs to parties: round-robin first label guarantees
        # coverage when num_parties >= num_classes, then k-1 random extras.
        owned: list[set[int]] = []
        for party in range(num_parties):
            chosen = {party % num_classes}
            while len(chosen) < k:
                chosen.add(int(rng.integers(num_classes)))
            owned.append(chosen)

        owners_of = {
            label: [p for p in range(num_parties) if label in owned[p]]
            for label in range(num_classes)
        }

        party_indices: list[list[np.ndarray]] = [[] for _ in range(num_parties)]
        unassigned: list[np.ndarray] = []
        for label, owners in owners_of.items():
            label_idx = rng.permutation(np.flatnonzero(labels == label))
            if not owners:
                # Possible when num_parties < num_classes: nobody owns the
                # label, so its samples stay out of the federation.
                unassigned.append(label_idx)
                continue
            for owner, chunk in zip(owners, np.array_split(label_idx, len(owners))):
                party_indices[owner].append(chunk)

        indices = [
            np.sort(np.concatenate(chunks)) if chunks else np.array([], dtype=np.int64)
            for chunks in party_indices
        ]
        leftover = (
            np.sort(np.concatenate(unassigned)) if unassigned else np.array([], dtype=np.int64)
        )
        return Partition(
            indices=indices,
            unassigned=leftover,
            strategy=f"#C={k}",
        )

    def __repr__(self) -> str:
        return f"QuantityBasedLabelSkew(labels_per_party={self.labels_per_party})"

    def spec_string(self) -> str:
        return f"#C={self.labels_per_party}"


class DistributionBasedLabelSkew(Partitioner):
    """The paper's ``p_k ~ Dir(beta)`` strategy.

    Parameters
    ----------
    beta:
        Dirichlet concentration; the paper uses 0.5 by default and explores
        the imbalance level by varying it (smaller = more skewed).
    min_size:
        Resample until every party has at least this many samples (the
        NIID-Bench reference implementation uses 10; we default to 1 so
        tiny test datasets remain partitionable).
    max_retries:
        Safety bound on the resampling loop.
    """

    def __init__(self, beta: float, min_size: int = 1, max_retries: int = 100):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if min_size < 0:
            raise ValueError(f"min_size must be non-negative, got {min_size}")
        self.beta = beta
        self.min_size = min_size
        self.max_retries = max_retries

    def partition(self, dataset, num_parties: int, rng: np.random.Generator) -> Partition:
        self._check_args(dataset, num_parties)
        labels = dataset.labels
        num_classes = int(labels.max()) + 1

        for _ in range(self.max_retries):
            party_chunks: list[list[np.ndarray]] = [[] for _ in range(num_parties)]
            for label in range(num_classes):
                label_idx = rng.permutation(np.flatnonzero(labels == label))
                proportions = rng.dirichlet(np.full(num_parties, self.beta))
                for party, chunk in enumerate(
                    proportions_to_splits(label_idx, proportions)
                ):
                    party_chunks[party].append(chunk)
            indices = [
                np.sort(np.concatenate(chunks)) for chunks in party_chunks
            ]
            if min(len(idx) for idx in indices) >= self.min_size:
                return Partition(indices=indices, strategy=f"p_k~Dir({self.beta})")
        raise RuntimeError(
            f"could not satisfy min_size={self.min_size} within "
            f"{self.max_retries} retries; lower min_size or raise beta"
        )

    def __repr__(self) -> str:
        return f"DistributionBasedLabelSkew(beta={self.beta}, min_size={self.min_size})"

    def spec_string(self) -> str:
        return f"dir({self.beta:g})"
