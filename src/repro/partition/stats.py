"""Partition statistics: quantify how non-IID a partition actually is.

The paper motivates partitioning strategies by their ability to "quantify
and control the imbalance level"; these metrics make that concrete and
feed the Figure 3 style reports and the non-IID profiling extension
(paper Section 6.1, "light-weight data techniques for profiling non-IID
data").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.base import Partition


def _safe_distribution(counts: np.ndarray) -> np.ndarray:
    total = counts.sum()
    if total == 0:
        return np.full(counts.shape, 1.0 / counts.shape[0])
    return counts / total


def kl_divergence(p: np.ndarray, q: np.ndarray, eps: float = 1e-12) -> float:
    """KL(p || q) with epsilon smoothing (finite even for disjoint supports)."""
    p = np.asarray(p, dtype=np.float64) + eps
    q = np.asarray(q, dtype=np.float64) + eps
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


def label_skew_index(partition: Partition, labels: np.ndarray, num_classes: int) -> float:
    """Mean KL divergence between party label distributions and the global one.

    0 for a perfectly IID split; grows with label imbalance.  This is the
    quantity the paper's beta knob controls indirectly.
    """
    counts = partition.counts_matrix(labels, num_classes)
    global_dist = _safe_distribution(counts.sum(axis=0).astype(np.float64))
    divergences = [
        kl_divergence(_safe_distribution(row.astype(np.float64)), global_dist)
        for row in counts
        if row.sum() > 0
    ]
    return float(np.mean(divergences)) if divergences else 0.0


def quantity_skew_index(partition: Partition) -> float:
    """Coefficient of variation of party sizes (0 = equal sizes)."""
    sizes = partition.sizes.astype(np.float64)
    if sizes.mean() == 0:
        return 0.0
    return float(sizes.std() / sizes.mean())


def effective_classes_per_party(
    partition: Partition, labels: np.ndarray, num_classes: int
) -> np.ndarray:
    """How many distinct classes each party actually holds."""
    counts = partition.counts_matrix(labels, num_classes)
    return (counts > 0).sum(axis=1)


def render_heatmap(counts: np.ndarray, cell_width: int = 5) -> str:
    """ASCII heat map of a (parties x classes) count matrix.

    The text counterpart of the paper's Figure 3: shading scales with the
    count, and the number itself is printed inside each cell.
    """
    counts = np.asarray(counts)
    if counts.ndim != 2:
        raise ValueError(f"expected a 2-D count matrix, got shape {counts.shape}")
    shades = " .:*#@"
    peak = max(int(counts.max()), 1)
    header = "party\\class " + "".join(f"{k:>{cell_width + 2}d}" for k in range(counts.shape[1]))
    lines = [header]
    for party, row in enumerate(counts):
        cells = []
        for value in row:
            shade = shades[min(int(value / peak * (len(shades) - 1)), len(shades) - 1)]
            cells.append(f"{shade}{int(value):>{cell_width}d}{shade}")
        lines.append(f"{party:>11d} " + "".join(cells))
    return "\n".join(lines)


@dataclass(frozen=True)
class PartitionReport:
    """Summary of a partition, printable as a Figure 3 style table."""

    strategy: str
    sizes: np.ndarray
    counts: np.ndarray
    label_skew: float
    quantity_skew: float
    classes_per_party: np.ndarray
    num_unassigned: int

    def to_text(self) -> str:
        lines = [
            f"strategy: {self.strategy}",
            f"parties: {len(self.sizes)}  "
            f"label-skew(KL): {self.label_skew:.3f}  "
            f"quantity-skew(CV): {self.quantity_skew:.3f}  "
            f"unassigned: {self.num_unassigned}",
            "party |  size | classes | per-class counts",
        ]
        for party, (size, row) in enumerate(zip(self.sizes, self.counts)):
            counts = " ".join(f"{c:5d}" for c in row)
            lines.append(
                f"{party:5d} | {size:5d} | {int((row > 0).sum()):7d} | {counts}"
            )
        return "\n".join(lines)


def report(partition: Partition, labels: np.ndarray, num_classes: int) -> PartitionReport:
    """Build a :class:`PartitionReport` for a partition of ``labels``."""
    return PartitionReport(
        strategy=partition.strategy,
        sizes=partition.sizes,
        counts=partition.counts_matrix(labels, num_classes),
        label_skew=label_skew_index(partition, labels, num_classes),
        quantity_skew=quantity_skew_index(partition),
        classes_per_party=effective_classes_per_party(partition, labels, num_classes),
        num_unassigned=int(partition.unassigned.size),
    )
