"""The full Table 3 experimental matrix as a programmatic API.

The paper's Table 3 covers the nine datasets under every applicable
partitioning strategy for the four algorithms.  ``TABLE3_SETTINGS`` spells
out that matrix exactly (which partition applies to which dataset, per the
paper), and :func:`run_table3` executes any slice of it at a chosen scale,
feeding a :class:`~repro.experiments.leaderboard.Leaderboard`.

The benchmark suite runs a representative slice (see
``benchmarks/test_table3_overall_accuracy.py``); this module is the way to
run more — up to the whole matrix at paper scale, if you have the time.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.leaderboard import Leaderboard
from repro.experiments.runner import run_trials
from repro.experiments.scale import BENCH, ScalePreset

IMAGE_DATASETS = ("mnist", "fmnist", "cifar10", "svhn")
TABULAR_DATASETS = ("adult", "rcv1", "covtype")

#: dataset -> partition specs evaluated in the paper's Table 3.
TABLE3_SETTINGS: dict[str, tuple[str, ...]] = {
    **{
        name: ("dir(0.5)", "#C=1", "#C=2", "#C=3", "gau(0.1)", "quantity(0.5)", "iid")
        for name in IMAGE_DATASETS
    },
    **{
        name: ("dir(0.5)", "#C=1", "quantity(0.5)", "iid")
        for name in TABULAR_DATASETS
    },
    "fcube": ("fcube", "iid"),
    "femnist": ("real-world", "iid"),
}

ALGORITHMS = ("fedavg", "fedprox", "scaffold", "fednova")


def settings_matrix(
    datasets: Iterable[str] | None = None,
    partitions: Iterable[str] | None = None,
) -> list[tuple[str, str]]:
    """The (dataset, partition) cells selected by the given filters."""
    chosen_datasets = tuple(datasets) if datasets is not None else tuple(TABLE3_SETTINGS)
    cells = []
    for dataset in chosen_datasets:
        if dataset not in TABLE3_SETTINGS:
            raise KeyError(
                f"{dataset!r} is not a Table 3 dataset; "
                f"available: {sorted(TABLE3_SETTINGS)}"
            )
        for partition in TABLE3_SETTINGS[dataset]:
            if partitions is not None and partition not in partitions:
                continue
            cells.append((dataset, partition))
    return cells


def run_table3(
    datasets: Iterable[str] | None = None,
    partitions: Iterable[str] | None = None,
    algorithms: Iterable[str] = ALGORITHMS,
    preset: ScalePreset = BENCH,
    num_trials: int = 1,
    base_seed: int = 0,
    fedprox_mu: float = 0.01,
    store=None,
    progress=None,
) -> Leaderboard:
    """Run a slice of the Table 3 matrix and return the leaderboard.

    Parameters
    ----------
    datasets, partitions:
        Filters over :data:`TABLE3_SETTINGS`; ``None`` means everything.
    algorithms:
        Algorithms to compare (the paper's four by default).
    preset:
        Scale preset; the paper's protocol is ``scale.PAPER`` with
        ``num_trials=3``.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  Cells
        whose spec is already stored are read back instead of re-run and
        fresh cells are saved as they finish — a killed matrix run
        resumes from where it stopped, and re-invoking a finished one
        runs zero new cells.
    progress:
        Optional callback ``(dataset, partition, algorithm, summary)``
        invoked after each cell.
    """
    board = Leaderboard()
    for dataset, partition in settings_matrix(datasets, partitions):
        for algorithm in algorithms:
            kwargs = {}
            if algorithm == "fedprox":
                kwargs["algorithm_kwargs"] = {"mu": fedprox_mu}
            if dataset == "femnist":
                kwargs["dataset_kwargs"] = {"num_writers": 20}
            summary = run_trials(
                dataset,
                partition,
                algorithm,
                num_trials=num_trials,
                base_seed=base_seed,
                preset=preset,
                store=store,
                **kwargs,
            )
            board.add(summary)
            if progress is not None:
                progress(dataset, partition, algorithm, summary)
    return board
