"""The full Table 3 experimental matrix as a programmatic API.

The paper's Table 3 covers the nine datasets under every applicable
partitioning strategy for the four algorithms.  ``TABLE3_SETTINGS`` spells
out that matrix exactly (which partition applies to which dataset, per the
paper), and :func:`run_table3` executes any slice of it at a chosen scale,
feeding a :class:`~repro.experiments.leaderboard.Leaderboard`.

The benchmark suite runs a representative slice (see
``benchmarks/test_table3_overall_accuracy.py``); this module is the way to
run more — up to the whole matrix at paper scale, if you have the time.
"""

from __future__ import annotations

from typing import Iterable

from repro.spec import RunSpec
from repro.experiments.leaderboard import Leaderboard
from repro.experiments.runner import TrialSummary, run_trials
from repro.experiments.scale import BENCH, ScalePreset

IMAGE_DATASETS = ("mnist", "fmnist", "cifar10", "svhn")
TABULAR_DATASETS = ("adult", "rcv1", "covtype")

#: dataset -> partition specs evaluated in the paper's Table 3.
TABLE3_SETTINGS: dict[str, tuple[str, ...]] = {
    **{
        name: ("dir(0.5)", "#C=1", "#C=2", "#C=3", "gau(0.1)", "quantity(0.5)", "iid")
        for name in IMAGE_DATASETS
    },
    **{
        name: ("dir(0.5)", "#C=1", "quantity(0.5)", "iid")
        for name in TABULAR_DATASETS
    },
    "fcube": ("fcube", "iid"),
    "femnist": ("real-world", "iid"),
}

ALGORITHMS = ("fedavg", "fedprox", "scaffold", "fednova")


def settings_matrix(
    datasets: Iterable[str] | None = None,
    partitions: Iterable[str] | None = None,
) -> list[tuple[str, str]]:
    """The (dataset, partition) cells selected by the given filters."""
    chosen_datasets = tuple(datasets) if datasets is not None else tuple(TABLE3_SETTINGS)
    cells = []
    for dataset in chosen_datasets:
        if dataset not in TABLE3_SETTINGS:
            raise KeyError(
                f"{dataset!r} is not a Table 3 dataset; "
                f"available: {sorted(TABLE3_SETTINGS)}"
            )
        for partition in TABLE3_SETTINGS[dataset]:
            if partitions is not None and partition not in partitions:
                continue
            cells.append((dataset, partition))
    return cells


def table3_specs(
    datasets: Iterable[str] | None = None,
    partitions: Iterable[str] | None = None,
    algorithms: Iterable[str] = ALGORITHMS,
    preset: ScalePreset = BENCH,
    num_trials: int = 1,
    base_seed: int = 0,
    fedprox_mu: float = 0.01,
) -> dict[tuple[str, str, str], list[RunSpec]]:
    """Enumerate the selected matrix as specs, without running anything.

    Returns ``(dataset, partition, algorithm) -> [trial specs]`` in
    matrix order, using exactly the per-cell kwargs and trial seeds
    :func:`run_table3` executes — the enumeration a scheduler claims
    cells from, and the key the leaderboard is reassembled under.
    """
    cells: dict[tuple[str, str, str], list[RunSpec]] = {}
    for dataset, partition in settings_matrix(datasets, partitions):
        for algorithm in algorithms:
            kwargs = {}
            if algorithm == "fedprox":
                kwargs["algorithm_kwargs"] = {"mu": fedprox_mu}
            if dataset == "femnist":
                kwargs["dataset_kwargs"] = {"num_writers": 20}
            base = RunSpec.build(
                dataset, partition, algorithm, preset=preset, **kwargs
            )
            cells[(dataset, partition, algorithm)] = base.trial_specs(
                num_trials, base_seed=base_seed
            )
    return cells


def run_table3(
    datasets: Iterable[str] | None = None,
    partitions: Iterable[str] | None = None,
    algorithms: Iterable[str] = ALGORITHMS,
    preset: ScalePreset = BENCH,
    num_trials: int = 1,
    base_seed: int = 0,
    fedprox_mu: float = 0.01,
    store=None,
    progress=None,
    jobs: int = 1,
) -> Leaderboard:
    """Run a slice of the Table 3 matrix and return the leaderboard.

    Parameters
    ----------
    datasets, partitions:
        Filters over :data:`TABLE3_SETTINGS`; ``None`` means everything.
    algorithms:
        Algorithms to compare (the paper's four by default).
    preset:
        Scale preset; the paper's protocol is ``scale.PAPER`` with
        ``num_trials=3``.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  Cells
        whose spec is already stored are read back instead of re-run and
        fresh cells are saved as they finish — a killed matrix run
        resumes from where it stopped, and re-invoking a finished one
        runs zero new cells.
    progress:
        Optional callback ``(dataset, partition, algorithm, summary)``
        invoked after each cell.
    jobs:
        Worker processes for cell-level parallelism.  ``jobs > 1``
        schedules every (cell, trial) spec through
        :func:`~repro.experiments.scheduler.run_cells` — workers claim
        cells via atomic store reservations, records are byte-identical
        to a ``jobs=1`` run, a killed run resumes by re-invoking, and
        ``progress`` streams per-cell as each cell's trials land.
        Without a ``store``, results go to a temporary one.
    """
    if jobs > 1:
        return _run_table3_scheduled(
            datasets, partitions, tuple(algorithms), preset, num_trials,
            base_seed, fedprox_mu, store, progress, jobs,
        )
    board = Leaderboard()
    for dataset, partition in settings_matrix(datasets, partitions):
        for algorithm in algorithms:
            kwargs = {}
            if algorithm == "fedprox":
                kwargs["algorithm_kwargs"] = {"mu": fedprox_mu}
            if dataset == "femnist":
                kwargs["dataset_kwargs"] = {"num_writers": 20}
            summary = run_trials(
                dataset,
                partition,
                algorithm,
                num_trials=num_trials,
                base_seed=base_seed,
                preset=preset,
                store=store,
                **kwargs,
            )
            board.add(summary)
            if progress is not None:
                progress(dataset, partition, algorithm, summary)
    return board


def _run_table3_scheduled(
    datasets, partitions, algorithms, preset, num_trials, base_seed,
    fedprox_mu, store, progress, jobs,
) -> Leaderboard:
    """The ``jobs > 1`` path: schedule all (cell, trial) specs at once.

    Parallelism crosses cell boundaries — the work-stealing pool sees
    one flat list of trial specs, so a 3-trial cell does not serialize
    behind a barrier.  The leaderboard regenerates live from the store:
    as the last trial of a cell lands, the cell's summary is read back
    from saved records and streamed to ``progress``.
    """
    import tempfile

    from repro.experiments.scheduler import run_cells
    from repro.experiments.store import ResultStore

    cells = table3_specs(
        datasets, partitions, algorithms, preset, num_trials, base_seed,
        fedprox_mu,
    )
    with tempfile.TemporaryDirectory(prefix="repro-table3-") as scratch:
        if store is None:
            store = ResultStore(scratch)
        trials_left = {
            key: {spec.run_id() for spec in specs}
            for key, specs in cells.items()
        }
        cell_of = {
            spec.run_id(): key
            for key, specs in cells.items()
            for spec in specs
        }
        board = Leaderboard()
        announced = set()

        def finish_cell(key) -> None:
            dataset, partition, algorithm = key
            summary = TrialSummary(
                dataset=dataset, partition=partition, algorithm=algorithm
            )
            for spec in cells[key]:
                summary.accuracies.append(
                    float(store.get(spec)["final_accuracy"])
                )
            board.add(summary)
            announced.add(key)
            if progress is not None:
                progress(dataset, partition, algorithm, summary)

        def on_event(event) -> None:
            if event.kind == "error":
                return  # surfaced by raise_on_failure below
            key = cell_of[event.run_id]
            remaining = trials_left[key]
            remaining.discard(event.run_id)
            if not remaining and key not in announced:
                finish_cell(key)

        all_specs = [spec for specs in cells.values() for spec in specs]
        run_cells(
            all_specs, store=store, jobs=jobs, progress=on_event
        ).raise_on_failure()
        # Belt and braces: a cell whose events were lost with a killed
        # worker is still complete in the store.
        for key in cells:
            if key not in announced:
                finish_cell(key)
    return board
