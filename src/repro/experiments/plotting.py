"""Terminal plotting: render accuracy curves without matplotlib.

The paper's Figures 7-12 are line charts of test accuracy vs rounds.  In a
dependency-free reproduction the equivalent is an ASCII chart; these
renderers are used by the CLI (``--plot``) and by the benchmark result
files so curve *shapes* are reviewable in plain text.
"""

from __future__ import annotations

import math

import numpy as np

_MARKERS = "ox+*#@%&"


def sparkline(values, width: int | None = None) -> str:
    """One-line bar sparkline of a series (NaNs rendered as spaces)."""
    blocks = " .:-=+*#%@"
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    if width is not None and values.size > width:
        # Downsample by striding so the line fits.
        idx = np.linspace(0, values.size - 1, width).round().astype(int)
        values = values[idx]
    finite = values[np.isfinite(values)]
    if finite.size == 0:
        return " " * values.size
    low, high = float(finite.min()), float(finite.max())
    span = high - low if high > low else 1.0
    chars = []
    for v in values:
        if not np.isfinite(v):
            chars.append(" ")
            continue
        level = int((v - low) / span * (len(blocks) - 1))
        chars.append(blocks[level])
    return "".join(chars)


def line_chart(
    series: dict[str, "np.ndarray"],
    height: int = 12,
    width: int = 60,
    y_label: str = "acc",
    x_label: str = "round",
) -> str:
    """Multi-series ASCII line chart with a shared y axis.

    Each series gets a marker character; later series overwrite earlier
    ones on collisions (a legend maps markers to names).
    """
    if not series:
        return "(no series)"
    if height < 2 or width < 8:
        raise ValueError("chart too small to draw")

    arrays = {name: np.asarray(vals, dtype=np.float64) for name, vals in series.items()}
    all_values = np.concatenate([a[np.isfinite(a)] for a in arrays.values()])
    if all_values.size == 0:
        return "(no finite data)"
    low, high = float(all_values.min()), float(all_values.max())
    if math.isclose(low, high):
        low, high = low - 0.5, high + 0.5
    max_len = max(len(a) for a in arrays.values())

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(arrays.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for i, v in enumerate(values):
            if not np.isfinite(v):
                continue
            x = 0 if max_len == 1 else int(round(i / (max_len - 1) * (width - 1)))
            y = int(round((v - low) / (high - low) * (height - 1)))
            grid[height - 1 - y][x] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:6.3f} |"
        elif row_index == height - 1:
            label = f"{low:6.3f} |"
        else:
            label = "       |"
        lines.append(label + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_label} 0..{max_len - 1}   y: {y_label}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(arrays)
    )
    lines.append("        " + legend)
    return "\n".join(lines)


def xy_chart(
    series: dict[str, tuple],
    height: int = 12,
    width: int = 60,
    y_label: str = "acc",
    x_label: str = "x",
) -> str:
    """ASCII chart of ``name -> (x values, y values)`` series.

    Unlike :func:`line_chart`, which spaces points uniformly, each point
    lands at its actual x coordinate on a shared axis — the right shape
    for curves whose x axis is a measured quantity (bytes, seconds).
    """
    if not series:
        return "(no series)"
    if height < 2 or width < 8:
        raise ValueError("chart too small to draw")

    pairs = {}
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise ValueError(
                f"series {name!r}: x has shape {xs.shape}, y has {ys.shape}"
            )
        mask = np.isfinite(xs) & np.isfinite(ys)
        pairs[name] = (xs[mask], ys[mask])

    all_x = np.concatenate([xs for xs, _ in pairs.values()])
    all_y = np.concatenate([ys for _, ys in pairs.values()])
    if all_x.size == 0:
        return "(no finite data)"
    x_low, x_high = float(all_x.min()), float(all_x.max())
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if math.isclose(x_low, x_high):
        x_low, x_high = x_low - 0.5, x_high + 0.5
    if math.isclose(y_low, y_high):
        y_low, y_high = y_low - 0.5, y_high + 0.5

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(pairs.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x_val, y_val in zip(xs, ys):
            x = int(round((x_val - x_low) / (x_high - x_low) * (width - 1)))
            y = int(round((y_val - y_low) / (y_high - y_low) * (height - 1)))
            grid[height - 1 - y][x] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:6.3f} |"
        elif row_index == height - 1:
            label = f"{y_low:6.3f} |"
        else:
            label = "       |"
        lines.append(label + "".join(row))
    lines.append("       +" + "-" * width)
    lines.append(f"        {x_label}: {x_low:.3g} .. {x_high:.3g}   y: {y_label}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(pairs)
    )
    lines.append("        " + legend)
    return "\n".join(lines)


def accuracy_vs_bytes_chart(
    histories: dict[str, "object"],
    height: int = 12,
    width: int = 60,
) -> str:
    """Test accuracy against cumulative communication (paper Section 5.2).

    ``histories`` maps a label (algorithm, codec, ...) to a
    :class:`~repro.federated.history.History`.  The x axis is each run's
    measured ``cumulative_communication()`` in megabytes — the view that
    makes SCAFFOLD's doubled payload and a lossy codec's savings visible
    as horizontal displacement of otherwise similar curves.
    """
    series = {}
    for name, history in histories.items():
        megabytes = history.cumulative_communication() / 1e6
        mask = ~np.isnan(history.accuracies)
        series[name] = (megabytes[mask], history.accuracies[mask])
    return xy_chart(series, height=height, width=width, y_label="acc", x_label="MB")
