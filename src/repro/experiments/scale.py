"""Scale presets: the paper's settings vs what a NumPy CPU can benchmark.

The paper trains 50-500 rounds on datasets of 15k-436k samples.  The
benchmark suite must finish in minutes on a CPU, so every bench runs a
reduced-scale preset; the presets keep the *ratios* that drive the paper's
findings (parties x epochs x batch size relative to local dataset size).

``PAPER`` is provided so users with time can launch full-scale runs with
the same code path (``run_federated_experiment(..., preset=scale.PAPER)``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalePreset:
    """Sizing knobs decoupled from the scientific configuration."""

    name: str
    n_train: int | None  # None = the dataset generator's default
    n_test: int | None
    num_rounds: int
    local_epochs: int
    batch_size: int

    def describe(self) -> str:
        return (
            f"{self.name}: n_train={self.n_train}, n_test={self.n_test}, "
            f"rounds={self.num_rounds}, epochs={self.local_epochs}, "
            f"batch={self.batch_size}"
        )


#: The paper's Table 3 protocol (Section 5): 50 rounds, 10 local epochs,
#: batch 64, full dataset sizes.
PAPER = ScalePreset(
    name="paper", n_train=None, n_test=None, num_rounds=50, local_epochs=10, batch_size=64
)

#: Default reduced scale for benchmarks: completes a Table 3 cell for a
#: tabular dataset in seconds and an image dataset in tens of seconds.
BENCH = ScalePreset(
    name="bench", n_train=1200, n_test=600, num_rounds=12, local_epochs=5, batch_size=32
)

#: Even smaller — used by integration tests.
SMOKE = ScalePreset(
    name="smoke", n_train=300, n_test=150, num_rounds=4, local_epochs=2, batch_size=32
)

PRESETS = {preset.name: preset for preset in (PAPER, BENCH, SMOKE)}
