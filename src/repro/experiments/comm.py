"""Accuracy-vs-communication sweeps: the Section 5.2 trade-off study.

The paper reports how much accuracy each algorithm buys per byte on the
wire; with :mod:`repro.comm` codecs the same question extends to lossy
compression.  :func:`communication_sweep` fixes a (dataset, partition,
algorithm) cell, runs it once per codec configuration, and collects the
measured byte streams next to the accuracy curves so the trade-off is
directly plottable with
:func:`~repro.experiments.plotting.accuracy_vs_bytes_chart`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.comm import CODEC_NAMES
from repro.spec import RunSpec
from repro.experiments.plotting import accuracy_vs_bytes_chart
from repro.experiments.runner import run_spec
from repro.experiments.scale import BENCH, ScalePreset

#: the default ladder: uncompressed wire, dense half-precision, 4-bit
#: quantization, and 10% sparsification with error feedback.
DEFAULT_CODECS = (
    "identity",
    "float16",
    {"codec": "qsgd", "codec_bits": 4},
    {"codec": "topk", "codec_k": 0.1},
)


def _normalize_spec(spec) -> dict:
    """Accept a codec name or a kwargs dict; return runner keyword args."""
    if isinstance(spec, str):
        spec = {"codec": spec}
    spec = dict(spec)
    name = spec.get("codec")
    if name not in CODEC_NAMES:
        raise ValueError(f"unknown codec in sweep spec: {name!r}")
    unknown = set(spec) - {"codec", "codec_bits", "codec_k"}
    if unknown:
        raise ValueError(f"unexpected codec spec keys: {sorted(unknown)}")
    return spec


def _label(spec: dict) -> str:
    """Short legend label: ``qsgd(4b)``, ``topk(k=0.1)``, ``identity``."""
    name = spec["codec"]
    if name == "qsgd":
        return f"qsgd({spec.get('codec_bits', 8)}b)"
    if name in ("topk", "randk"):
        return f"{name}(k={spec.get('codec_k', 0.1):g})"
    return name


@dataclass
class CommSweepResult:
    """Histories of one experiment cell run under each codec."""

    dataset: str
    partition: str
    algorithm: str
    histories: dict = field(default_factory=dict)  # label -> History

    def final_accuracies(self) -> dict:
        return {
            label: history.final_accuracy
            for label, history in self.histories.items()
        }

    def total_megabytes(self) -> dict:
        """Measured end-of-run communication per codec, in MB."""
        return {
            label: float(history.cumulative_communication()[-1]) / 1e6
            for label, history in self.histories.items()
        }

    def compression_ratios(self) -> dict:
        """Bytes relative to the ``identity`` run (1.0 = uncompressed)."""
        totals = self.total_megabytes()
        if "identity" not in totals:
            raise ValueError("no identity baseline in this sweep")
        baseline = totals["identity"]
        return {label: total / baseline for label, total in totals.items()}

    def chart(self, height: int = 12, width: int = 60) -> str:
        """Render the accuracy-vs-cumulative-bytes curves."""
        return accuracy_vs_bytes_chart(self.histories, height=height, width=width)

    def to_text(self) -> str:
        lines = [
            f"communication sweep: {self.dataset} / {self.partition} / "
            f"{self.algorithm}"
        ]
        megabytes = self.total_megabytes()
        for label, accuracy in self.final_accuracies().items():
            lines.append(
                f"  {label:16s} acc {accuracy:.4f}  comm {megabytes[label]:8.3f} MB"
            )
        return "\n".join(lines)


def communication_sweep(
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    codecs: Iterable = DEFAULT_CODECS,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    **fixed,
) -> CommSweepResult:
    """Run one cell per codec configuration and collect measured bytes.

    Parameters
    ----------
    codecs:
        Codec configurations: names from :data:`repro.comm.CODEC_NAMES`
        or dicts like ``{"codec": "qsgd", "codec_bits": 4}``.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`; already
        stored codec points are reloaded instead of re-run, fresh ones
        are saved.
    fixed:
        Additional fixed arguments forwarded to
        :meth:`~repro.spec.RunSpec.build`.

    All runs share the seed, so curve differences come from the codec
    alone (identity reproduces the uncompressed run bitwise).
    """
    result = CommSweepResult(
        dataset=dataset, partition=str(partition), algorithm=algorithm
    )
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed, **fixed
    )
    for codec_spec in codecs:
        codec_spec = _normalize_spec(codec_spec)
        point = base.with_overrides(**codec_spec)
        if store is not None and store.completed(point):
            history = store.history(point)
        else:
            outcome = run_spec(point)
            if store is not None:
                store.save(outcome)
            history = outcome.history
        result.histories[_label(codec_spec)] = history
    return result
