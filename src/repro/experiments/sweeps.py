"""Hyper-parameter sweeps: the machinery behind Figures 8, 9 and 10.

The paper's sensitivity studies all share one shape — fix a (dataset,
partition, algorithm) cell, vary one knob, collect the training curves.
:func:`sweep` is that shape as an API; the figure benches are thin
wrappers over specific knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.experiments.runner import run_federated_experiment
from repro.experiments.scale import BENCH, ScalePreset

#: knobs `sweep` knows how to vary, mapped to runner keyword arguments
SWEEPABLE = {
    "local_epochs": "local_epochs",
    "batch_size": "batch_size",
    "lr": "lr",
    "num_rounds": "num_rounds",
    "sample_fraction": "sample_fraction",
    "mu": None,  # special-cased: goes into algorithm_kwargs for fedprox
}


@dataclass
class SweepResult:
    """Curves and final accuracies indexed by the swept value."""

    parameter: str
    curves: dict = field(default_factory=dict)  # value -> accuracy array

    def finals(self) -> dict:
        return {value: float(curve[-1]) for value, curve in self.curves.items()}

    def best_value(self):
        finals = self.finals()
        return max(finals, key=finals.get)

    def spread(self) -> float:
        """Max minus min final accuracy across the sweep (sensitivity)."""
        finals = list(self.finals().values())
        return float(max(finals) - min(finals))

    def to_text(self) -> str:
        lines = [f"sweep over {self.parameter}"]
        for value, curve in self.curves.items():
            series = " ".join(f"{float(a):.3f}" for a in curve)
            lines.append(f"  {self.parameter}={value}: {series}")
        return "\n".join(lines)


def sweep(
    parameter: str,
    values: Iterable,
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    preset: ScalePreset = BENCH,
    seed: int = 0,
    **fixed,
) -> SweepResult:
    """Run one experiment per value of ``parameter`` and collect curves.

    Parameters
    ----------
    parameter:
        One of :data:`SWEEPABLE` (``mu`` implies ``algorithm="fedprox"``).
    values:
        The values to try (the x-axis of the paper's sensitivity figures).
    fixed:
        Additional fixed arguments forwarded to
        :func:`~repro.experiments.runner.run_federated_experiment`.
    """
    if parameter not in SWEEPABLE:
        raise KeyError(
            f"cannot sweep {parameter!r}; sweepable: {sorted(SWEEPABLE)}"
        )
    if parameter == "mu" and algorithm != "fedprox":
        raise ValueError("sweeping mu requires algorithm='fedprox'")

    result = SweepResult(parameter=parameter)
    for value in values:
        kwargs = dict(fixed)
        if parameter == "mu":
            kwargs["algorithm_kwargs"] = {"mu": value}
        else:
            kwargs[SWEEPABLE[parameter]] = value
        outcome = run_federated_experiment(
            dataset, partition, algorithm, preset=preset, seed=seed, **kwargs
        )
        result.curves[value] = np.asarray(outcome.history.accuracies)
    return result
