"""Hyper-parameter sweeps: the machinery behind Figures 8, 9 and 10.

The paper's sensitivity studies all share one shape — fix a (dataset,
partition, algorithm) cell, vary one knob, collect the training curves.
:func:`sweep` is that shape as an API: it builds one base
:class:`~repro.spec.RunSpec` and derives each point with
``with_overrides``, so any spec field is sweepable and a typo'd axis
name fails loudly with the list of valid names.  The figure benches are
thin wrappers over specific knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.spec import RunSpec, overridable_names
from repro.experiments.runner import run_spec
from repro.experiments.scale import BENCH, ScalePreset


@dataclass
class SweepResult:
    """Curves and final accuracies indexed by the swept value."""

    parameter: str
    curves: dict = field(default_factory=dict)  # value -> accuracy array

    def finals(self) -> dict:
        return {value: float(curve[-1]) for value, curve in self.curves.items()}

    def best_value(self):
        """The swept value with the best final accuracy.

        Ties break toward the smallest value — ``max(key=finals.get)``
        tie-broke by dict insertion order, so two sweeps over the same
        values in different orders could disagree.  Values that don't
        order among themselves (mixed types) keep insertion order.
        """
        finals = self.finals()
        best = max(finals.values())
        candidates = [value for value, acc in finals.items() if acc == best]
        try:
            return min(candidates)
        except TypeError:
            return candidates[0]

    def spread(self) -> float:
        """Max minus min final accuracy across the sweep (sensitivity)."""
        finals = list(self.finals().values())
        return float(max(finals) - min(finals))

    def to_text(self) -> str:
        lines = [f"sweep over {self.parameter}"]
        for value, curve in self.curves.items():
            series = " ".join(f"{float(a):.3f}" for a in curve)
            lines.append(f"  {self.parameter}={value}: {series}")
        return "\n".join(lines)


def sweep_specs(
    parameter: str,
    values: Iterable,
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    preset: ScalePreset = BENCH,
    seed: int = 0,
    **fixed,
) -> dict:
    """Enumerate a sweep's points as ``value -> RunSpec``, running nothing.

    The validation and derivation half of :func:`sweep`, split out so a
    scheduler can claim the cells (and so the axis typo check fires
    before any compute starts).
    """
    if parameter == "mu" and algorithm != "fedprox":
        raise ValueError("sweeping mu requires algorithm='fedprox'")
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed, **fixed
    )
    if parameter not in overridable_names() and "." not in parameter:
        raise KeyError(
            f"cannot sweep {parameter!r}; sweepable: {list(overridable_names())} "
            "or section.field paths"
        )
    return {value: base.with_overrides(**{parameter: value}) for value in values}


def sweep(
    parameter: str,
    values: Iterable,
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    jobs: int = 1,
    **fixed,
) -> SweepResult:
    """Run one experiment per value of ``parameter`` and collect curves.

    Parameters
    ----------
    parameter:
        Any override :meth:`RunSpec.with_overrides` accepts — a flat
        name like ``lr`` / ``local_epochs`` / ``dropout_prob``, a dotted
        path like ``train.lr``, or ``mu`` (which implies
        ``algorithm="fedprox"``).  Unknown names raise ``KeyError``
        listing the alternatives.
    values:
        The values to try (the x-axis of the paper's sensitivity figures).
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  Points
        whose spec is already stored are reloaded instead of re-run and
        fresh points are saved, so re-invoking a finished sweep runs
        zero new cells.
    jobs:
        Worker processes.  ``jobs > 1`` runs the points through the
        crash-safe work-stealing scheduler
        (:func:`~repro.experiments.scheduler.run_cells`) and reloads
        the curves from the store — identical results to serial, any
        completion order.  Without a ``store``, a temporary one backs
        the run.
    fixed:
        Additional fixed arguments forwarded to
        :meth:`~repro.spec.RunSpec.build`.
    """
    points = sweep_specs(
        parameter, values, dataset, partition, algorithm,
        preset=preset, seed=seed, **fixed,
    )
    result = SweepResult(parameter=parameter)
    if jobs > 1:
        for value, history in _run_scheduled(points, store, jobs).items():
            result.curves[value] = np.asarray(history.accuracies)
        return result
    for value, point in points.items():
        if store is not None and store.completed(point):
            history = store.history(point)
        else:
            outcome = run_spec(point)
            if store is not None:
                store.save(outcome)
            history = outcome.history
        result.curves[value] = np.asarray(history.accuracies)
    return result


def _run_scheduled(points: dict, store, jobs: int) -> dict:
    """Run ``label -> spec`` cells through the scheduler; reload histories."""
    import tempfile

    from repro.experiments.scheduler import run_cells
    from repro.experiments.store import ResultStore

    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as scratch:
        if store is None:
            store = ResultStore(scratch)
        run_cells(
            list(points.values()), store=store, jobs=jobs
        ).raise_on_failure()
        return {
            label: store.history(spec) for label, spec in points.items()
        }


def async_tradeoff(
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    buffer_sizes: Iterable[int] = (1, 2, 4),
    sample_per_round: int = 8,
    staleness_exponent: float = 0.5,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    jobs: int = 1,
    **fixed,
) -> dict:
    """The sync-vs-async study: one barrier baseline, then a buffer sweep.

    Runs the cell synchronously (``aggregation="sync"``), then async with
    each buffer size ``M`` at a fixed cohort — ``M == cohort`` is an exact
    barrier, smaller ``M`` flushes earlier and admits staleness.  Results
    flow through the spec/store machinery like any other sweep, so every
    point is content-addressed and resumable.

    Returns a dict with the sync accuracy curve plus, per buffer size,
    the accuracy curve, mean staleness and final virtual time.  With
    ``jobs > 1`` the baseline and every buffer point run concurrently
    through the crash-safe scheduler (see :func:`sweep`).
    """
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed,
        sample_per_round=sample_per_round, **fixed,
    )
    if "sample_fraction" not in fixed:
        # The sync server derives its cohort from sample_fraction; pin it
        # so the barrier baseline trains the same number of parties per
        # round as every async point.
        base = base.with_overrides(
            sample_fraction=sample_per_round / base.partition.num_parties
        )
    specs = {"sync": base}
    for buffer in buffer_sizes:
        specs[buffer] = base.with_overrides(
            aggregation="async",
            buffer_size=buffer,
            staleness_exponent=staleness_exponent,
        )

    if jobs > 1:
        histories = _run_scheduled(specs, store, jobs)
    else:
        def run_point(point: RunSpec):
            if store is not None and store.completed(point):
                return store.history(point)
            outcome = run_spec(point)
            if store is not None:
                store.save(outcome)
            return outcome.history

        histories = {label: run_point(point) for label, point in specs.items()}

    points = {}
    for buffer in buffer_sizes:
        history = histories[buffer]
        points[buffer] = {
            "accuracies": np.asarray(history.accuracies),
            "mean_staleness": history.mean_staleness(),
            "virtual_time": float(history.virtual_times[-1]),
        }
    return {
        "sync": np.asarray(histories["sync"].accuracies),
        "sample_per_round": sample_per_round,
        "staleness_exponent": staleness_exponent,
        "async": points,
    }
