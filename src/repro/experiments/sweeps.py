"""Hyper-parameter sweeps: the machinery behind Figures 8, 9 and 10.

The paper's sensitivity studies all share one shape — fix a (dataset,
partition, algorithm) cell, vary one knob, collect the training curves.
:func:`sweep` is that shape as an API: it builds one base
:class:`~repro.spec.RunSpec` and derives each point with
``with_overrides``, so any spec field is sweepable and a typo'd axis
name fails loudly with the list of valid names.  The figure benches are
thin wrappers over specific knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.spec import RunSpec, overridable_names
from repro.experiments.runner import run_spec
from repro.experiments.scale import BENCH, ScalePreset


@dataclass
class SweepResult:
    """Curves and final accuracies indexed by the swept value."""

    parameter: str
    curves: dict = field(default_factory=dict)  # value -> accuracy array

    def finals(self) -> dict:
        return {value: float(curve[-1]) for value, curve in self.curves.items()}

    def best_value(self):
        finals = self.finals()
        return max(finals, key=finals.get)

    def spread(self) -> float:
        """Max minus min final accuracy across the sweep (sensitivity)."""
        finals = list(self.finals().values())
        return float(max(finals) - min(finals))

    def to_text(self) -> str:
        lines = [f"sweep over {self.parameter}"]
        for value, curve in self.curves.items():
            series = " ".join(f"{float(a):.3f}" for a in curve)
            lines.append(f"  {self.parameter}={value}: {series}")
        return "\n".join(lines)


def sweep(
    parameter: str,
    values: Iterable,
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    **fixed,
) -> SweepResult:
    """Run one experiment per value of ``parameter`` and collect curves.

    Parameters
    ----------
    parameter:
        Any override :meth:`RunSpec.with_overrides` accepts — a flat
        name like ``lr`` / ``local_epochs`` / ``dropout_prob``, a dotted
        path like ``train.lr``, or ``mu`` (which implies
        ``algorithm="fedprox"``).  Unknown names raise ``KeyError``
        listing the alternatives.
    values:
        The values to try (the x-axis of the paper's sensitivity figures).
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  Points
        whose spec is already stored are reloaded instead of re-run and
        fresh points are saved, so re-invoking a finished sweep runs
        zero new cells.
    fixed:
        Additional fixed arguments forwarded to
        :meth:`~repro.spec.RunSpec.build`.
    """
    if parameter == "mu" and algorithm != "fedprox":
        raise ValueError("sweeping mu requires algorithm='fedprox'")
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed, **fixed
    )
    if parameter not in overridable_names() and "." not in parameter:
        raise KeyError(
            f"cannot sweep {parameter!r}; sweepable: {list(overridable_names())} "
            "or section.field paths"
        )

    result = SweepResult(parameter=parameter)
    for value in values:
        point = base.with_overrides(**{parameter: value})
        if store is not None and store.completed(point):
            history = store.history(point)
        else:
            outcome = run_spec(point)
            if store is not None:
                store.save(outcome)
            history = outcome.history
        result.curves[value] = np.asarray(history.accuracies)
    return result
