"""Hyper-parameter sweeps: the machinery behind Figures 8, 9 and 10.

The paper's sensitivity studies all share one shape — fix a (dataset,
partition, algorithm) cell, vary one knob, collect the training curves.
:func:`sweep` is that shape as an API: it builds one base
:class:`~repro.spec.RunSpec` and derives each point with
``with_overrides``, so any spec field is sweepable and a typo'd axis
name fails loudly with the list of valid names.  The figure benches are
thin wrappers over specific knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.spec import RunSpec, overridable_names
from repro.experiments.runner import run_spec
from repro.experiments.scale import BENCH, ScalePreset


@dataclass
class SweepResult:
    """Curves and final accuracies indexed by the swept value."""

    parameter: str
    curves: dict = field(default_factory=dict)  # value -> accuracy array

    def finals(self) -> dict:
        return {value: float(curve[-1]) for value, curve in self.curves.items()}

    def best_value(self):
        finals = self.finals()
        return max(finals, key=finals.get)

    def spread(self) -> float:
        """Max minus min final accuracy across the sweep (sensitivity)."""
        finals = list(self.finals().values())
        return float(max(finals) - min(finals))

    def to_text(self) -> str:
        lines = [f"sweep over {self.parameter}"]
        for value, curve in self.curves.items():
            series = " ".join(f"{float(a):.3f}" for a in curve)
            lines.append(f"  {self.parameter}={value}: {series}")
        return "\n".join(lines)


def sweep(
    parameter: str,
    values: Iterable,
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    **fixed,
) -> SweepResult:
    """Run one experiment per value of ``parameter`` and collect curves.

    Parameters
    ----------
    parameter:
        Any override :meth:`RunSpec.with_overrides` accepts — a flat
        name like ``lr`` / ``local_epochs`` / ``dropout_prob``, a dotted
        path like ``train.lr``, or ``mu`` (which implies
        ``algorithm="fedprox"``).  Unknown names raise ``KeyError``
        listing the alternatives.
    values:
        The values to try (the x-axis of the paper's sensitivity figures).
    store:
        Optional :class:`~repro.experiments.store.ResultStore`.  Points
        whose spec is already stored are reloaded instead of re-run and
        fresh points are saved, so re-invoking a finished sweep runs
        zero new cells.
    fixed:
        Additional fixed arguments forwarded to
        :meth:`~repro.spec.RunSpec.build`.
    """
    if parameter == "mu" and algorithm != "fedprox":
        raise ValueError("sweeping mu requires algorithm='fedprox'")
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed, **fixed
    )
    if parameter not in overridable_names() and "." not in parameter:
        raise KeyError(
            f"cannot sweep {parameter!r}; sweepable: {list(overridable_names())} "
            "or section.field paths"
        )

    result = SweepResult(parameter=parameter)
    for value in values:
        point = base.with_overrides(**{parameter: value})
        if store is not None and store.completed(point):
            history = store.history(point)
        else:
            outcome = run_spec(point)
            if store is not None:
                store.save(outcome)
            history = outcome.history
        result.curves[value] = np.asarray(history.accuracies)
    return result


def async_tradeoff(
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    buffer_sizes: Iterable[int] = (1, 2, 4),
    sample_per_round: int = 8,
    staleness_exponent: float = 0.5,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    **fixed,
) -> dict:
    """The sync-vs-async study: one barrier baseline, then a buffer sweep.

    Runs the cell synchronously (``aggregation="sync"``), then async with
    each buffer size ``M`` at a fixed cohort — ``M == cohort`` is an exact
    barrier, smaller ``M`` flushes earlier and admits staleness.  Results
    flow through the spec/store machinery like any other sweep, so every
    point is content-addressed and resumable.

    Returns a dict with the sync accuracy curve plus, per buffer size,
    the accuracy curve, mean staleness and final virtual time.
    """
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed,
        sample_per_round=sample_per_round, **fixed,
    )
    if "sample_fraction" not in fixed:
        # The sync server derives its cohort from sample_fraction; pin it
        # so the barrier baseline trains the same number of parties per
        # round as every async point.
        base = base.with_overrides(
            sample_fraction=sample_per_round / base.partition.num_parties
        )

    def run_point(point: RunSpec):
        if store is not None and store.completed(point):
            return store.history(point)
        outcome = run_spec(point)
        if store is not None:
            store.save(outcome)
        return outcome.history

    sync_history = run_point(base)
    points = {}
    for buffer in buffer_sizes:
        history = run_point(
            base.with_overrides(
                aggregation="async",
                buffer_size=buffer,
                staleness_exponent=staleness_exponent,
            )
        )
        points[buffer] = {
            "accuracies": np.asarray(history.accuracies),
            "mean_staleness": history.mean_staleness(),
            "virtual_time": float(history.virtual_times[-1]),
        }
    return {
        "sync": np.asarray(sync_history.accuracies),
        "sample_per_round": sample_per_round,
        "staleness_exponent": staleness_exponent,
        "async": points,
    }
