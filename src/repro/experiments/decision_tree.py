"""The paper's Figure 6 decision tree, as executable logic.

Figure 6 summarizes which algorithm is (almost) best per non-IID setting:

- feature distribution skew       -> SCAFFOLD
- label skew, extreme (#C = 1)    -> FedProx
- label skew, moderate            -> FedAvg-family (FedProx a safe pick)
- quantity skew                   -> FedProx
- IID / unknown                   -> FedAvg

The function takes either a strategy spec string or a measured
:class:`SkewDescription` (so it can be driven from partition statistics,
the paper's Section 6.1 "profiling" idea).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partition import parse_strategy
from repro.partition.feature_skew import (
    FCubePartitioner,
    NoiseBasedFeatureSkew,
    RealWorldFeatureSkew,
)
from repro.partition.homogeneous import HomogeneousPartitioner
from repro.partition.label_skew import (
    DistributionBasedLabelSkew,
    QuantityBasedLabelSkew,
)
from repro.partition.mixed import MixedSkew
from repro.partition.quantity_skew import QuantitySkew


@dataclass(frozen=True)
class SkewDescription:
    """A measured description of the federation's data skew.

    Build it from :mod:`repro.partition.stats` metrics when the partition
    is known, or from domain knowledge when it is not.
    """

    label_skew: float = 0.0  # mean KL of party label dists vs global
    quantity_skew: float = 0.0  # coefficient of variation of sizes
    feature_skew: bool = False
    min_classes_per_party: int | None = None


def recommend_algorithm(setting) -> str:
    """Figure 6: pick the (almost) best algorithm for a non-IID setting.

    Parameters
    ----------
    setting:
        A strategy spec string (``"#C=1"``, ``"gau(0.1)"``, ...), a
        partitioner instance, or a :class:`SkewDescription`.

    Returns
    -------
    One of ``"fedavg"``, ``"fedprox"``, ``"scaffold"``.
    """
    if isinstance(setting, SkewDescription):
        return _recommend_from_description(setting)
    partitioner = parse_strategy(setting) if isinstance(setting, str) else setting

    if isinstance(
        partitioner, (NoiseBasedFeatureSkew, FCubePartitioner, RealWorldFeatureSkew)
    ):
        return "scaffold"
    if isinstance(partitioner, QuantityBasedLabelSkew):
        if partitioner.labels_per_party == 1:
            return "fedprox"
        return "fedavg"
    if isinstance(partitioner, DistributionBasedLabelSkew):
        return "fedprox" if partitioner.beta < 0.1 else "fedavg"
    if isinstance(partitioner, QuantitySkew):
        return "fedprox"
    if isinstance(partitioner, MixedSkew):
        # Both component skews point towards FedProx in Figure 6.
        return "fedprox"
    if isinstance(partitioner, HomogeneousPartitioner):
        return "fedavg"
    raise ValueError(f"no recommendation rule for {type(partitioner).__name__}")


def _recommend_from_description(desc: SkewDescription) -> str:
    if desc.feature_skew and desc.label_skew < 0.5:
        return "scaffold"
    if desc.min_classes_per_party == 1:
        return "fedprox"
    if desc.label_skew >= 0.5:
        return "fedprox"
    if desc.quantity_skew > 0.25:
        return "fedprox"
    return "fedavg"
