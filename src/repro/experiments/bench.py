"""Micro-benchmarks for the training hot paths.

Two timings matter for this repo's wall-clock budget:

1. **One CNN local round** — the inner loop every federated experiment
   spends ~95% of its time in (im2col convolutions + fused cross-entropy
   + SGD steps).  This is the number the allocation-cutting work in
   :mod:`repro.grad.functional` moves.
2. **One full federated round** — local rounds across all sampled
   parties plus aggregation, under the serial executor and under the
   parallel executor at several worker counts.  This is the number the
   executor backend in :mod:`repro.federated.executor` moves.

A third family measures the communication layer in :mod:`repro.comm`:
per-codec encode/decode throughput on a model-sized vector, and the
measured bytes one federated round puts on the wire under each codec
(the compression-ratio column of the Section 5.2 trade-off).

Run as ``python -m repro.experiments.bench`` (or ``make bench`` /
``repro-bench``); results land in ``BENCH_core.json`` with enough
hardware context to interpret the speedup column.  On a machine with
fewer physical cores than workers the parallel speedup is capped by the
hardware, not the implementation — the ``note`` field records this.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.data import load_dataset
from repro.federated import (
    FedAvg,
    FederatedConfig,
    FederatedServer,
    evaluate,
    evaluate_accuracy,
    evaluate_loss,
    make_clients,
)
from repro.federated.executor import fork_available
from repro.federated.trainer import run_local_training
from repro.grad import functional as F
from repro.grad.capture import training_engine
from repro.grad.optim import SGD
from repro.grad.tensor import Tensor
from repro.models import build_model
from repro.partition import HomogeneousPartitioner

DEFAULT_OUTPUT = "BENCH_core.json"


def _build_fixture(seed: int = 0, n_train: int = 640, num_parties: int = 10):
    """Small CNN/MNIST-like federated setup shared by both benchmarks."""
    train, _, info = load_dataset("mnist", n_train=n_train, n_test=64, seed=seed)
    partition = HomogeneousPartitioner().partition(
        train, num_parties, np.random.default_rng(seed + 17)
    )
    clients = make_clients(partition, train, seed=seed + 29)
    model = build_model("cnn", info, seed=seed + 53)
    return model, clients


def _config(num_workers: int = 0, **overrides) -> FederatedConfig:
    defaults = dict(
        num_rounds=1,
        local_epochs=1,
        batch_size=32,
        lr=0.01,
        momentum=0.9,
        seed=0,
        num_workers=num_workers,
    )
    defaults.update(overrides)
    return FederatedConfig(**defaults)


def _time(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time; best-of filters scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _duel(fns, repeats: int) -> list[float]:
    """Best-of-``repeats`` wall time for each ``fn``, interleaved.

    Comparative benchmarks must not time one path's repeats back to back
    and then the other's: on a shared host, background load drifts over
    seconds, and whichever path runs second absorbs a different machine.
    Alternating the paths within every repeat round exposes both to the
    same drift, so the per-path minima are actually comparable.
    """
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for index, fn in enumerate(fns):
            start = time.perf_counter()
            fn()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


def bench_local_round(repeats: int = 3, seed: int = 0) -> dict:
    """Time one party's local training round on the paper CNN."""
    model, clients = _build_fixture(seed=seed)
    config = _config()
    client = clients[0]
    state = model.state_dict()

    def one_round():
        model.load_state_dict(state)
        return run_local_training(model, client, config)

    warm = one_round()  # warm-up: also reports the step count
    seconds = _time(one_round, repeats)
    return {
        "seconds": round(seconds, 4),
        "num_steps": warm.num_steps,
        "num_samples": warm.num_samples,
        "seconds_per_step": round(seconds / max(warm.num_steps, 1), 4),
    }


def _step_fixture(name: str, seed: int = 0, batch_size: int = 32):
    """A (model, features, labels) triple for the step benchmarks."""
    _, _, info = load_dataset("mnist", n_train=64, n_test=16, seed=seed)
    model = build_model(name, info, seed=seed + 53)
    rng = np.random.default_rng(seed + 5)
    shape = (batch_size, *info.input_shape)
    if name in ("mlp", "logistic"):
        shape = (batch_size, info.num_features)
    features = rng.standard_normal(shape).astype(np.float32)
    labels = rng.integers(0, info.num_classes, size=batch_size)
    return model, features, labels


def _alloc_stats(fn) -> tuple[int, int]:
    """(peak traced bytes, allocation block count) of one call to ``fn``."""
    import gc
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        fn()
        snapshot = tracemalloc.take_snapshot()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    blocks = sum(stat.count for stat in snapshot.statistics("filename"))
    return peak, blocks


def bench_compiled_step(
    repeats: int = 3, seed: int = 0, steps: int = 20
) -> list[dict]:
    """Eager vs captured-replay training steps (see repro.grad.capture).

    Times ``steps`` full SGD steps both ways on the paper MLP and CNN,
    and records tracemalloc peak bytes / allocation counts for a single
    step — the replay path's whole point is reusing one buffer arena
    instead of re-allocating the graph every step.
    """
    rows = []
    for name in ("mlp", "cnn"):

        def make_runner(compiled):
            model, features, labels = _step_fixture(name, seed=seed)
            model.train()
            optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
            engine = training_engine(model) if compiled else None

            def one_step():
                optimizer.zero_grad()
                loss_value = (
                    engine.step(features, labels) if engine is not None else None
                )
                if loss_value is None:
                    loss = F.cross_entropy(model(Tensor(features)), labels)
                    loss.backward()
                    loss_value = loss.item()
                optimizer.step()
                return loss_value

            one_step()  # warm-up: the capture step (or eager cache fills)
            return one_step

        eager_step = make_runner(False)
        replay_step = make_runner(True)

        def run_many(step_fn):
            return lambda: [step_fn() for _ in range(steps)]

        eager_s, replay_s = (
            t / steps
            for t in _duel([run_many(eager_step), run_many(replay_step)], repeats)
        )
        eager_peak, eager_blocks = _alloc_stats(eager_step)
        replay_peak, replay_blocks = _alloc_stats(replay_step)
        rows.append(
            {
                "model": name,
                "eager_seconds_per_step": round(eager_s, 6),
                "compiled_seconds_per_step": round(replay_s, 6),
                "speedup": round(eager_s / replay_s, 2) if replay_s > 0 else None,
                "eager_alloc_peak_bytes": eager_peak,
                "compiled_alloc_peak_bytes": replay_peak,
                "eager_alloc_blocks": eager_blocks,
                "compiled_alloc_blocks": replay_blocks,
            }
        )
    return rows


#: stack sizes benchmarked; 1 is the serial compiled-replay baseline
BENCH_STACK_SIZES = (1, 4, 16, 64)


def bench_stacked_replay(
    repeats: int = 3,
    seed: int = 0,
    steps: int = 10,
    stack_sizes: tuple[int, ...] = BENCH_STACK_SIZES,
) -> list[dict]:
    """Per-client cost of batched stacked replay vs serial compiled replay.

    For each model, times ``steps`` full SGD steps at every stack size
    ``K`` — ``K = 1`` is the serial captured-replay fast path, ``K >= 2``
    the :class:`~repro.grad.capture.StackedStep` program driving ``K``
    clients through one set of fat NumPy ops — and reports seconds per
    step *per client* (duel time / steps / K).  The win is amortized
    dispatch: per-op Python/NumPy overhead is paid once per stack instead
    of once per client, so per-client cost should fall as ``K`` grows
    until the fat operands saturate memory bandwidth.
    """
    from repro.grad.capture import CaptureError, stacked_engine
    from repro.grad.optim import StackedSGD

    rows = []
    for name in ("mlp", "cnn"):

        def make_serial_runner():
            model, features, labels = _step_fixture(name, seed=seed)
            model.train()
            optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
            engine = training_engine(model)

            def one_step():
                optimizer.zero_grad()
                engine.step(features, labels)
                optimizer.step()

            one_step()  # warm-up: the capture step
            return one_step

        def make_stacked_runner(stack):
            model, features, labels = _step_fixture(name, seed=seed)
            try:
                program = stacked_engine(model).program(
                    stack,
                    np.zeros_like(features),
                    np.zeros(labels.shape, np.int64),
                )
            except CaptureError:
                return None
            state = model.state_dict()
            keys = [key for key, _ in model.named_parameters()]
            stacks = [program.param_stack(i) for i in range(len(keys))]
            for index, key in enumerate(keys):
                if stacks[index] is not None:
                    stacks[index][:] = state[key]
            optimizer = StackedSGD(stacks, lr=0.01, momentum=0.9)

            def one_step():
                # Bill the per-client batch staging too — the executor
                # pays it every step, so leaving it out would flatter
                # large stacks.
                for k in range(stack):
                    program.features[k] = features
                    program.labels[k] = labels
                program.step()
                optimizer.step(program.grads())

            one_step()  # warm-up
            return one_step

        runners = []
        for stack in stack_sizes:
            runner = make_serial_runner() if stack == 1 else make_stacked_runner(stack)
            if runner is not None:
                runners.append((stack, runner))

        def run_many(step_fn):
            return lambda: [step_fn() for _ in range(steps)]

        times = _duel([run_many(fn) for _, fn in runners], repeats)
        serial_per_client = None
        for (stack, _), seconds in zip(runners, times):
            per_client = seconds / steps / stack
            if stack == 1:
                serial_per_client = per_client
            rows.append(
                {
                    "model": name,
                    "stack_size": stack,
                    "seconds_per_step": round(seconds / steps, 6),
                    "per_client_seconds_per_step": round(per_client, 6),
                    "speedup_vs_serial": (
                        round(serial_per_client / per_client, 2)
                        if serial_per_client and per_client > 0
                        else None
                    ),
                }
            )
    return rows


def bench_arena_plan(seed: int = 0, stack: int = 16) -> list[dict]:
    """Arena-planner statistics for the bench programs (no timing).

    Compiles each program with the optimizer on and off and reports the
    planner's own accounting (see
    :class:`~repro.grad.capture.ArenaPlanStats`): peak planned arena
    bytes vs the unplanned one-buffer-per-op arena, slot counts, and
    dead ops eliminated.  ``reduction`` is the headline number — the
    fraction of managed arena bytes the liveness coloring removed.
    """
    from repro.grad.capture import CaptureError, stacked_engine

    def train_stats(name):
        model, features, labels = _step_fixture(name, seed=seed)
        model.train()
        engine = training_engine(model)
        engine.step(features, labels)
        (program,) = engine.programs.values()
        return program.stats

    def stacked_stats(name):
        model, features, labels = _step_fixture(name, seed=seed)
        try:
            program = stacked_engine(model).program(
                stack, np.zeros_like(features), np.zeros(labels.shape, np.int64)
            )
        except CaptureError:
            return None
        return program.stats

    rows = []
    for name in ("mlp", "cnn"):
        for label, stats in (
            (f"{name}-train", train_stats(name)),
            (f"{name}-stacked-k{stack}", stacked_stats(name)),
        ):
            if stats is None:
                continue
            rows.append({"program": label, **stats.to_dict()})
    return rows


def bench_eval_fastpath(repeats: int = 3, seed: int = 0, n_test: int = 512) -> dict:
    """Two-pass vs fused vs captured-replay evaluation of the bench CNN."""
    _, test, info = load_dataset("mnist", n_train=64, n_test=n_test, seed=seed)
    model = build_model("cnn", info, seed=seed + 53)

    def two_pass():
        # The pre-fusion server cost: separate accuracy and loss passes.
        return evaluate_accuracy(model, test), evaluate_loss(model, test)

    def fused():
        return evaluate(model, test)

    def fused_compiled():
        return evaluate(model, test, compiled=True)

    fused_compiled()  # warm-up: captures the inference program
    two_pass_s, fused_s, compiled_s = _duel(
        [two_pass, fused, fused_compiled], repeats
    )
    return {
        "num_samples": n_test,
        "two_pass_seconds": round(two_pass_s, 5),
        "fused_seconds": round(fused_s, 5),
        "fused_compiled_seconds": round(compiled_s, 5),
        "speedup_fused_vs_two_pass": round(two_pass_s / fused_s, 2),
        "speedup_compiled_vs_two_pass": round(two_pass_s / compiled_s, 2),
    }


def bench_federated_round(
    num_workers: int, repeats: int = 2, seed: int = 0
) -> dict:
    """Time one full round (all parties + aggregation), excluding setup.

    A warm-up round runs first so pool creation and lazy caches are not
    billed to the measured rounds.
    """
    model, clients = _build_fixture(seed=seed)
    # Explicit backend: "auto" would degrade to serial on a single-CPU
    # host and this benchmark would silently time the wrong thing.
    config = _config(
        num_workers=num_workers,
        executor="parallel" if num_workers >= 2 else "serial",
    )
    with FederatedServer(model, FedAvg(), clients, config) as server:
        server.fit(1)  # warm-up (forks the pool when num_workers >= 2)
        seconds = _time(lambda: server.fit(1), repeats)
    return {
        "num_workers": num_workers,
        "executor": "parallel" if num_workers >= 2 else "serial",
        "seconds": round(seconds, 4),
    }


#: codec configurations benchmarked, mirroring the sweep's default ladder
BENCH_CODECS = (
    {"codec": "identity"},
    {"codec": "float16"},
    {"codec": "qsgd", "codec_bits": 4},
    {"codec": "qsgd", "codec_bits": 8},
    {"codec": "topk", "codec_k": 0.1},
    {"codec": "randk", "codec_k": 0.1},
)


def _codec_label(spec: dict) -> str:
    name = spec["codec"]
    if name == "qsgd":
        return f"qsgd{spec['codec_bits']}"
    if name in ("topk", "randk"):
        return f"{name}{spec['codec_k']:g}"
    return name


def bench_codecs(size: int = 131072, repeats: int = 3, seed: int = 0) -> list[dict]:
    """Encode/decode throughput and wire size per codec on a dense vector.

    ``size`` defaults to the order of the bench CNN's parameter count so
    the timings predict real per-client encode cost.
    """
    from repro.comm import FLOAT_BYTES, make_codec

    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(size).astype(np.float32)
    rows = []
    for spec in BENCH_CODECS:
        codec = make_codec(
            spec["codec"],
            bits=spec.get("codec_bits", 8),
            k=spec.get("codec_k", 0.1),
        )
        codec_rng = np.random.default_rng(seed + 1)
        payload = codec.encode(vector, rng=codec_rng)
        encode_s = _time(lambda: codec.encode(vector, rng=codec_rng), repeats)
        decode_s = _time(lambda: codec.decode(payload), repeats)
        rows.append(
            {
                "codec": _codec_label(spec),
                "encode_seconds": round(encode_s, 5),
                "decode_seconds": round(decode_s, 5),
                "encode_mfloats_per_s": round(size / encode_s / 1e6, 1),
                "nbytes": payload.nbytes,
                "ratio_vs_float32": round(
                    payload.nbytes / (FLOAT_BYTES * size), 4
                ),
            }
        )
    return rows


#: dropout levels benchmarked; 0.0 is the fault-free accuracy baseline
BENCH_DROPOUT_PROBS = (0.0, 0.2, 0.4)


def bench_dropout(num_rounds: int = 4, seed: int = 0) -> list[dict]:
    """Accuracy under client dropout: the robustness-vs-loss trade-off.

    Runs the bench fixture for a few rounds at each dropout level with
    partial participation (so over-sampling engages) and reports final
    accuracy next to the parties actually dropped — the degradation
    column a fault-model change moves.
    """
    from repro.data import load_dataset

    rows = []
    for prob in BENCH_DROPOUT_PROBS:
        model, clients = _build_fixture(seed=seed)
        _, test, _ = load_dataset("mnist", n_train=640, n_test=64, seed=seed)
        config = _config(
            num_rounds=num_rounds,
            sample_fraction=0.5,
            dropout_prob=prob,
        )
        with FederatedServer(
            model, FedAvg(), clients, config, test_dataset=test
        ) as server:
            history = server.fit()
        rows.append(
            {
                "dropout_prob": prob,
                "final_accuracy": round(history.final_accuracy, 4),
                "dropped_total": int(history.dropped_counts.sum()),
                "mean_completed": round(
                    float(np.mean([len(r.participants) for r in history.records])), 2
                ),
            }
        )
    return rows


def bench_round_bytes(seed: int = 0) -> list[dict]:
    """Measured bytes one federated round transmits under each codec.

    Round 0 is measured, so error-feedback codecs show their dense
    warm-start broadcast on the downlink; their steady-state downlink is
    as sparse as the uplink.
    """
    rows = []
    for spec in BENCH_CODECS:
        model, clients = _build_fixture(seed=seed)
        config = _config(**spec)
        with FederatedServer(model, FedAvg(), clients, config) as server:
            record = server.run_round(0)
        rows.append(
            {
                "codec": _codec_label(spec),
                "bytes_down": record.bytes_down,
                "bytes_up": record.bytes_up,
                "bytes_total": record.bytes_communicated,
            }
        )
    baseline = next(r for r in rows if r["codec"] == "identity")
    for row in rows:
        row["ratio_vs_identity"] = round(
            row["bytes_total"] / baseline["bytes_total"], 4
        )
    return rows


#: population sizes for the flat-memory scaling column (fixed cohort)
BENCH_POPULATION_SIZES = (1_000, 100_000, 1_000_000)

#: the child process measuring one population point's peak RSS; its own
#: ru_maxrss is the honest number — measuring in-process would fold every
#: previously-run benchmark's allocations into the peak.
_ASYNC_CHILD = """
import json, resource, sys, time
from repro.spec import RunSpec
from repro.experiments.runner import run_spec
from repro.experiments.scale import SMOKE

size, cohort, rounds, seed = (int(a) for a in sys.argv[1:5])
spec = RunSpec.build(
    "mnist", "iid", "fedavg", preset=SMOKE, population=size,
    sample_per_round=cohort, aggregation="async", num_rounds=rounds,
    seed=seed,
)
start = time.perf_counter()
outcome = run_spec(spec)
wall = time.perf_counter() - start
print(json.dumps({
    "wall_seconds": wall,
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    "final_accuracy": outcome.final_accuracy,
}))
"""


def bench_async_engine(
    seed: int = 0,
    smoke: bool = False,
    cohort: int = 32,
    num_rounds: int = 2,
    populations: tuple[int, ...] = BENCH_POPULATION_SIZES,
) -> dict:
    """Flat-memory scaling and the buffer-size trade-off of the async engine.

    Two tables:

    - ``scaling`` — wall time and peak RSS of a full async run at a fixed
      cohort while the population grows 1k -> 100k -> 1M.  Each point runs
      in a fresh subprocess so its ``ru_maxrss`` reflects that run alone;
      the flat-memory claim is RSS staying put while the population grows
      three orders of magnitude.
    - ``buffer_sweep`` — wall time, virtual time, mean staleness and final
      accuracy as the FedBuff buffer ``M`` shrinks from the cohort (exact
      barrier) downward at a fixed population.
    """
    import subprocess
    import sys

    from repro.spec import RunSpec
    from repro.experiments.runner import run_spec
    from repro.experiments.scale import SMOKE

    if smoke:
        populations = tuple(p for p in populations if p <= 100_000)
        cohort, num_rounds = 8, 1

    scaling = []
    for size in populations:
        out = subprocess.run(
            [sys.executable, "-c", _ASYNC_CHILD,
             str(size), str(cohort), str(num_rounds), str(seed)],
            capture_output=True, text=True, check=True,
        )
        point = json.loads(out.stdout.strip().splitlines()[-1])
        scaling.append(
            {
                "population": size,
                "cohort": cohort,
                "num_rounds": num_rounds,
                "wall_seconds": round(point["wall_seconds"], 3),
                "peak_rss_mb": round(point["peak_rss_mb"], 1),
            }
        )

    buffer_sweep = []
    sweep_cohort = 8
    buffers = (2, 8) if smoke else (2, 4, 8)
    for buffer in buffers:
        spec = RunSpec.build(
            "mnist", "iid", "fedavg", preset=SMOKE, population=10_000,
            sample_per_round=sweep_cohort, aggregation="async",
            buffer_size=buffer, staleness_exponent=0.5,
            num_rounds=2 if smoke else 4, seed=seed,
        )
        start = time.perf_counter()
        outcome = run_spec(spec)
        wall = time.perf_counter() - start
        history = outcome.history
        buffer_sweep.append(
            {
                "buffer_size": buffer,
                "cohort": sweep_cohort,
                "is_barrier": buffer == sweep_cohort,
                "wall_seconds": round(wall, 3),
                "virtual_time": round(float(history.virtual_times[-1]), 3),
                "mean_staleness": round(history.mean_staleness(), 3),
                "final_accuracy": round(history.final_accuracy, 4),
            }
        )
    return {"scaling": scaling, "buffer_sweep": buffer_sweep}


def _hardware_note(cpu_count: int, worker_counts: list[int]) -> str:
    if not worker_counts:
        return "No parallel worker counts benchmarked."
    capped = [w for w in worker_counts if w > cpu_count]
    if not capped:
        return (
            f"{cpu_count} CPUs available; worker counts up to "
            f"{max(worker_counts)} can run truly concurrently."
        )
    return (
        f"Hardware cap: this machine exposes {cpu_count} CPU(s), so worker "
        f"counts {capped} time-slice a single core instead of running "
        "concurrently. Parallel speedup is bounded by min(workers, cpus); "
        "expect ~1x (minus IPC overhead) here, and near-linear scaling on "
        "multi-core hosts. The determinism tests, not this timing, are the "
        "correctness signal on such machines."
    )


def run_benchmarks(
    repeats: int = 2,
    worker_counts: tuple[int, ...] = (0, 2, 4),
    seed: int = 0,
    smoke: bool = False,
) -> dict:
    """Run all micro-benchmarks and return the report dict.

    ``smoke`` shrinks every section to a seconds-scale sanity pass —
    enough to prove the benchmarks run, not to produce stable numbers.
    """
    if smoke:
        repeats, worker_counts = 1, tuple(w for w in worker_counts if w == 0)
    cpu_count = os.cpu_count() or 1
    bad = [w for w in worker_counts if w < 0 or w == 1]
    if bad:
        raise ValueError(
            f"worker counts must be 0 (serial) or >= 2 (parallel), got {bad}"
        )
    dropped = [w for w in worker_counts if w >= 2 and not fork_available()]
    if dropped:
        print(f"skipping worker counts {dropped}: fork is unavailable")
    worker_counts = [w for w in worker_counts if w not in dropped]
    report = {
        "schema": 1,
        "suite": "repro.experiments.bench",
        "hardware": {
            "cpu_count": cpu_count,
            "machine": platform.machine(),
            "system": platform.system(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "fork_available": fork_available(),
        },
        "local_round": bench_local_round(
            repeats=repeats if smoke else max(repeats, 3), seed=seed
        ),
        # More duel rounds than elsewhere: the eager/replay ratio is the
        # headline number and each interleaved round is only ~1s.
        "compiled_step": bench_compiled_step(
            repeats=repeats if smoke else max(repeats, 8),
            seed=seed,
            steps=5 if smoke else 20,
        ),
        "stacked_replay": bench_stacked_replay(
            repeats=repeats if smoke else max(repeats, 5),
            seed=seed,
            steps=3 if smoke else 10,
            stack_sizes=(1, 4) if smoke else BENCH_STACK_SIZES,
        ),
        # Deterministic planner accounting, not a timing: identical in
        # smoke and full runs.
        "arena_plan": bench_arena_plan(seed=seed),
        "eval_fastpath": bench_eval_fastpath(
            repeats=repeats if smoke else max(repeats, 3),
            seed=seed,
            n_test=128 if smoke else 512,
        ),
        "federated_round": [
            bench_federated_round(w, repeats=repeats, seed=seed)
            for w in worker_counts
        ],
        "codec_throughput": bench_codecs(
            repeats=repeats if smoke else max(repeats, 3), seed=seed
        ),
        "round_bytes": bench_round_bytes(seed=seed),
        "accuracy_under_dropout": bench_dropout(
            num_rounds=2 if smoke else 4, seed=seed
        ),
        "async_engine": bench_async_engine(seed=seed, smoke=smoke),
    }
    serial = next(
        (r for r in report["federated_round"] if r["num_workers"] == 0), None
    )
    if serial is not None:
        for row in report["federated_round"]:
            if row["num_workers"] >= 2 and row["seconds"] > 0:
                row["speedup_vs_serial"] = round(
                    serial["seconds"] / row["seconds"], 2
                )
    report["note"] = _hardware_note(
        cpu_count, [w for w in worker_counts if w >= 2]
    )
    return report


#: wall-time regression tolerance for --check-baseline: smoke runs use
#: best-of-1 timings on a shared host, so only a multiple-of-baseline
#: slowdown is a signal rather than noise.
BASELINE_TOLERANCE = 2.5


def check_baseline(report: dict, baseline: dict, tolerance: float = BASELINE_TOLERANCE):
    """Wall-time regressions of ``report`` vs a committed baseline.

    Compares the hot-path timings — ``compiled_step`` seconds per step
    and ``stacked_replay`` seconds per step — row by row, and returns a
    list of violation strings (empty = no regression beyond
    ``tolerance``x the committed number).
    """
    problems = []

    def compare(section, key_fields, value_field):
        old_rows = {
            tuple(row[field] for field in key_fields): row
            for row in baseline.get(section, [])
        }
        for row in report.get(section, []):
            key = tuple(row[field] for field in key_fields)
            old = old_rows.get(key)
            if old is None:
                continue
            now, then = row[value_field], old[value_field]
            if then > 0 and now > then * tolerance:
                label = "/".join(str(part) for part in key)
                problems.append(
                    f"{section}[{label}].{value_field}: {now:.6f}s vs "
                    f"baseline {then:.6f}s (tolerance {tolerance:g}x)"
                )

    compare("compiled_step", ("model",), "compiled_seconds_per_step")
    compare("stacked_replay", ("model", "stack_size"), "seconds_per_step")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=DEFAULT_OUTPUT, help="where to write the JSON report"
    )
    parser.add_argument(
        "--check-baseline", default=None, metavar="JSON",
        help="fail if compiled_step/stacked_replay wall times regress "
             f"beyond {BASELINE_TOLERANCE:g}x this committed report",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="*",
        default=[0, 2, 4],
        help="worker counts to benchmark (0 = serial)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-scale sanity run (small sizes, serial only)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(
        repeats=args.repeats, worker_counts=tuple(args.workers), smoke=args.smoke
    )
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if args.check_baseline is not None:
        baseline = json.loads(Path(args.check_baseline).read_text())
        problems = check_baseline(report, baseline)
        for problem in problems:
            print(f"BASELINE REGRESSION: {problem}")
        if problems:
            return 1
        print(f"baseline check OK ({args.check_baseline})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
