"""Centralized training reference.

The paper's accuracy tables are implicitly anchored to what centralized
training achieves on each dataset (its IID rows approach it).  This helper
trains a model on the pooled data with the same optimizer settings the
federation uses, giving experiments an upper-reference point and the
calibration numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import load_dataset
from repro.data.loader import DataLoader
from repro.federated.evaluation import evaluate_accuracy
from repro.grad import Tensor, functional as F
from repro.grad.nn.module import Module
from repro.grad.optim import SGD
from repro.models import build_model


@dataclass
class CentralizedResult:
    """Per-epoch record of a centralized run."""

    accuracies: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("no epochs recorded")
        return self.accuracies[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("no epochs recorded")
        return max(self.accuracies)


def train_centralized(
    model: Module,
    train_dataset,
    test_dataset,
    epochs: int,
    lr: float,
    batch_size: int = 64,
    momentum: float = 0.9,
    weight_decay: float = 0.0,
    seed: int = 0,
) -> CentralizedResult:
    """Train ``model`` on pooled data; evaluate after every epoch."""
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    rng = np.random.default_rng(seed)
    optimizer = SGD(
        model.parameters(), lr=lr, momentum=momentum, weight_decay=weight_decay
    )
    loader = DataLoader(train_dataset, batch_size, shuffle=True, rng=rng)
    result = CentralizedResult()
    for _ in range(epochs):
        model.train()
        losses = []
        for features, labels in loader:
            optimizer.zero_grad()
            loss = F.cross_entropy(model(Tensor(features)), labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        result.losses.append(float(np.mean(losses)))
        result.accuracies.append(evaluate_accuracy(model, test_dataset))
    return result


def centralized_reference(
    dataset: str,
    epochs: int = 10,
    model: str = "default",
    lr: float | None = None,
    seed: int = 0,
    **dataset_kwargs,
) -> CentralizedResult:
    """One-call centralized baseline for a named dataset."""
    from repro.experiments.runner import paper_lr_for

    train, test, info = load_dataset(dataset, seed=seed, **dataset_kwargs)
    net = build_model(model, info, seed=seed)
    return train_centralized(
        net,
        train,
        test,
        epochs=epochs,
        lr=lr if lr is not None else paper_lr_for(dataset),
        seed=seed,
    )
