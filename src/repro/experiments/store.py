"""Persistence for experiment outcomes.

A :class:`ResultStore` is a directory of JSON files, one per run, keyed
by the spec's content hash (:meth:`repro.spec.RunSpec.run_id`) so two
runs differing in *any* scientific field — model, codec, fault schedule,
not just (dataset, partition, algorithm, seed) — land in different
files.  Each record embeds the full resolved spec, which makes the store
self-describing: ``completed(spec)`` answers "has this exact experiment
been run?" and lets sweeps and the Table 3 driver resume a half-finished
matrix without re-running a single cell.

Files written before content addressing existed (named
``dataset__partition__algorithm__seed.json``, no embedded spec) still
load: every read path treats ``spec``/``run_id`` as optional.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import warnings

from repro.federated.history import History
from repro.spec import RunSpec
from repro.experiments.leaderboard import Leaderboard
from repro.experiments.runner import ExperimentOutcome, TrialSummary


def outcome_to_dict(outcome: ExperimentOutcome) -> dict:
    """Serialize an outcome to plain JSON-compatible data."""
    data = {
        "dataset": outcome.dataset,
        "partition": outcome.partition,
        "algorithm": outcome.algorithm,
        "model": outcome.model,
        "seed": outcome.seed,
        "final_accuracy": outcome.final_accuracy,
        "best_accuracy": outcome.best_accuracy,
        "history": outcome.history.to_dict(),
        # Virtual-population runs derive parties lazily and have no
        # materialized partition; record the absence explicitly.
        "party_sizes": (
            [int(s) for s in outcome.partition_result.sizes]
            if outcome.partition_result is not None
            else None
        ),
        "config": {
            "num_rounds": outcome.config.num_rounds,
            "local_epochs": outcome.config.local_epochs,
            "batch_size": outcome.config.batch_size,
            "lr": outcome.config.lr,
            "sample_fraction": outcome.config.sample_fraction,
            "sampler": outcome.config.sampler,
            "optimizer": outcome.config.optimizer,
            "bn_policy": outcome.config.bn_policy,
            "codec": outcome.config.codec,
            "codec_bits": outcome.config.codec_bits,
            "codec_k": outcome.config.codec_k,
        },
    }
    if outcome.spec is not None:
        data["spec"] = outcome.spec.to_dict()
        data["run_id"] = outcome.spec.run_id()
    return data


def _normalize_record(record: dict) -> dict:
    """Legacy loader shim: older records carry no spec/run_id keys."""
    record.setdefault("spec", None)
    record.setdefault("run_id", None)
    return record


class StoreWarning(UserWarning):
    """A store file could not be read; the record was skipped, not raised."""


#: filename shape of content-addressed records: ``<prefix>__<run_id>.json``.
#: Files named this way embed the run_id their name carries, so a
#: run_id lookup never needs to open them — only legacy or hand-renamed
#: files (which don't match) can hide a hash inside.
_CANONICAL_NAME = re.compile(r"^.+__[0-9a-f]{16}\.json$")


class ResultStore:
    """Directory-backed store of experiment results, keyed by ``run_id``."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, outcome: ExperimentOutcome) -> pathlib.Path:
        if outcome.spec is not None:
            return self._spec_path(outcome.spec)
        return self._legacy_path(
            outcome.dataset, outcome.partition, outcome.algorithm, outcome.seed
        )

    def _spec_path(self, spec: RunSpec) -> pathlib.Path:
        # Readable prefix for humans; the run_id suffix is the key.
        return self.root / (
            f"{spec.data.name}__{spec.algorithm.name}__{spec.run_id()}.json"
        )

    def _legacy_path(
        self, dataset: str, partition: str, algorithm: str, seed: int
    ) -> pathlib.Path:
        safe_partition = (
            partition.replace("/", "_").replace("(", "_").replace(")", "")
            .replace("#", "C").replace("~", "-").replace("=", "-").replace(",", "_")
        )
        return self.root / f"{dataset}__{safe_partition}__{algorithm}__{seed}.json"

    def save(self, outcome: ExperimentOutcome) -> pathlib.Path:
        """Write a record atomically: a reader never sees a partial file.

        The JSON goes to a pid-suffixed ``.tmp`` sibling first and is
        published with ``os.replace``, so a writer killed mid-save
        leaves at most an orphaned temp file (invisible to the
        ``*.json`` globs every read path uses) and two processes racing
        on the same run_id end with one intact record — last writer
        wins whole, never interleaved.
        """
        path = self._path(outcome)
        payload = json.dumps(outcome_to_dict(outcome), indent=2)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path

    def _load(self, path: pathlib.Path) -> dict | None:
        """Parse one record file; warn and return None if unreadable."""
        try:
            return _normalize_record(json.loads(path.read_text()))
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as error:
            warnings.warn(
                f"skipping unreadable result file {path}: {error}",
                StoreWarning,
                stacklevel=3,
            )
            return None

    def get(self, spec: RunSpec) -> dict | None:
        """The stored record for this exact spec, or None.

        Matches on ``run_id``, so the lookup is insensitive to the
        ``exec`` section (a serially-computed result satisfies a
        parallel run's query) and blind to legacy records, which carry
        no content hash.  The lookup is O(1)-ish in the store size: the
        run_id is in the filename, so a miss globs for the
        ``*__{run_id}.json`` suffix and only falls back to opening the
        handful of legacy/renamed files whose names carry no hash —
        it never re-parses every canonical record the way the old full
        scan did (which made a fresh N-cell matrix O(N²) in JSON loads).
        """
        run_id = spec.run_id()
        path = self._spec_path(spec)
        if path.exists():
            record = self._load(path)
            if record is not None:
                return record
        # The dataset/algorithm prefix may differ if the file was copied
        # from another store; any canonical name carries the hash.
        for candidate in sorted(self.root.glob(f"*__{run_id}.json")):
            record = self._load(candidate)
            if record is not None and record["run_id"] == run_id:
                return record
        # Legacy or hand-renamed files hide their hash (if any) inside.
        for candidate in sorted(self.root.glob("*.json")):
            if _CANONICAL_NAME.match(candidate.name):
                continue
            record = self._load(candidate)
            if record is not None and record["run_id"] == run_id:
                return record
        return None

    def completed(self, spec: RunSpec) -> bool:
        """Whether this exact experiment already has a stored result."""
        return self.get(spec) is not None

    def history(self, spec: RunSpec) -> History | None:
        """The stored run's reloaded :class:`History`, or None."""
        record = self.get(spec)
        if record is None:
            return None
        return History.from_dict(record["history"])

    def records(self) -> list[dict]:
        """All stored run records, sorted by filename.

        Unparseable files (truncated by a pre-atomic-save crash, or
        damaged by hand) are skipped with a :class:`StoreWarning`
        instead of raising — one corrupt file cannot brick the store.
        """
        records = []
        for path in sorted(self.root.glob("*.json")):
            record = self._load(path)
            if record is not None:
                records.append(record)
        return records

    def query(
        self,
        dataset: str | None = None,
        partition: str | None = None,
        algorithm: str | None = None,
    ) -> list[dict]:
        """Records matching every given filter."""
        out = []
        for record in self.records():
            if dataset is not None and record["dataset"] != dataset:
                continue
            if partition is not None and record["partition"] != partition:
                continue
            if algorithm is not None and record["algorithm"] != algorithm:
                continue
            out.append(record)
        return out

    def specs(self) -> list[RunSpec]:
        """The resolved specs of every content-addressed record."""
        return [
            RunSpec.from_dict(record["spec"])
            for record in self.records()
            if record["spec"] is not None
        ]

    def histories(
        self,
        dataset: str | None = None,
        partition: str | None = None,
        algorithm: str | None = None,
    ) -> list[History]:
        """Reload matching runs' histories into the analysis accessors.

        The inverse of persisting ``outcome.history.to_dict()``: curve
        accessors, ``cumulative_communication()`` and the systems-model
        replay all work on the reloaded objects.
        """
        return [
            History.from_dict(record["history"])
            for record in self.query(dataset, partition, algorithm)
        ]

    def leaderboard(self) -> Leaderboard:
        """Aggregate stored runs into a leaderboard (seeds become trials)."""
        grouped: dict[tuple[str, str, str], list[float]] = {}
        for record in self.records():
            key = (record["dataset"], record["partition"], record["algorithm"])
            grouped.setdefault(key, []).append(float(record["final_accuracy"]))
        board = Leaderboard()
        for (dataset, partition, algorithm), accuracies in grouped.items():
            board.add(
                TrialSummary(
                    dataset=dataset,
                    partition=partition,
                    algorithm=algorithm,
                    accuracies=accuracies,
                )
            )
        return board

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json")))
