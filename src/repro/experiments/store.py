"""Persistence for experiment outcomes.

A :class:`ResultStore` is a directory of JSON files, one per run, holding
the experiment key (dataset/partition/algorithm/seed), the full per-round
history and the partition shape.  It backs the leaderboard workflow:
accumulate runs over time, re-rank without re-running.
"""

from __future__ import annotations

import json
import pathlib

from repro.federated.history import History
from repro.experiments.leaderboard import Leaderboard
from repro.experiments.runner import ExperimentOutcome, TrialSummary


def outcome_to_dict(outcome: ExperimentOutcome) -> dict:
    """Serialize an outcome to plain JSON-compatible data."""
    return {
        "dataset": outcome.dataset,
        "partition": outcome.partition,
        "algorithm": outcome.algorithm,
        "model": outcome.model,
        "seed": outcome.seed,
        "final_accuracy": outcome.final_accuracy,
        "best_accuracy": outcome.best_accuracy,
        "history": outcome.history.to_dict(),
        "party_sizes": [int(s) for s in outcome.partition_result.sizes],
        "config": {
            "num_rounds": outcome.config.num_rounds,
            "local_epochs": outcome.config.local_epochs,
            "batch_size": outcome.config.batch_size,
            "lr": outcome.config.lr,
            "sample_fraction": outcome.config.sample_fraction,
            "sampler": outcome.config.sampler,
            "optimizer": outcome.config.optimizer,
            "bn_policy": outcome.config.bn_policy,
            "codec": outcome.config.codec,
            "codec_bits": outcome.config.codec_bits,
            "codec_k": outcome.config.codec_k,
        },
    }


class ResultStore:
    """Directory-backed store of experiment results."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, dataset: str, partition: str, algorithm: str, seed: int) -> pathlib.Path:
        safe_partition = (
            partition.replace("/", "_").replace("(", "_").replace(")", "")
            .replace("#", "C").replace("~", "-").replace("=", "-").replace(",", "_")
        )
        return self.root / f"{dataset}__{safe_partition}__{algorithm}__{seed}.json"

    def save(self, outcome: ExperimentOutcome) -> pathlib.Path:
        path = self._path(
            outcome.dataset, outcome.partition, outcome.algorithm, outcome.seed
        )
        path.write_text(json.dumps(outcome_to_dict(outcome), indent=2))
        return path

    def records(self) -> list[dict]:
        """All stored run records, sorted by filename."""
        return [
            json.loads(path.read_text()) for path in sorted(self.root.glob("*.json"))
        ]

    def query(
        self,
        dataset: str | None = None,
        partition: str | None = None,
        algorithm: str | None = None,
    ) -> list[dict]:
        """Records matching every given filter."""
        out = []
        for record in self.records():
            if dataset is not None and record["dataset"] != dataset:
                continue
            if partition is not None and record["partition"] != partition:
                continue
            if algorithm is not None and record["algorithm"] != algorithm:
                continue
            out.append(record)
        return out

    def histories(
        self,
        dataset: str | None = None,
        partition: str | None = None,
        algorithm: str | None = None,
    ) -> list[History]:
        """Reload matching runs' histories into the analysis accessors.

        The inverse of persisting ``outcome.history.to_dict()``: curve
        accessors, ``cumulative_communication()`` and the systems-model
        replay all work on the reloaded objects.
        """
        return [
            History.from_dict(record["history"])
            for record in self.query(dataset, partition, algorithm)
        ]

    def leaderboard(self) -> Leaderboard:
        """Aggregate stored runs into a leaderboard (seeds become trials)."""
        grouped: dict[tuple[str, str, str], list[float]] = {}
        for record in self.records():
            key = (record["dataset"], record["partition"], record["algorithm"])
            grouped.setdefault(key, []).append(float(record["final_accuracy"]))
        board = Leaderboard()
        for (dataset, partition, algorithm), accuracies in grouped.items():
            board.add(
                TrialSummary(
                    dataset=dataset,
                    partition=partition,
                    algorithm=algorithm,
                    accuracies=accuracies,
                )
            )
        return board

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json")))
