"""One-call experiment runner implementing the paper's protocol.

:func:`run_spec` executes one fully-resolved :class:`~repro.spec.RunSpec`
— a single (dataset, partition, algorithm, ...) cell of the experimental
matrix.  :func:`run_federated_experiment` is the stable keyword facade
over it (flags in, spec out, run); ``run_trials`` repeats a cell over
seeds and reports mean +- std, the paper's three-trial protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import build_cache, load_dataset
from repro.data.dataset import DatasetInfo
from repro.federated import (
    AsyncFederation,
    FederatedConfig,
    FederatedServer,
    History,
    MaterializedPopulation,
    VirtualPopulation,
    make_algorithm,
    make_clients,
)
from repro.models import build_model
from repro.partition import Partition, parse_strategy
from repro.partition.base import Partitioner
from repro.spec import RunSpec
from repro.experiments.scale import BENCH, ScalePreset

#: the paper tunes lr from {0.1, 0.01, 0.001}; rcv1 uses 0.1, the rest 0.01
PAPER_LEARNING_RATES = {"rcv1": 0.1}
DEFAULT_LR = 0.01


@dataclass
class ExperimentOutcome:
    """Everything produced by one experiment cell."""

    dataset: str
    partition: str
    algorithm: str
    model: str
    seed: int
    history: History
    #: None on virtual-population runs (parties are derived lazily from
    #: ``(seed, party)`` — there is no materialized partition)
    partition_result: Partition | None
    info: DatasetInfo
    config: FederatedConfig
    #: the resolved spec this outcome was produced from (content address
    #: via ``spec.run_id()``); None only on outcomes built by hand.
    spec: RunSpec | None = None

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def best_accuracy(self) -> float:
        return self.history.best_accuracy


@dataclass
class TrialSummary:
    """Mean +- std over repeated trials (the paper's reporting format)."""

    dataset: str
    partition: str
    algorithm: str
    accuracies: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies))

    def format_cell(self) -> str:
        """Render like the paper's Table 3 cells: ``68.2% +- 0.7%``."""
        return f"{100 * self.mean:.1f}% +- {100 * self.std:.1f}%"


def paper_lr_for(dataset: str) -> float:
    """The paper's tuned learning rate for a dataset."""
    return PAPER_LEARNING_RATES.get(dataset.lower().replace("-", ""), DEFAULT_LR)


def run_spec(spec: RunSpec, resume: str | None = None) -> ExperimentOutcome:
    """Run the experiment a :class:`~repro.spec.RunSpec` describes.

    Parameters
    ----------
    spec:
        A fully-resolved spec (see :meth:`RunSpec.build` /
        :meth:`RunSpec.from_dict`).  Validated against the component
        registries before any compute happens.
    resume:
        Path of a checkpoint to load before training; the run continues
        from the checkpointed round and only executes the remaining
        ones.  Execution state, not science — deliberately not a spec
        field.

    ``spec.seed`` controls dataset generation, partition draw, model
    init, sampling and local shuffling — two runs of equal specs are
    identical, and so are two specs differing only in ``spec.exec``.
    """
    spec.validate()
    if spec.population.size is not None or spec.population.aggregation == "async":
        return _run_population_spec(spec, resume)
    partitioner = parse_strategy(spec.partition.strategy)

    dataset_kwargs = dict(spec.data.kwargs)
    if spec.data.n_train is not None:
        dataset_kwargs["n_train"] = spec.data.n_train
    if spec.data.n_test is not None:
        dataset_kwargs["n_test"] = spec.data.n_test
    train, test, info = load_dataset(
        spec.data.name, seed=spec.seed, cache=True, **dataset_kwargs
    )

    # The partition draw is a pure function of (dataset, strategy, seed),
    # so it shares the build cache; a cache hit skips the rng draw but is
    # bitwise-identical to it by determinism.
    partition_result = build_cache.cached_partition(
        build_cache.partition_key(
            build_cache.dataset_key(spec.data.name, spec.seed, dataset_kwargs),
            spec.partition.strategy,
            spec.partition.num_parties,
            spec.seed + 17,
        ),
        lambda: partitioner.partition(
            train, spec.partition.num_parties, np.random.default_rng(spec.seed + 17)
        ),
    )
    clients = make_clients(partition_result, train, seed=spec.seed + 29, drop_empty=True)

    config = _config_from_spec(spec)
    net = build_model(spec.model.name, info, seed=spec.seed + 53, **spec.model.kwargs)
    algo = make_algorithm(spec.algorithm.name, **spec.algorithm.kwargs)
    with FederatedServer(net, algo, clients, config, test_dataset=test) as server:
        if resume is not None:
            server.resume(resume)
            remaining = max(0, config.num_rounds - len(server.history))
            history = server.fit(remaining)
        else:
            history = server.fit()

    return ExperimentOutcome(
        dataset=info.name,
        partition=partition_result.strategy,
        algorithm=spec.algorithm.name,
        model=spec.model.name,
        seed=spec.seed,
        history=history,
        partition_result=partition_result,
        info=info,
        config=config,
        spec=spec,
    )


def _config_from_spec(spec: RunSpec) -> FederatedConfig:
    """Resolve a spec's train/comm/faults/exec/population sections into a config."""
    return FederatedConfig(
        num_rounds=spec.train.num_rounds,
        local_epochs=spec.train.local_epochs,
        batch_size=spec.train.batch_size,
        lr=spec.train.lr,
        sample_fraction=spec.train.sample_fraction,
        sampler=spec.train.sampler,
        optimizer=spec.train.optimizer,
        bn_policy=spec.train.bn_policy,
        executor=spec.exec.executor,
        num_workers=spec.exec.num_workers,
        stack_size=spec.exec.stack_size,
        stacked_tolerance=spec.exec.stacked_tolerance,
        codec=spec.comm.codec,
        codec_bits=spec.comm.bits,
        codec_k=spec.comm.k,
        dropout_prob=spec.faults.dropout_prob,
        straggler_prob=spec.faults.straggler_prob,
        straggler_factor=spec.faults.straggler_factor,
        crash_prob=spec.faults.crash_prob,
        deadline=spec.faults.deadline,
        checkpoint_every=spec.exec.checkpoint_every,
        checkpoint_path=spec.exec.checkpoint_path,
        compile=spec.exec.compile,
        optimize=spec.exec.optimize,
        eval_every=spec.train.eval_every,
        aggregation=spec.population.aggregation,
        sample_per_round=spec.population.sample_per_round,
        buffer_size=spec.population.buffer_size,
        staleness_exponent=spec.population.staleness_exponent,
        seed=spec.seed + 41,
    )


def _run_population_spec(spec: RunSpec, resume: str | None) -> ExperimentOutcome:
    """Run a population/async spec through :class:`AsyncFederation`.

    Seed derivations mirror the sync path exactly (dataset ``seed``,
    clients ``seed + 29``, config ``seed + 41``, model ``seed + 53``) so
    an async-barrier run over materialized clients reproduces the sync
    server bit for bit.
    """
    if resume is not None:
        raise ValueError(
            "resume is not supported for async/population runs: the event "
            "loop replays deterministically from the spec seed instead"
        )
    dataset_kwargs = dict(spec.data.kwargs)
    if spec.data.n_train is not None:
        dataset_kwargs["n_train"] = spec.data.n_train
    if spec.data.n_test is not None:
        dataset_kwargs["n_test"] = spec.data.n_test
    train, test, info = load_dataset(
        spec.data.name, seed=spec.seed, cache=True, **dataset_kwargs
    )

    partition_result: Partition | None = None
    if spec.population.size is not None:
        population = VirtualPopulation(
            train,
            spec.population.size,
            samples_per_client=spec.population.samples_per_client,
            seed=spec.seed + 29,
            skew_beta=spec.population.skew_beta,
        )
        partition_label = (
            "virtual-iid"
            if spec.population.skew_beta is None
            else f"virtual-dir({spec.population.skew_beta})"
        )
    else:
        partitioner = parse_strategy(spec.partition.strategy)
        partition_result = build_cache.cached_partition(
            build_cache.partition_key(
                build_cache.dataset_key(spec.data.name, spec.seed, dataset_kwargs),
                spec.partition.strategy,
                spec.partition.num_parties,
                spec.seed + 17,
            ),
            lambda: partitioner.partition(
                train,
                spec.partition.num_parties,
                np.random.default_rng(spec.seed + 17),
            ),
        )
        clients = make_clients(
            partition_result, train, seed=spec.seed + 29, drop_empty=True
        )
        population = MaterializedPopulation(clients)
        partition_label = partition_result.strategy

    config = _config_from_spec(spec)
    net = build_model(spec.model.name, info, seed=spec.seed + 53, **spec.model.kwargs)
    algo = make_algorithm(spec.algorithm.name, **spec.algorithm.kwargs)
    with AsyncFederation(net, algo, population, config, test_dataset=test) as engine:
        history = engine.fit()

    return ExperimentOutcome(
        dataset=info.name,
        partition=partition_label,
        algorithm=spec.algorithm.name,
        model=spec.model.name,
        seed=spec.seed,
        history=history,
        partition_result=partition_result,
        info=info,
        config=config,
        spec=spec,
    )


def run_federated_experiment(
    dataset: str,
    partition: str | Partitioner,
    algorithm: str,
    *,
    model: str = "default",
    num_parties: int | None = None,
    preset: ScalePreset = BENCH,
    num_rounds: int | None = None,
    local_epochs: int | None = None,
    batch_size: int | None = None,
    lr: float | None = None,
    sample_fraction: float = 1.0,
    sampler: str = "uniform",
    optimizer: str = "sgd",
    bn_policy: str = "average",
    executor: str = "auto",
    num_workers: int = 0,
    codec: str = "identity",
    codec_bits: int = 8,
    codec_k: float = 0.1,
    dropout_prob: float = 0.0,
    straggler_prob: float = 0.0,
    straggler_factor: float = 1.0,
    crash_prob: float = 0.0,
    deadline: float | None = None,
    checkpoint_every: int = 0,
    checkpoint_path: str | None = None,
    compile: bool = False,
    resume: str | None = None,
    seed: int = 0,
    algorithm_kwargs: dict | None = None,
    dataset_kwargs: dict | None = None,
    eval_every: int = 1,
) -> ExperimentOutcome:
    """Run one federated experiment cell (keyword facade over :func:`run_spec`).

    This signature is frozen: only ``dataset``, ``partition`` and
    ``algorithm`` are positional, and ``tools/lint.py`` rejects growth —
    new axes are added as :class:`~repro.spec.RunSpec` fields, not here.
    The call builds a spec with :meth:`RunSpec.build` and executes it, so
    ``run_federated_experiment(**kw)`` and
    ``run_spec(RunSpec.build(**kw))`` produce bitwise-identical
    histories.

    Parameters
    ----------
    dataset:
        Paper dataset name (``mnist``, ``cifar10``, ``adult``, ...).
    partition:
        Strategy spec (``"#C=2"``, ``"dir(0.5)"``, ``"iid"``, ...) or a
        :class:`Partitioner` instance.
    algorithm:
        ``fedavg`` / ``fedprox`` / ``scaffold`` / ``fednova`` / ``fedopt``.
    model:
        Model name, or ``"default"`` for the paper's per-modality choice.
    num_parties:
        Defaults to the paper's 10 (4 for FCUBE).
    preset:
        Scale preset for sizes/rounds; individual overrides win.
    executor / num_workers:
        Client-execution backend (see :mod:`repro.federated.executor`).
        ``num_workers >= 2`` trains sampled parties in parallel worker
        processes; results are bitwise identical to serial execution.
    codec / codec_bits / codec_k:
        Update-compression codec for both transport directions (see
        :mod:`repro.comm`); the default ``identity`` is the paper's
        uncompressed float32 wire.
    dropout_prob / straggler_prob / straggler_factor / crash_prob / deadline:
        Fault model knobs (see :mod:`repro.federated.faults`); all zero /
        ``None`` by default, i.e. the fault-free synchronous protocol.
    checkpoint_every / checkpoint_path:
        Write a full run checkpoint to ``checkpoint_path`` every k rounds.
    compile:
        Capture & replay training/inference steps through preallocated
        buffers (see :mod:`repro.grad.capture`); bitwise-identical to
        eager execution, purely a speed knob.
    resume:
        Path of a checkpoint to load before training; the run continues
        from the checkpointed round and only executes the remaining ones.
    seed:
        Controls dataset generation, partition draw, model init, sampling
        and local shuffling — two runs with equal arguments are identical.
    """
    spec = RunSpec.build(
        dataset,
        partition,
        algorithm,
        model=model,
        num_parties=num_parties,
        preset=preset,
        num_rounds=num_rounds,
        local_epochs=local_epochs,
        batch_size=batch_size,
        lr=lr,
        sample_fraction=sample_fraction,
        sampler=sampler,
        optimizer=optimizer,
        bn_policy=bn_policy,
        executor=executor,
        num_workers=num_workers,
        codec=codec,
        codec_bits=codec_bits,
        codec_k=codec_k,
        dropout_prob=dropout_prob,
        straggler_prob=straggler_prob,
        straggler_factor=straggler_factor,
        crash_prob=crash_prob,
        deadline=deadline,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        compile=compile,
        seed=seed,
        algorithm_kwargs=algorithm_kwargs,
        dataset_kwargs=dataset_kwargs,
        eval_every=eval_every,
    )
    return run_spec(spec, resume=resume)


def run_trials(
    dataset: str | None = None,
    partition: str | Partitioner | None = None,
    algorithm: str | None = None,
    num_trials: int = 3,
    base_seed: int = 0,
    store=None,
    spec: RunSpec | None = None,
    jobs: int = 1,
    **kwargs,
) -> TrialSummary:
    """The paper's protocol: repeat a cell over seeds, report mean +- std.

    Builds the base :class:`~repro.spec.RunSpec` once (or takes a
    prebuilt one via ``spec``) and enumerates the trials with
    :meth:`~repro.spec.RunSpec.trial_specs`.  With a ``store``
    (:class:`~repro.experiments.store.ResultStore`), trials whose spec is
    already :meth:`~repro.experiments.store.ResultStore.completed` are
    read back instead of re-run, and fresh trials are saved — re-invoking
    a finished protocol runs zero new cells.  ``jobs > 1`` runs the
    trials concurrently through the crash-safe scheduler
    (:func:`~repro.experiments.scheduler.run_cells`); records are
    byte-identical to a serial run.
    """
    if spec is not None:
        if dataset is not None or partition is not None or algorithm is not None:
            raise TypeError("pass either spec or dataset/partition/algorithm")
        if kwargs:
            raise TypeError(
                f"spec given; unexpected keyword arguments {sorted(kwargs)} "
                "(derive variants with spec.with_overrides instead)"
            )
        base = spec
        dataset, partition, algorithm = (
            spec.data.name, spec.partition.strategy, spec.algorithm.name
        )
    elif dataset is None or partition is None or algorithm is None:
        raise TypeError("run_trials needs dataset, partition and algorithm (or spec)")
    else:
        base = RunSpec.build(dataset, partition, algorithm, **kwargs)
    trial_specs = base.trial_specs(num_trials, base_seed=base_seed)
    summary = TrialSummary(
        dataset=dataset,
        partition=str(partition),
        algorithm=algorithm,
    )
    if jobs > 1:
        import tempfile

        from repro.experiments.scheduler import run_cells
        from repro.experiments.store import ResultStore

        with tempfile.TemporaryDirectory(prefix="repro-trials-") as scratch:
            target = store if store is not None else ResultStore(scratch)
            run_cells(trial_specs, store=target, jobs=jobs).raise_on_failure()
            for trial_spec in trial_specs:
                summary.accuracies.append(
                    float(target.get(trial_spec)["final_accuracy"])
                )
        return summary
    for trial_spec in trial_specs:
        if store is not None and store.completed(trial_spec):
            summary.accuracies.append(
                float(store.get(trial_spec)["final_accuracy"])
            )
            continue
        outcome = run_spec(trial_spec)
        if store is not None:
            store.save(outcome)
        summary.accuracies.append(outcome.final_accuracy)
    return summary
