"""One-call experiment runner implementing the paper's protocol.

``run_federated_experiment`` executes a single (dataset, partition,
algorithm) cell of Table 3; ``run_trials`` repeats it with different seeds
and reports mean +- std, the paper's three-trial protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import load_dataset
from repro.data.dataset import DatasetInfo
from repro.federated import (
    FederatedConfig,
    FederatedServer,
    History,
    make_algorithm,
    make_clients,
)
from repro.models import build_model
from repro.partition import Partition, parse_strategy
from repro.partition.base import Partitioner
from repro.experiments.scale import BENCH, ScalePreset

#: the paper tunes lr from {0.1, 0.01, 0.001}; rcv1 uses 0.1, the rest 0.01
PAPER_LEARNING_RATES = {"rcv1": 0.1}
DEFAULT_LR = 0.01


@dataclass
class ExperimentOutcome:
    """Everything produced by one experiment cell."""

    dataset: str
    partition: str
    algorithm: str
    model: str
    seed: int
    history: History
    partition_result: Partition
    info: DatasetInfo
    config: FederatedConfig

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def best_accuracy(self) -> float:
        return self.history.best_accuracy


@dataclass
class TrialSummary:
    """Mean +- std over repeated trials (the paper's reporting format)."""

    dataset: str
    partition: str
    algorithm: str
    accuracies: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies))

    def format_cell(self) -> str:
        """Render like the paper's Table 3 cells: ``68.2% +- 0.7%``."""
        return f"{100 * self.mean:.1f}% +- {100 * self.std:.1f}%"


def paper_lr_for(dataset: str) -> float:
    """The paper's tuned learning rate for a dataset."""
    return PAPER_LEARNING_RATES.get(dataset.lower().replace("-", ""), DEFAULT_LR)


def run_federated_experiment(
    dataset: str,
    partition: str | Partitioner,
    algorithm: str,
    model: str = "default",
    num_parties: int | None = None,
    preset: ScalePreset = BENCH,
    num_rounds: int | None = None,
    local_epochs: int | None = None,
    batch_size: int | None = None,
    lr: float | None = None,
    sample_fraction: float = 1.0,
    sampler: str = "uniform",
    optimizer: str = "sgd",
    bn_policy: str = "average",
    executor: str = "auto",
    num_workers: int = 0,
    codec: str = "identity",
    codec_bits: int = 8,
    codec_k: float = 0.1,
    dropout_prob: float = 0.0,
    straggler_prob: float = 0.0,
    straggler_factor: float = 1.0,
    crash_prob: float = 0.0,
    deadline: float | None = None,
    checkpoint_every: int = 0,
    checkpoint_path: str | None = None,
    resume: str | None = None,
    seed: int = 0,
    algorithm_kwargs: dict | None = None,
    dataset_kwargs: dict | None = None,
    eval_every: int = 1,
) -> ExperimentOutcome:
    """Run one federated experiment cell.

    Parameters
    ----------
    dataset:
        Paper dataset name (``mnist``, ``cifar10``, ``adult``, ...).
    partition:
        Strategy spec (``"#C=2"``, ``"dir(0.5)"``, ``"iid"``, ...) or a
        :class:`Partitioner` instance.
    algorithm:
        ``fedavg`` / ``fedprox`` / ``scaffold`` / ``fednova`` / ``fedopt``.
    model:
        Model name, or ``"default"`` for the paper's per-modality choice.
    num_parties:
        Defaults to the paper's 10 (4 for FCUBE).
    preset:
        Scale preset for sizes/rounds; individual overrides win.
    executor / num_workers:
        Client-execution backend (see :mod:`repro.federated.executor`).
        ``num_workers >= 2`` trains sampled parties in parallel worker
        processes; results are bitwise identical to serial execution.
    codec / codec_bits / codec_k:
        Update-compression codec for both transport directions (see
        :mod:`repro.comm`); the default ``identity`` is the paper's
        uncompressed float32 wire.
    dropout_prob / straggler_prob / straggler_factor / crash_prob / deadline:
        Fault model knobs (see :mod:`repro.federated.faults`); all zero /
        ``None`` by default, i.e. the fault-free synchronous protocol.
    checkpoint_every / checkpoint_path:
        Write a full run checkpoint to ``checkpoint_path`` every k rounds.
    resume:
        Path of a checkpoint to load before training; the run continues
        from the checkpointed round and only executes the remaining ones.
    seed:
        Controls dataset generation, partition draw, model init, sampling
        and local shuffling — two runs with equal arguments are identical.
    """
    partitioner = parse_strategy(partition) if isinstance(partition, str) else partition
    if num_parties is None:
        num_parties = partitioner.default_num_parties

    dataset_kwargs = dict(dataset_kwargs or {})
    if preset.n_train is not None:
        dataset_kwargs.setdefault("n_train", preset.n_train)
    if preset.n_test is not None:
        dataset_kwargs.setdefault("n_test", preset.n_test)
    if dataset.lower().replace("-", "") == "fcube":
        # FCUBE is defined at its paper size; keep it unless asked otherwise.
        dataset_kwargs.pop("n_train", None)
        dataset_kwargs.pop("n_test", None)
    train, test, info = load_dataset(dataset, seed=seed, **dataset_kwargs)

    partition_rng = np.random.default_rng(seed + 17)
    partition_result = partitioner.partition(train, num_parties, partition_rng)
    clients = make_clients(partition_result, train, seed=seed + 29, drop_empty=True)

    config = FederatedConfig(
        num_rounds=num_rounds if num_rounds is not None else preset.num_rounds,
        local_epochs=local_epochs if local_epochs is not None else preset.local_epochs,
        batch_size=batch_size if batch_size is not None else preset.batch_size,
        lr=lr if lr is not None else paper_lr_for(dataset),
        sample_fraction=sample_fraction,
        sampler=sampler,
        optimizer=optimizer,
        bn_policy=bn_policy,
        executor=executor,
        num_workers=num_workers,
        codec=codec,
        codec_bits=codec_bits,
        codec_k=codec_k,
        dropout_prob=dropout_prob,
        straggler_prob=straggler_prob,
        straggler_factor=straggler_factor,
        crash_prob=crash_prob,
        deadline=deadline,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        eval_every=eval_every,
        seed=seed + 41,
    )
    net = build_model(model, info, seed=seed + 53)
    algo = make_algorithm(algorithm, **(algorithm_kwargs or {}))
    with FederatedServer(net, algo, clients, config, test_dataset=test) as server:
        if resume is not None:
            server.resume(resume)
            remaining = max(0, config.num_rounds - len(server.history))
            history = server.fit(remaining)
        else:
            history = server.fit()

    return ExperimentOutcome(
        dataset=info.name,
        partition=partition_result.strategy,
        algorithm=algorithm,
        model=model,
        seed=seed,
        history=history,
        partition_result=partition_result,
        info=info,
        config=config,
    )


def run_trials(
    dataset: str,
    partition: str | Partitioner,
    algorithm: str,
    num_trials: int = 3,
    base_seed: int = 0,
    **kwargs,
) -> TrialSummary:
    """The paper's protocol: repeat a cell over seeds, report mean +- std."""
    if num_trials <= 0:
        raise ValueError(f"num_trials must be positive, got {num_trials}")
    summary = TrialSummary(
        dataset=dataset,
        partition=str(partition),
        algorithm=algorithm,
    )
    for trial in range(num_trials):
        outcome = run_federated_experiment(
            dataset, partition, algorithm, seed=base_seed + 1000 * trial, **kwargs
        )
        summary.accuracies.append(outcome.final_accuracy)
    return summary
