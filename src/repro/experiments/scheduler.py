"""Crash-safe parallel execution of experiment matrices over a ResultStore.

The Table 3 matrix and the sensitivity sweeps are hundreds of
independent, content-addressed cells — a schedulable workload, not a
for-loop.  :func:`run_cells` executes any list of :class:`RunSpec` cells
with a pool of work-stealing worker processes that coordinate purely
through the store directory, so there is no job server and no state
beyond the filesystem:

- **Completion** is a record in the :class:`ResultStore` (atomic
  ``save``): ``store.completed(spec)`` is the only "done" bit, so a
  re-invocation of a finished matrix runs zero new cells.
- **Reservation** is a claim file in ``<store>/.claims`` created with
  ``O_CREAT | O_EXCL`` — the filesystem arbitrates; exactly one worker
  wins a pending cell.  The claim records the owner's pid, host, and a
  heartbeat timestamp refreshed by a background thread while the cell
  trains.
- **Crash recovery** needs no fencing beyond that: a claim whose owner
  pid is dead (same host) or whose heartbeat has gone stale is
  *stolen* — atomically, by renaming the claim aside so only one
  stealer proceeds.  A worker SIGKILLed mid-cell therefore costs
  nothing but its partial compute: the record was never published
  (``save`` is atomic), the claim goes stale, and any surviving worker
  — or simply re-invoking the same command — re-claims and re-runs the
  cell.  Because cells are pure functions of their spec and records are
  keyed by ``run_id``, re-running is always safe: the re-computed
  record is byte-identical, so even the benign race where a presumed-
  dead owner wakes up and finishes concurrently ends with one intact,
  correct file.

``jobs=1`` runs the same claim/complete protocol inline in-process —
byte-identical records, no fork — so serial and parallel invocations
can share one store and one resume story.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_module
import socket
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.data import build_cache
from repro.spec import RunSpec
from repro.experiments.runner import run_spec
from repro.experiments.store import ResultStore

#: subdirectory of the store root holding claim and error-marker files.
CLAIMS_DIR = ".claims"

#: subdirectory of the store root where dataset/partition builds spill
#: as mmap-able ``.npy`` files (see :mod:`repro.data.build_cache`).
BUILD_CACHE_DIR = ".build_cache"

#: seconds between heartbeat refreshes while a worker trains a cell.
DEFAULT_HEARTBEAT_EVERY = 1.0

#: a claim whose heartbeat is older than this is stealable even if its
#: owner pid looks alive (covers suspended or foreign-host owners).
DEFAULT_STALE_AFTER = 30.0

#: how long an idle worker sleeps before re-scanning for stealable work.
DEFAULT_POLL_INTERVAL = 0.2


@dataclass(frozen=True)
class CellEvent:
    """One scheduler observation, streamed to the progress callback."""

    #: "cached" (already in the store), "done" (ran and saved),
    #: or "error" (the cell raised; see ``error``)
    kind: str
    spec: RunSpec
    run_id: str
    final_accuracy: float | None = None
    worker: int = 0
    error: str | None = None
    #: build-cache counter deltas for this cell (None for "cached" cells,
    #: which never touch the dataset builders)
    build_cache: dict | None = None


@dataclass
class MatrixReport:
    """What one :func:`run_cells` invocation did, by run_id."""

    cached: list[str] = field(default_factory=list)
    ran: list[str] = field(default_factory=list)
    #: run_id -> traceback text for cells whose run_spec raised
    failed: dict[str, str] = field(default_factory=dict)
    #: cells neither stored nor failed when the pool drained (e.g. held
    #: by a live foreign claim, or owned by a worker that died after the
    #: survivors exited) — re-invoking picks them up
    incomplete: list[str] = field(default_factory=list)
    #: dataset/partition build counters summed over this invocation's
    #: cells (``dataset_misses`` = actual regenerations; a re-invoked
    #: sweep over spilled builds shows zero)
    build_cache: dict = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.cached) + len(self.ran)

    def raise_on_failure(self) -> "MatrixReport":
        """Raise if any cell failed or was left incomplete."""
        problems = [
            f"{run_id}: {error.strip().splitlines()[-1]}"
            for run_id, error in sorted(self.failed.items())
        ]
        problems.extend(f"{run_id}: incomplete" for run_id in self.incomplete)
        if problems:
            raise RuntimeError(
                "scheduler finished with unfinished cells (re-invoke to "
                "retry):\n  " + "\n  ".join(problems)
            )
        return self


# -- claim files ---------------------------------------------------------


def _claims_root(store: ResultStore):
    path = store.root / CLAIMS_DIR
    path.mkdir(parents=True, exist_ok=True)
    return path


def _claim_path(store: ResultStore, run_id: str):
    return _claims_root(store) / f"{run_id}.claim"


def _error_path(store: ResultStore, run_id: str):
    return _claims_root(store) / f"{run_id}.error"


def _claim_payload() -> str:
    return json.dumps(
        {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "heartbeat": time.time(),
        }
    )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _claim_is_stale(path, stale_after: float) -> bool:
    """Whether a claim's owner can be presumed gone.

    Same-host owners are checked by pid — a SIGKILLed worker's claim is
    stealable immediately, no timeout to wait out.  Anything else
    (foreign host, unreadable claim) falls back to heartbeat age.
    """
    try:
        claim = json.loads(path.read_text())
        heartbeat = float(claim["heartbeat"])
        pid = int(claim["pid"])
        host = claim["host"]
    except (OSError, ValueError, KeyError, TypeError):
        # Unreadable/partial claim: judge by file age alone.
        try:
            heartbeat = path.stat().st_mtime
        except OSError:
            return False  # gone already — released or stolen
        return time.time() - heartbeat > stale_after
    if host == socket.gethostname() and not _pid_alive(pid):
        return True
    return time.time() - heartbeat > stale_after


def _try_claim(store: ResultStore, run_id: str, stale_after: float) -> bool:
    """Atomically reserve a cell; True iff this process now owns it."""
    path = _claim_path(store, run_id)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        if not _claim_is_stale(path, stale_after):
            return False
        # Steal: rename the stale claim aside.  os.rename of one source
        # succeeds for exactly one caller, so concurrent stealers
        # serialize here; the loser just sees the cell claimed again.
        stolen = path.with_name(f"{path.name}.stolen-{os.getpid()}")
        try:
            os.rename(path, stolen)
        except FileNotFoundError:
            return False
        os.unlink(stolen)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
    with os.fdopen(fd, "w") as handle:
        handle.write(_claim_payload())
    return True


def _refresh_claim(store: ResultStore, run_id: str) -> None:
    """Re-publish the heartbeat (atomic, so readers never see half)."""
    path = _claim_path(store, run_id)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.hb")
    tmp.write_text(_claim_payload())
    os.replace(tmp, path)


def _release_claim(store: ResultStore, run_id: str) -> None:
    try:
        os.unlink(_claim_path(store, run_id))
    except FileNotFoundError:
        pass  # stolen while we (slowly) finished — benign, see module doc


def clear_error_markers(store: ResultStore) -> None:
    """Drop per-invocation failure markers so a re-invoke retries them."""
    for path in _claims_root(store).glob("*.error"):
        try:
            path.unlink()
        except FileNotFoundError:
            pass


# -- the worker loop -----------------------------------------------------


def _dedupe(specs) -> list[RunSpec]:
    """Drop duplicate cells (same run_id) while preserving order."""
    seen: set[str] = set()
    out = []
    for spec in specs:
        run_id = spec.run_id()
        if run_id not in seen:
            seen.add(run_id)
            out.append(spec)
    return out


def _run_one(store: ResultStore, spec: RunSpec, heartbeat_every: float):
    """Train one claimed cell with a live heartbeat, then publish it.

    Returns ``(outcome, build_delta)`` where ``build_delta`` is this
    cell's build-cache counter movement (hits and regenerations).
    """
    run_id = spec.run_id()
    stop = threading.Event()

    def beat():
        while not stop.wait(heartbeat_every):
            _refresh_claim(store, run_id)

    thread = threading.Thread(target=beat, daemon=True)
    thread.start()
    before = build_cache.stats()
    try:
        outcome = run_spec(spec)
        store.save(outcome)
    finally:
        stop.set()
        thread.join()
    return outcome, build_cache.stats_delta(before, build_cache.stats())


def _worker_loop(
    specs: list[RunSpec],
    store_root,
    emit,
    stale_after: float,
    heartbeat_every: float,
    poll_interval: float,
) -> None:
    """Claim-and-run until every cell is stored, failed, or foreign-held.

    Each worker scans the whole matrix; claim files arbitrate who runs
    what.  A worker with nothing claimable does not exit while pending
    cells remain — it polls, so it can steal from a pool-mate that dies
    mid-matrix and the invocation still completes.  It gives up only
    when every remaining cell is held by a live claim it cannot steal
    (some other invocation's workers; they will finish or go stale for
    *their* survivors).
    """
    store = ResultStore(store_root)
    previous_spill = build_cache.spill_dir()
    build_cache.set_spill_dir(store.root / BUILD_CACHE_DIR)
    try:
        _claim_and_run(
            store, specs, emit, stale_after, heartbeat_every, poll_interval
        )
    finally:
        # Inline (jobs=1) callers share this process: don't leave their
        # global spill target pointed at our store.
        build_cache.set_spill_dir(previous_spill)


def _claim_and_run(
    store, specs, emit, stale_after, heartbeat_every, poll_interval
) -> None:
    pending = {spec.run_id(): spec for spec in specs}
    while pending:
        progressed = False
        for run_id, spec in list(pending.items()):
            if _error_path(store, run_id).exists():
                del pending[run_id]
                continue
            if store.completed(spec):
                del pending[run_id]
                progressed = True
                continue
            if not _try_claim(store, run_id, stale_after):
                continue
            try:
                if store.completed(spec):  # raced a finishing owner
                    del pending[run_id]
                    progressed = True
                    continue
                try:
                    outcome, build_delta = _run_one(store, spec, heartbeat_every)
                except Exception:
                    text = traceback.format_exc()
                    error_path = _error_path(store, run_id)
                    tmp = error_path.with_name(
                        f"{error_path.name}.{os.getpid()}.tmp"
                    )
                    tmp.write_text(text)
                    os.replace(tmp, error_path)
                    emit(
                        CellEvent(
                            kind="error",
                            spec=spec,
                            run_id=run_id,
                            worker=os.getpid(),
                            error=text,
                        )
                    )
                else:
                    emit(
                        CellEvent(
                            kind="done",
                            spec=spec,
                            run_id=run_id,
                            final_accuracy=outcome.final_accuracy,
                            worker=os.getpid(),
                            build_cache=build_delta,
                        )
                    )
            finally:
                _release_claim(store, run_id)
            del pending[run_id]
            progressed = True
        if pending and not progressed:
            # Everything left is claimed by a live owner (a pool-mate or
            # another invocation).  Wait: the owner will finish (we see
            # the record), fail (we see the marker), or die (its claim
            # goes stale and we steal).  Liveness rests on the owner,
            # exactly as the crash model intends.
            time.sleep(poll_interval)


# -- the pool ------------------------------------------------------------


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def run_cells(
    specs,
    store: ResultStore,
    jobs: int = 1,
    progress=None,
    stale_after: float = DEFAULT_STALE_AFTER,
    heartbeat_every: float = DEFAULT_HEARTBEAT_EVERY,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
) -> MatrixReport:
    """Execute a list of cells through the claim protocol; see module doc.

    Parameters
    ----------
    specs:
        The matrix — any iterable of :class:`RunSpec`; duplicates (by
        run_id) collapse to one cell.
    store:
        The :class:`ResultStore` results land in and claims live under.
        Required: it *is* the scheduler's shared state.
    jobs:
        Worker processes.  ``1`` runs inline (no fork); higher counts
        fork workers that steal cells from a shared pending set.  On
        fork-less hosts the pool degrades to inline execution.
    progress:
        Optional callback receiving a :class:`CellEvent` as each cell
        resolves — "cached" events first (pre-scan, deterministic
        order), then "done"/"error" events in completion order.
    stale_after / heartbeat_every / poll_interval:
        Crash-detection tuning; the defaults suit real matrices, tests
        shrink them.

    Returns a :class:`MatrixReport`; call ``raise_on_failure()`` for the
    strict "everything must have landed" contract.
    """
    specs = _dedupe(specs)
    if jobs <= 0:
        raise ValueError(f"jobs must be positive, got {jobs}")
    report = MatrixReport()
    clear_error_markers(store)

    def note(event: CellEvent) -> None:
        if event.kind == "cached":
            report.cached.append(event.run_id)
        elif event.kind == "done":
            report.ran.append(event.run_id)
        elif event.kind == "error":
            report.failed[event.run_id] = event.error or ""
        for name, count in (event.build_cache or {}).items():
            report.build_cache[name] = report.build_cache.get(name, 0) + count
        if progress is not None:
            progress(event)

    # Pre-scan: resolve already-stored cells up front, in matrix order,
    # so progress output is deterministic for the resume-heavy case.
    todo = []
    for spec in specs:
        run_id = spec.run_id()
        record = store.get(spec)
        if record is not None:
            note(
                CellEvent(
                    kind="cached",
                    spec=spec,
                    run_id=run_id,
                    final_accuracy=float(record["final_accuracy"]),
                )
            )
        else:
            todo.append(spec)

    if todo:
        if jobs == 1 or not fork_available():
            _worker_loop(
                todo, store.root, note, stale_after, heartbeat_every,
                poll_interval,
            )
        else:
            _run_pool(
                todo, store, min(jobs, len(todo)), note, stale_after,
                heartbeat_every, poll_interval,
            )

    done = set(report.cached) | set(report.ran) | set(report.failed)
    for spec in specs:
        run_id = spec.run_id()
        if run_id in done:
            continue
        # Completed by a worker whose event got lost with it, or by a
        # concurrent invocation: trust the store over the event stream.
        record = store.get(spec)
        if record is not None:
            note(
                CellEvent(
                    kind="cached",
                    spec=spec,
                    run_id=run_id,
                    final_accuracy=float(record["final_accuracy"]),
                )
            )
        else:
            report.incomplete.append(run_id)
    return report


def _run_pool(
    todo, store, jobs, note, stale_after, heartbeat_every, poll_interval
) -> None:
    """Fork the worker pool and stream its events back to ``note``."""
    ctx = multiprocessing.get_context("fork")
    events: multiprocessing.Queue = ctx.Queue()

    def worker_main():
        try:
            _worker_loop(
                todo, store.root, events.put, stale_after, heartbeat_every,
                poll_interval,
            )
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass

    workers = [ctx.Process(target=worker_main, daemon=True) for _ in range(jobs)]
    for worker in workers:
        worker.start()
    try:
        while any(worker.is_alive() for worker in workers):
            try:
                note(events.get(timeout=0.1))
            except queue_module.Empty:
                continue
        while True:  # drain events that landed after the last liveness check
            try:
                note(events.get_nowait())
            except queue_module.Empty:
                break
    finally:
        for worker in workers:
            worker.join()
        events.close()


__all__ = [
    "CellEvent",
    "MatrixReport",
    "run_cells",
    "clear_error_markers",
    "fork_available",
]
