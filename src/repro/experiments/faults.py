"""Robustness sweeps: accuracy under client dropout and stragglers.

Cross-device federations lose parties mid-round — devices go offline,
slow hardware misses the aggregation deadline.  The paper's protocol is
the fault-free synchronous loop; :func:`dropout_sweep` asks how much of a
cell's accuracy survives when a :class:`~repro.federated.faults.FaultModel`
thins every round.  It fixes one (dataset, partition, algorithm) cell,
runs it once per dropout probability, and collects the accuracy curves
next to per-round drop counts so degradation is directly plottable.

All runs share the seed; the ``0.0`` entry is the fault-free baseline and
reproduces the plain run bitwise, so curve differences come from the
fault schedule alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.spec import RunSpec
from repro.experiments.plotting import line_chart
from repro.experiments.runner import run_spec
from repro.experiments.scale import BENCH, ScalePreset

#: default ladder: fault-free baseline, mild, moderate, severe dropout
DEFAULT_DROPOUT_PROBS = (0.0, 0.1, 0.2, 0.4)


def _label(prob: float) -> str:
    return f"p={prob:g}"


@dataclass
class DropoutSweepResult:
    """Histories of one experiment cell run under each dropout level."""

    dataset: str
    partition: str
    algorithm: str
    probs: list = field(default_factory=list)
    histories: dict = field(default_factory=dict)  # label -> History

    def final_accuracies(self) -> dict:
        return {
            label: history.final_accuracy
            for label, history in self.histories.items()
        }

    def mean_dropped(self) -> dict:
        """Average parties dropped per round at each dropout level."""
        return {
            label: float(np.mean(history.dropped_counts))
            for label, history in self.histories.items()
        }

    def accuracy_degradation(self) -> dict:
        """Final-accuracy loss relative to the fault-free baseline."""
        finals = self.final_accuracies()
        baseline_label = _label(0.0)
        if baseline_label not in finals:
            raise ValueError("no fault-free baseline (p=0) in this sweep")
        baseline = finals[baseline_label]
        return {label: baseline - acc for label, acc in finals.items()}

    def chart(self, height: int = 12, width: int = 60) -> str:
        """Accuracy-per-round curves, one series per dropout level."""
        series = {
            label: history.accuracies
            for label, history in self.histories.items()
        }
        return line_chart(series, height=height, width=width)

    def to_text(self) -> str:
        lines = [
            f"dropout sweep: {self.dataset} / {self.partition} / "
            f"{self.algorithm}"
        ]
        dropped = self.mean_dropped()
        for label, accuracy in self.final_accuracies().items():
            lines.append(
                f"  {label:8s} acc {accuracy:.4f}  "
                f"dropped/round {dropped[label]:5.2f}"
            )
        return "\n".join(lines)


def dropout_sweep(
    dataset: str,
    partition: str,
    algorithm: str = "fedavg",
    dropout_probs: Iterable[float] = DEFAULT_DROPOUT_PROBS,
    preset: ScalePreset = BENCH,
    seed: int = 0,
    store=None,
    **fixed,
) -> DropoutSweepResult:
    """Run one cell per dropout probability and collect the histories.

    Parameters
    ----------
    dropout_probs:
        Per-party per-round dropout probabilities to sweep; include
        ``0.0`` to keep the fault-free baseline
        :meth:`~DropoutSweepResult.accuracy_degradation` compares against.
    store:
        Optional :class:`~repro.experiments.store.ResultStore`; already
        stored dropout points are reloaded instead of re-run, fresh ones
        are saved.
    fixed:
        Additional fixed arguments forwarded to
        :meth:`~repro.spec.RunSpec.build` (e.g. ``straggler_prob`` /
        ``deadline`` to stack straggler loss on top of the swept
        dropout).
    """
    probs: Sequence[float] = [float(p) for p in dropout_probs]
    result = DropoutSweepResult(
        dataset=dataset, partition=str(partition), algorithm=algorithm,
        probs=list(probs),
    )
    base = RunSpec.build(
        dataset, partition, algorithm, preset=preset, seed=seed, **fixed
    )
    for prob in probs:
        point = base.with_overrides(dropout_prob=prob)
        if store is not None and store.completed(point):
            history = store.history(point)
        else:
            outcome = run_spec(point)
            if store is not None:
                store.save(outcome)
            history = outcome.history
        result.histories[_label(prob)] = history
    return result
