"""Experiment harness: reproduce the paper's tables and figures.

- :func:`run_federated_experiment` — one (dataset, partition, algorithm)
  cell at configurable scale;
- :func:`run_trials` — the paper's 3-trial mean/std protocol;
- :func:`recommend_algorithm` — the Figure 6 decision tree;
- :mod:`repro.experiments.scale` — the reduced-scale presets the
  benchmarks run at, with the paper-scale settings alongside.
"""

from repro.experiments.runner import (
    ExperimentOutcome,
    TrialSummary,
    run_federated_experiment,
    run_spec,
    run_trials,
)
from repro.spec import RunSpec
from repro.experiments.decision_tree import SkewDescription, recommend_algorithm
from repro.experiments.leaderboard import Leaderboard
from repro.experiments.centralized import centralized_reference, train_centralized
from repro.experiments.scheduler import CellEvent, MatrixReport, run_cells
from repro.experiments.sweeps import SweepResult, sweep
from repro.experiments.comm import CommSweepResult, communication_sweep
from repro.experiments.faults import DropoutSweepResult, dropout_sweep
from repro.experiments import scale

__all__ = [
    "run_federated_experiment",
    "run_spec",
    "RunSpec",
    "run_trials",
    "ExperimentOutcome",
    "TrialSummary",
    "recommend_algorithm",
    "SkewDescription",
    "Leaderboard",
    "train_centralized",
    "centralized_reference",
    "sweep",
    "SweepResult",
    "run_cells",
    "CellEvent",
    "MatrixReport",
    "communication_sweep",
    "CommSweepResult",
    "dropout_sweep",
    "DropoutSweepResult",
    "scale",
]
