"""Leaderboard: rank algorithms per non-IID setting.

The paper: "We also maintain a leaderboard along with our code to rank
state-of-the-art federated learning algorithms on different non-IID
settings."  This module is that leaderboard — accumulate
:class:`~repro.experiments.runner.TrialSummary` entries, rank per
(dataset, partition) setting, count wins per algorithm (the paper's
"number of times that performs best" rows), and persist to JSON.
"""

from __future__ import annotations

import json
import pathlib
from collections import defaultdict

from repro.experiments.runner import TrialSummary


class Leaderboard:
    """Accumulates trial summaries and ranks algorithms per setting."""

    def __init__(self):
        # (dataset, partition) -> {algorithm: TrialSummary}
        self._entries: dict[tuple[str, str], dict[str, TrialSummary]] = defaultdict(dict)

    def add(self, summary: TrialSummary) -> None:
        """Record (or replace) an algorithm's result for a setting."""
        if not summary.accuracies:
            raise ValueError("summary has no trial accuracies")
        key = (summary.dataset, summary.partition)
        self._entries[key][summary.algorithm] = summary

    @property
    def settings(self) -> list[tuple[str, str]]:
        return sorted(self._entries)

    def algorithms(self) -> list[str]:
        names = set()
        for entries in self._entries.values():
            names.update(entries)
        return sorted(names)

    def ranking(self, dataset: str, partition: str) -> list[tuple[str, float]]:
        """Algorithms for one setting, best mean accuracy first."""
        key = (dataset, partition)
        if key not in self._entries:
            raise KeyError(f"no entries for {key}")
        entries = self._entries[key]
        return sorted(
            ((name, summary.mean) for name, summary in entries.items()),
            key=lambda item: item[1],
            reverse=True,
        )

    def best(self, dataset: str, partition: str) -> str:
        return self.ranking(dataset, partition)[0][0]

    def win_counts(self) -> dict[str, int]:
        """The paper's "number of times that performs best" row."""
        counts: dict[str, int] = defaultdict(int)
        for dataset, partition in self.settings:
            counts[self.best(dataset, partition)] += 1
        return dict(counts)

    def render(self) -> str:
        """Text table: one row per setting, one column per algorithm."""
        algorithms = self.algorithms()
        if not algorithms:
            return "(empty leaderboard)"
        header = f"{'dataset':10s} {'partition':16s} | " + " | ".join(
            f"{a:>18s}" for a in algorithms
        )
        lines = [header, "-" * len(header)]
        for dataset, partition in self.settings:
            entries = self._entries[(dataset, partition)]
            best = self.best(dataset, partition)
            cells = []
            for algorithm in algorithms:
                summary = entries.get(algorithm)
                if summary is None:
                    cells.append(f"{'-':>18s}")
                else:
                    marker = "*" if algorithm == best else " "
                    cells.append(f"{summary.format_cell():>17s}{marker}")
            lines.append(f"{dataset:10s} {partition:16s} | " + " | ".join(cells))
        wins = self.win_counts()
        lines.append("")
        lines.append(
            "wins: " + ", ".join(f"{a}={wins.get(a, 0)}" for a in algorithms)
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "entries": [
                {
                    "dataset": summary.dataset,
                    "partition": summary.partition,
                    "algorithm": summary.algorithm,
                    "accuracies": list(summary.accuracies),
                }
                for entries in self._entries.values()
                for summary in entries.values()
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Leaderboard":
        board = cls()
        for entry in data.get("entries", []):
            board.add(
                TrialSummary(
                    dataset=entry["dataset"],
                    partition=entry["partition"],
                    algorithm=entry["algorithm"],
                    accuracies=[float(a) for a in entry["accuracies"]],
                )
            )
        return board

    def save(self, path) -> None:
        pathlib.Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path) -> "Leaderboard":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))
