"""Command-line interface, mirroring the original NIID-Bench entry point.

Usage::

    python -m repro run --dataset cifar10 --partition "#C=2" \\
        --alg fedprox --mu 0.01 --comm-round 20 --epochs 5
    python -m repro run --spec examples/table3_cell.json
    python -m repro partition-report --dataset mnist --partition "dir(0.5)"
    python -m repro recommend --partition "gau(0.1)"
    python -m repro list
    python -m repro trials --dataset adult --partition iid --alg fedavg -n 3

Flag names follow the original repository where they exist
(``--alg``, ``--comm-round``, ``--epochs``, ``--mu``, ``--beta`` map onto
NIID-Bench's arguments).  Every experiment command resolves its flags
into a :class:`repro.spec.RunSpec` first; ``--spec file.json`` skips the
flags and loads the spec directly, and ``run --print-spec`` emits the
resolved spec as JSON without training (the way to author spec files).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.comm import CODEC_NAMES
from repro.data import DATASET_NAMES, load_dataset
from repro.experiments import run_spec, run_trials
from repro.experiments.decision_tree import recommend_algorithm
from repro.experiments.scale import PRESETS
from repro.federated.algorithms import ALGORITHM_NAMES
from repro.partition import parse_strategy, stats
from repro.spec import RunSpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NIID-Bench reproduction: federated learning on non-IID silos",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run one federated experiment")
    _add_experiment_args(run)
    run.add_argument(
        "--print-spec", action="store_true",
        help="print the resolved RunSpec as JSON and exit without training",
    )

    trials = commands.add_parser("trials", help="mean +- std over repeated seeds")
    _add_experiment_args(trials)
    trials.add_argument("-n", "--num-trials", type=int, default=3)
    trials.add_argument(
        "--store", default=None, metavar="DIR",
        help="ResultStore directory: completed trials are read back, "
             "fresh ones saved",
    )
    trials.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes claiming trials through the crash-safe "
             "scheduler (1 = run inline)",
    )

    report = commands.add_parser(
        "partition-report", help="partition a dataset and print skew statistics"
    )
    report.add_argument("--dataset", required=True, choices=DATASET_NAMES)
    report.add_argument("--partition", required=True)
    report.add_argument("--n-parties", type=int, default=None)
    report.add_argument("--n-train", type=int, default=None)
    report.add_argument("--init-seed", type=int, default=0)

    recommend = commands.add_parser(
        "recommend", help="Figure 6 decision tree: best algorithm for a setting"
    )
    recommend.add_argument("--partition", required=True)

    commands.add_parser("datasets", help="list available datasets")
    commands.add_parser(
        "list", help="list every registered component (datasets, partitions, "
        "models, algorithms, codecs)"
    )

    table3 = commands.add_parser(
        "table3", help="run a slice of the paper's Table 3 matrix"
    )
    table3.add_argument("--datasets", nargs="*", default=None, choices=DATASET_NAMES)
    table3.add_argument("--partitions", nargs="*", default=None)
    table3.add_argument(
        "--algs", nargs="*", default=list(ALGORITHM_NAMES[:4]), choices=ALGORITHM_NAMES
    )
    table3.add_argument("--preset", default="smoke", choices=sorted(PRESETS))
    table3.add_argument("-n", "--num-trials", type=int, default=1)
    table3.add_argument("--init-seed", type=int, default=0)
    table3.add_argument("--save", default=None, help="write leaderboard JSON here")
    table3.add_argument(
        "--store", default=None, metavar="DIR",
        help="ResultStore directory: completed cells are read back, fresh "
             "ones saved — a killed matrix resumes where it stopped",
    )
    table3.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes claiming matrix cells through the "
             "crash-safe scheduler; kill -9 anything mid-run and "
             "re-invoking completes the matrix (1 = run inline)",
    )
    return parser


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load the full RunSpec from this JSON file instead of flags "
             "(--dataset/--partition/--alg are then not required)",
    )
    parser.add_argument("--dataset", default=None, choices=DATASET_NAMES)
    parser.add_argument("--partition", default=None, help='e.g. "iid", "#C=2", "dir(0.5)"')
    parser.add_argument("--alg", default=None, choices=ALGORITHM_NAMES)
    parser.add_argument("--model", default="default")
    parser.add_argument("--n-parties", type=int, default=None)
    parser.add_argument("--comm-round", type=int, default=None, help="rounds T")
    parser.add_argument("--epochs", type=int, default=None, help="local epochs E")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--lr", type=float, default=None)
    parser.add_argument("--mu", type=float, default=0.01, help="FedProx mu")
    parser.add_argument(
        "--optimizer", default="sgd", choices=("sgd", "adam", "amsgrad"),
        help="local optimizer (NIID-Bench's --optimizer)",
    )
    parser.add_argument("--sample", type=float, default=1.0, help="party fraction per round")
    parser.add_argument(
        "--num-workers", type=int, default=0,
        help="worker processes for client training (0 = serial)",
    )
    parser.add_argument(
        "--executor", default="auto",
        choices=("auto", "serial", "parallel", "stacked"),
        help="client-execution backend (results are identical either way)",
    )
    parser.add_argument(
        "--stack-size", type=int, default=16,
        help="clients per batched replay stack for --executor=stacked",
    )
    parser.add_argument(
        "--stacked-tolerance", type=float, default=0.0,
        help="max drift the stacked executor's serial-vs-stacked check "
        "accepts (0 = bitwise)",
    )
    parser.add_argument(
        "--party-sampler", default="uniform", choices=("uniform", "stratified"),
        help="party sampling policy under partial participation",
    )
    parser.add_argument(
        "--codec", default="identity", choices=CODEC_NAMES,
        help="update-compression codec for both transport directions",
    )
    parser.add_argument(
        "--codec-bits", type=int, default=8,
        help="bit width for the qsgd codec (1-16)",
    )
    parser.add_argument(
        "--codec-k", type=float, default=0.1,
        help="kept fraction in (0, 1] for the topk/randk codecs",
    )
    parser.add_argument(
        "--dropout-prob", type=float, default=0.0,
        help="per-party per-round probability of dropping out",
    )
    parser.add_argument(
        "--straggler-prob", type=float, default=0.0,
        help="per-party per-round probability of running slow",
    )
    parser.add_argument(
        "--straggler-factor", type=float, default=1.0,
        help="straggler slowdown multiple (>= 1; fault-free round = 1.0)",
    )
    parser.add_argument(
        "--crash-prob", type=float, default=0.0,
        help="per-party per-round probability of crashing mid-training",
    )
    parser.add_argument(
        "--deadline", type=float, default=None,
        help="round deadline in fault-free-round units; stragglers "
             "slower than this are dropped before dispatch",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0,
        help="write a run checkpoint every k rounds (0 = never)",
    )
    parser.add_argument(
        "--checkpoint-path", default=None,
        help="where periodic checkpoints are written",
    )
    parser.add_argument(
        "--resume", default=None, metavar="CHECKPOINT",
        help="resume a run from this checkpoint file",
    )
    parser.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=False,
        help="capture & replay training steps (bitwise-identical, faster)",
    )
    parser.add_argument(
        "--optimize", action=argparse.BooleanOptionalAction, default=True,
        help="program optimizer for captured steps (arena planning, "
             "dead-op elimination; bitwise-identical, on by default — "
             "--no-optimize replays the unoptimized programs)",
    )
    parser.add_argument(
        "--population", type=int, default=None, metavar="N",
        help="virtual federation of N lazily-derived parties (flat memory; "
             "--partition is then ignored; --dataset/--alg default to "
             "mnist/fedavg)",
    )
    parser.add_argument(
        "--sample-per-round", type=int, default=None, metavar="K",
        help="cohort size: parties concurrently in flight per round "
             "(default: --sample fraction of the population)",
    )
    parser.add_argument(
        "--samples-per-client", type=int, default=64,
        help="local dataset size per virtual party",
    )
    parser.add_argument(
        "--population-skew-beta", type=float, default=None,
        help="Dirichlet(beta) label skew for virtual parties (default iid)",
    )
    parser.add_argument(
        "--aggregation", default="sync", choices=("sync", "async"),
        help="sync barrier rounds, or FedBuff-style buffered async over "
             "the virtual clock",
    )
    parser.add_argument(
        "--buffer-size", type=int, default=None, metavar="M",
        help="async buffer: aggregate after M arrivals (default: the "
             "cohort, i.e. an exact synchronous barrier)",
    )
    parser.add_argument(
        "--staleness-exponent", type=float, default=0.0,
        help="discount stale async updates by (1+staleness)^-a",
    )
    parser.add_argument("--preset", default="bench", choices=sorted(PRESETS))
    parser.add_argument("--init-seed", type=int, default=0)
    parser.add_argument(
        "--plot", action="store_true", help="render an ASCII accuracy chart"
    )


def _build_kwargs(args) -> dict:
    """Flags -> ``RunSpec.build`` keyword arguments (sans the cell key)."""
    algorithm_kwargs = {"mu": args.mu} if args.alg == "fedprox" else None
    return dict(
        model=args.model,
        num_parties=args.n_parties,
        preset=PRESETS[args.preset],
        num_rounds=args.comm_round,
        local_epochs=args.epochs,
        batch_size=args.batch_size,
        lr=args.lr,
        sample_fraction=args.sample,
        sampler=args.party_sampler,
        optimizer=args.optimizer,
        executor=args.executor,
        num_workers=args.num_workers,
        stack_size=args.stack_size,
        stacked_tolerance=args.stacked_tolerance,
        codec=args.codec,
        codec_bits=args.codec_bits,
        codec_k=args.codec_k,
        dropout_prob=args.dropout_prob,
        straggler_prob=args.straggler_prob,
        straggler_factor=args.straggler_factor,
        crash_prob=args.crash_prob,
        deadline=args.deadline,
        checkpoint_every=args.checkpoint_every,
        checkpoint_path=args.checkpoint_path,
        compile=args.compile,
        optimize=args.optimize,
        population=args.population,
        sample_per_round=args.sample_per_round,
        samples_per_client=args.samples_per_client,
        population_skew_beta=args.population_skew_beta,
        aggregation=args.aggregation,
        buffer_size=args.buffer_size,
        staleness_exponent=args.staleness_exponent,
        algorithm_kwargs=algorithm_kwargs,
    )


def _spec_from_args(args) -> RunSpec:
    """Resolve an experiment command's arguments into a RunSpec."""
    if args.spec is not None:
        with open(args.spec) as handle:
            return RunSpec.from_dict(json.load(handle)).validate()
    if args.population is not None:
        # A virtual population derives party data itself, so the bare
        # `repro run --population N --aggregation async` works: default
        # the cell key instead of demanding flags the run ignores.
        args.dataset = args.dataset or "mnist"
        args.partition = args.partition or "iid"
        args.alg = args.alg or "fedavg"
    missing = [
        flag
        for flag, value in (
            ("--dataset", args.dataset),
            ("--partition", args.partition),
            ("--alg", args.alg),
        )
        if value is None
    ]
    if missing:
        raise SystemExit(
            f"error: {' / '.join(missing)} required (or pass --spec FILE)"
        )
    return RunSpec.build(
        args.dataset,
        args.partition,
        args.alg,
        seed=args.init_seed,
        **_build_kwargs(args),
    )


def cmd_run(args) -> int:
    spec = _spec_from_args(args)
    if args.print_spec:
        print(spec.to_json())
        print(f"run_id: {spec.run_id()}", file=sys.stderr)
        return 0
    outcome = run_spec(spec, resume=args.resume)
    for record in outcome.history.records:
        accuracy = "-" if record.test_accuracy is None else f"{record.test_accuracy:.4f}"
        line = (
            f"round {record.round_index:3d}  acc {accuracy}  "
            f"loss {record.train_loss:.4f}  parties {len(record.participants)}"
        )
        if record.dropped:
            line += f"  dropped {len(record.dropped)}"
        print(line)
    total_dropped = int(outcome.history.dropped_counts.sum())
    if total_dropped:
        print(f"dropped parties: {total_dropped} across the run")
    print(f"run id: {spec.run_id()}")
    print(f"final accuracy: {outcome.final_accuracy:.4f}")
    print(f"best accuracy:  {outcome.best_accuracy:.4f}")
    mb = outcome.history.cumulative_communication()[-1] / 1e6
    print(f"communication:  {mb:.1f} MB")
    if args.plot:
        from repro.experiments.plotting import line_chart

        rounds, accuracies = outcome.history.curve()
        print()
        print(line_chart({outcome.algorithm: accuracies}))
    return 0


def cmd_trials(args) -> int:
    spec = _spec_from_args(args)
    # One checkpoint file cannot serve several seeds; trials run clean.
    spec = spec.with_overrides(checkpoint_every=0, checkpoint_path=None)
    store = None
    if args.store is not None:
        from repro.experiments.store import ResultStore

        store = ResultStore(args.store)
    summary = run_trials(
        num_trials=args.num_trials,
        base_seed=args.init_seed if args.spec is None else spec.seed,
        store=store,
        spec=spec,
        jobs=args.jobs,
    )
    print(
        f"{spec.data.name} / {spec.partition.strategy} / "
        f"{spec.algorithm.name}: {summary.format_cell()}"
    )
    return 0


def cmd_partition_report(args) -> int:
    kwargs = {}
    if args.n_train is not None:
        kwargs["n_train"] = args.n_train
    train, _, info = load_dataset(args.dataset, seed=args.init_seed, **kwargs)
    partitioner = parse_strategy(args.partition)
    num_parties = args.n_parties or partitioner.default_num_parties
    partition = partitioner.partition(
        train, num_parties, np.random.default_rng(args.init_seed)
    )
    print(stats.report(partition, train.labels, info.num_classes).to_text())
    return 0


def cmd_recommend(args) -> int:
    print(recommend_algorithm(args.partition))
    return 0


def cmd_datasets(args) -> int:
    for name in DATASET_NAMES:
        print(name)
    return 0


def cmd_list(args) -> int:
    """Print every registered component straight from the registries."""
    from repro.comm.codecs import CODECS
    from repro.data.registry import DATASETS
    from repro.federated.algorithms import ALGORITHMS
    from repro.models.registry import MODELS
    from repro.partition.registry import PARTITIONS

    for registry in (DATASETS, PARTITIONS, MODELS, ALGORITHMS, CODECS):
        title = registry.kind if registry.kind.endswith("y") else f"{registry.kind}s"
        print(f"{title}:")
        for entry in registry.entries():
            summary = f"  {entry.summary}" if entry.summary else ""
            print(f"  {entry.name:16s}{summary}")
        print()
    return 0


def cmd_table3(args) -> int:
    from repro.experiments.table3 import run_table3

    store = None
    if args.store is not None:
        from repro.experiments.store import ResultStore

        store = ResultStore(args.store)

    def progress(dataset, partition, algorithm, summary):
        print(f"{dataset} / {partition} / {algorithm}: {summary.format_cell()}")

    board = run_table3(
        datasets=args.datasets,
        partitions=args.partitions,
        algorithms=tuple(args.algs),
        preset=PRESETS[args.preset],
        num_trials=args.num_trials,
        base_seed=args.init_seed,
        store=store,
        progress=progress,
        jobs=args.jobs,
    )
    print()
    print(board.render())
    if args.save:
        board.save(args.save)
        print(f"\nsaved leaderboard to {args.save}")
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "run": cmd_run,
        "trials": cmd_trials,
        "partition-report": cmd_partition_report,
        "recommend": cmd_recommend,
        "datasets": cmd_datasets,
        "list": cmd_list,
        "table3": cmd_table3,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
