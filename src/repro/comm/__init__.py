"""Communication subsystem: pluggable update compression + byte metering.

The paper's Section 5.2 communication-efficiency view (accuracy against
bytes shipped, SCAFFOLD's doubled payload) needs a real transport to
measure.  This package provides it:

- :mod:`repro.comm.codecs` — the :class:`Codec` interface and four
  seeded, deterministic implementations (``identity``, ``float16``,
  QSGD-style stochastic quantization, top-k / random-k sparsification
  with error feedback);
- :mod:`repro.comm.channel` — :class:`CommChannel`, which applies one
  codec to both transport directions of every federated round and
  reports *measured* payload sizes into the round records.

Select a codec per run via ``FederatedConfig(codec=..., codec_bits=...,
codec_k=...)`` or the CLI's ``--codec`` / ``--codec-bits`` /
``--codec-k`` flags; the default ``identity`` reproduces the float32
wire (and byte accounting) the repository used before this subsystem
existed, bit for bit.
"""

from repro.comm.codecs import (
    CODEC_NAMES,
    CODECS,
    FLOAT_BYTES,
    Codec,
    Float16Codec,
    IdentityCodec,
    Payload,
    QSGDCodec,
    RandKCodec,
    TopKCodec,
    make_codec,
)
from repro.comm.channel import RESIDUAL_KEY, CommChannel

__all__ = [
    "Codec",
    "Payload",
    "IdentityCodec",
    "Float16Codec",
    "QSGDCodec",
    "TopKCodec",
    "RandKCodec",
    "make_codec",
    "CODEC_NAMES",
    "CODECS",
    "FLOAT_BYTES",
    "CommChannel",
    "RESIDUAL_KEY",
]
