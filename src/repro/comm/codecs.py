"""Update-compression codecs: vectors in, measured wire payloads out.

A :class:`Codec` turns a flat ``float32`` vector (a model state, a model
update, or an algorithm extra such as SCAFFOLD's control variate) into a
:class:`Payload` whose ``nbytes`` is the *measured* wire size of that
representation, and back.  The federated transport
(:mod:`repro.comm.channel`) plugs a codec into both directions of every
round, replacing the previous closed-form "assume float32" accounting
with numbers read off the encoded payloads themselves.

Four codec families ship:

- :class:`IdentityCodec` — the float32 wire the paper assumes; lossless,
  so transports can pass arrays through untouched and just meter them.
- :class:`Float16Codec` — halve the wire by casting to ``float16``.
- :class:`QSGDCodec` — QSGD-style stochastic uniform quantization at a
  configurable bit width (Alistarh et al., NeurIPS 2017): unbiased
  rounding between quantization levels, so compressed averages stay
  centred on the uncompressed ones.
- :class:`TopKCodec` / :class:`RandKCodec` — magnitude / random
  sparsification keeping a fraction ``k`` of the entries; both declare
  ``error_feedback`` so the transport carries the dropped mass forward
  as a residual (Stich et al.'s memory trick) instead of losing it.

Determinism contract: a codec's only randomness comes from the
``numpy.random.Generator`` handed to :meth:`Codec.encode`.  The
transport passes the *client's* generator on the uplink (its state
already travels between server and workers), so serial and parallel
executions draw identical bits and produce identical histories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.registry import Registry

#: bytes per float on the reference float32 wire
FLOAT_BYTES = 4
#: bytes per transmitted sparse index (int32 covers every model here)
INDEX_BYTES = 4


@dataclass
class Payload:
    """One encoded vector as it would cross the wire.

    ``data`` holds the codec-specific representation (kept as numpy
    arrays for simulation); ``nbytes`` is the measured wire size of that
    representation — the number the byte-accounting pipeline consumes.
    """

    codec: str
    size: int  # element count of the decoded vector
    data: dict
    nbytes: int


class Codec:
    """Interface: ``encode(vector) -> Payload``, ``decode(Payload) -> vector``.

    Class attributes describe how the transport must drive the codec:

    ``lossless``
        ``decode(encode(v))`` is bitwise ``v`` for float32 input; the
        transport may skip materializing payloads and only meter sizes.
    ``on_delta``
        The uplink should feed the codec the *update* (reference minus
        trained state) instead of the raw state — quantizers and
        sparsifiers are defined on updates, whose distribution is
        centred near zero.
    ``error_feedback``
        Encoding drops mass that must be carried forward in a residual
        (sparsifiers); the transport owns the residual's storage.
    ``stochastic``
        :meth:`encode` draws from the supplied generator.
    """

    name = "base"
    lossless = False
    on_delta = False
    error_feedback = False
    stochastic = False

    def encode(self, vector: np.ndarray, rng: np.random.Generator | None = None) -> Payload:
        raise NotImplementedError

    def decode(self, payload: Payload) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _as_float32(vector: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(vector, dtype=np.float32).ravel()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IdentityCodec(Codec):
    """The float32 wire of the paper's accounting — lossless, 4 bytes/float."""

    name = "identity"
    lossless = True

    def encode(self, vector, rng=None) -> Payload:
        values = self._as_float32(vector)
        return Payload(
            codec=self.name,
            size=values.size,
            data={"values": values},
            nbytes=FLOAT_BYTES * values.size,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        return payload.data["values"]


class Float16Codec(Codec):
    """Cast to half precision: 2 bytes/float, ~3 significant digits kept."""

    name = "float16"

    def encode(self, vector, rng=None) -> Payload:
        values = self._as_float32(vector).astype(np.float16)
        return Payload(
            codec=self.name,
            size=values.size,
            data={"values": values},
            nbytes=values.nbytes,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        return payload.data["values"].astype(np.float32)


class QSGDCodec(Codec):
    """QSGD-style stochastic uniform quantization at ``bits`` per entry.

    Entries are scaled into ``s = 2^bits - 1`` levels of ``max|v|`` and
    rounded *stochastically* to a neighbouring level with probability
    equal to the fractional part — so ``E[decode(encode(v))] = v`` and
    averaging across many parties cancels the quantization noise instead
    of accumulating it.  The wire cost is ``bits + 1`` bits per entry
    (levels plus sign, bit-packed) and one float32 scale; the simulated
    representation keeps whole int8/int16 lanes for speed, but
    ``nbytes`` measures the packed format.
    """

    name = "qsgd"
    on_delta = True
    stochastic = True

    def __init__(self, bits: int = 8):
        if not 1 <= int(bits) <= 16:
            raise ValueError(f"bits must be in [1, 16], got {bits}")
        self.bits = int(bits)
        self._levels = (1 << self.bits) - 1

    def _wire_nbytes(self, size: int) -> int:
        packed = (size * (self.bits + 1) + 7) // 8  # levels + sign bit
        return packed + FLOAT_BYTES  # + the scale

    def encode(self, vector, rng=None) -> Payload:
        if rng is None:
            raise ValueError("QSGDCodec.encode needs a Generator (stochastic rounding)")
        values = self._as_float32(vector)
        scale = float(np.max(np.abs(values))) if values.size else 0.0
        int_dtype = np.int16 if self._levels > 127 else np.int8
        if scale == 0.0:
            quantized = np.zeros(values.size, dtype=int_dtype)
        else:
            normalized = np.abs(values) * (self._levels / scale)
            low = np.floor(normalized)
            up = rng.random(values.size) < (normalized - low)
            quantized = ((low + up) * np.sign(values)).astype(int_dtype)
        return Payload(
            codec=self.name,
            size=values.size,
            data={"q": quantized, "scale": scale},
            nbytes=self._wire_nbytes(values.size),
        )

    def decode(self, payload: Payload) -> np.ndarray:
        scale = payload.data["scale"]
        out = payload.data["q"].astype(np.float32)
        if scale != 0.0:
            out *= np.float32(scale / self._levels)
        return out

    def __repr__(self) -> str:
        return f"QSGDCodec(bits={self.bits})"


class _SparseCodec(Codec):
    """Shared machinery of the keep-``k`` sparsifiers."""

    on_delta = True
    error_feedback = True

    def __init__(self, k: float = 0.1):
        if not 0.0 < float(k) <= 1.0:
            raise ValueError(f"k must be a fraction in (0, 1], got {k}")
        self.k = float(k)

    def _count(self, size: int) -> int:
        return max(1, int(round(self.k * size)))

    def _select(self, values: np.ndarray, rng) -> np.ndarray:
        raise NotImplementedError

    def encode(self, vector, rng=None) -> Payload:
        values = self._as_float32(vector)
        indices = np.sort(self._select(values, rng)).astype(np.int32)
        kept = values[indices]
        return Payload(
            codec=self.name,
            size=values.size,
            data={"indices": indices, "values": kept},
            nbytes=kept.nbytes + indices.nbytes,
        )

    def decode(self, payload: Payload) -> np.ndarray:
        out = np.zeros(payload.size, dtype=np.float32)
        out[payload.data["indices"]] = payload.data["values"]
        return out

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k})"


class TopKCodec(_SparseCodec):
    """Keep the ``k`` fraction of entries with the largest magnitude.

    Biased (it always drops the small entries), hence ``error_feedback``:
    the transport accumulates what was dropped and re-offers it to the
    codec next round, which is what makes top-k training converge.
    Wire cost: 4 value bytes + 4 index bytes per kept entry.
    """

    name = "topk"

    def _select(self, values, rng):
        count = self._count(values.size)
        if count >= values.size:
            return np.arange(values.size)
        return np.argpartition(np.abs(values), values.size - count)[-count:]


class RandKCodec(_SparseCodec):
    """Keep a uniformly random ``k`` fraction of the entries.

    Cheaper to select than top-k and unbiased over rounds when paired
    with error feedback.  Indices are metered at 4 bytes each like
    top-k's; a real deployment could elide them by sharing the draw's
    seed, which would halve the payload — the accounting here stays
    conservative.
    """

    name = "randk"
    stochastic = True

    def _select(self, values, rng):
        if rng is None:
            raise ValueError("RandKCodec.encode needs a Generator (random support)")
        count = self._count(values.size)
        if count >= values.size:
            return np.arange(values.size)
        return rng.choice(values.size, size=count, replace=False)


#: codec factories; each takes the shared ``(bits, k)`` knob schema and
#: ignores the knobs that do not apply, so one config covers every codec.
CODECS = Registry("codec")
CODECS.register(
    "identity", lambda bits, k: IdentityCodec(), summary="uncompressed float32 wire"
)
CODECS.register(
    "float16", lambda bits, k: Float16Codec(), summary="dense half-precision"
)
CODECS.register(
    "qsgd",
    lambda bits, k: QSGDCodec(bits=bits),
    summary="stochastic uniform quantization at `bits`",
)
CODECS.register(
    "topk",
    lambda bits, k: TopKCodec(k=k),
    summary="keep the k-fraction largest entries (error feedback)",
)
CODECS.register(
    "randk",
    lambda bits, k: RandKCodec(k=k),
    summary="keep a random k-fraction of entries (error feedback)",
)

#: codec names accepted by :func:`make_codec` and ``FederatedConfig.codec``
CODEC_NAMES = CODECS.names()


def make_codec(name: str, bits: int = 8, k: float = 0.1) -> Codec:
    """Build a codec by name.

    ``bits`` configures :class:`QSGDCodec`; ``k`` (a fraction in (0, 1])
    configures the sparsifiers.  Irrelevant knobs are ignored, so one
    config schema covers every codec.
    """
    try:
        return CODECS.build(name, bits, k)
    except KeyError:
        raise KeyError(
            f"unknown codec {name!r}; available: {CODEC_NAMES}"
        ) from None
