"""The federation's transport: codec application + measured byte metering.

A :class:`CommChannel` sits between the server and the clients and owns
everything about how model state crosses the (simulated) network:

- **Downlink** (:meth:`broadcast`): the global state — plus algorithm
  extras such as SCAFFOLD's server control variate — is encoded once per
  round, decoded the way every client would decode it, and the decoded
  state is what clients actually train from.  Per-client downlink bytes
  are measured from the encoded payloads.
- **Uplink** (:meth:`encode_upload`): each party's trained state — plus
  extras such as SCAFFOLD's control-variate delta — is encoded with the
  *client's* generator (so worker processes reproduce the serial draws
  bit for bit), decoded into what the server would reconstruct, and
  metered.  Error-feedback codecs return a residual the executor stores
  in ``ClientResult.client_state`` under :data:`RESIDUAL_KEY`; the
  server commits it into ``client.state`` through the same purity
  contract every other per-party state uses.

Stream policies
---------------
``on_delta`` codecs compress the uplink *update* (broadcast state minus
trained state) rather than the raw state, and reconstruct
``reference - decode(payload)`` server-side.  On the downlink,
error-feedback codecs compress the change against the previous decoded
broadcast (with a server-side residual; the first round ships dense), so
the broadcast stream stays incremental; other codecs encode the absolute
state.  Algorithm extras ship through shape-preserving codecs
(identity/float16/qsgd) but stay dense float32 under sparsifiers —
sparsifying a control variate would need its own residual stream and
breaks the correction it implements — while still being metered.

The identity codec short-circuits every transform: arrays pass through
untouched (keeping training bitwise identical to the pre-codec code
path) and only the measured float32 sizes are recorded — which equal the
closed-form ``4 bytes x floats`` accounting this subsystem replaces.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.comm.codecs import FLOAT_BYTES, Codec, make_codec
from repro.grad.serialize import state_dict_to_vector, vector_to_state_dict

#: ``client.state`` / ``ClientResult.client_state`` key carrying a
#: party's uplink error-feedback residual between rounds
RESIDUAL_KEY = "comm_residual"


def _state_floats(state: dict) -> int:
    return sum(int(np.asarray(value).size) for value in state.values())


def _extras_floats(extras: dict) -> int:
    total = 0
    for value in extras.values():
        if isinstance(value, (list, tuple)):
            total += sum(int(np.asarray(entry).size) for entry in value)
        elif isinstance(value, np.ndarray):
            total += int(value.size)
        elif isinstance(value, numbers.Number):
            total += 1
    return total


class CommChannel:
    """Apply one codec to both transport directions and meter the bytes.

    Parameters
    ----------
    codec:
        The :class:`~repro.comm.codecs.Codec` both directions use.
    seed:
        Seeds the server-side generator used by stochastic codecs on the
        downlink (the uplink uses each client's own generator, which is
        what keeps serial and parallel execution identical).
    """

    def __init__(self, codec: Codec, seed: int = 0):
        self.codec = codec
        self._down_rng = np.random.default_rng(seed)
        # Incremental-broadcast state for error-feedback codecs: the
        # vector every client currently holds, and the mass the last
        # encoding dropped.
        self._down_reference: np.ndarray | None = None
        self._down_residual: np.ndarray | None = None

    @classmethod
    def from_config(cls, config) -> "CommChannel":
        """Build the channel a :class:`FederatedConfig` asks for."""
        codec = make_codec(config.codec, bits=config.codec_bits, k=config.codec_k)
        return cls(codec, seed=config.seed + 104729)

    # ------------------------------------------------------------------
    # Downlink
    # ------------------------------------------------------------------
    def broadcast(
        self, state: dict, extras: dict, keys: list[str]
    ) -> tuple[dict, dict, int]:
        """Encode one round's broadcast; returns what clients receive.

        Returns ``(state_for_clients, extras_for_clients, nbytes)`` where
        ``nbytes`` is the measured *per-client* downlink cost.
        """
        if self.codec.lossless:
            nbytes = FLOAT_BYTES * (_state_floats(state) + _extras_floats(extras))
            return state, extras, nbytes
        vector = state_dict_to_vector(state, keys=keys)
        if self.codec.error_feedback:
            decoded, state_nbytes = self._incremental_broadcast(vector)
        else:
            payload = self.codec.encode(vector, self._down_rng)
            decoded, state_nbytes = self.codec.decode(payload), payload.nbytes
        state_out = vector_to_state_dict(decoded, state, keys=keys)
        extras_out, extras_nbytes = self.encode_extras(extras, self._down_rng)
        return state_out, extras_out, state_nbytes + extras_nbytes

    def _incremental_broadcast(self, vector: np.ndarray) -> tuple[np.ndarray, int]:
        """Sparsifier downlink: ship the change since the last broadcast."""
        if self._down_reference is None:
            # Warm start: the first broadcast is dense — sparsifying a
            # full model from zero would hand clients a mostly-empty net.
            self._down_reference = vector.copy()
            return self._down_reference, FLOAT_BYTES * vector.size
        target = vector - self._down_reference
        if self._down_residual is not None:
            target = target + self._down_residual
        payload = self.codec.encode(target, self._down_rng)
        decoded = self.codec.decode(payload)
        self._down_residual = target - decoded
        self._down_reference = self._down_reference + decoded
        return self._down_reference, payload.nbytes

    # ------------------------------------------------------------------
    # Uplink
    # ------------------------------------------------------------------
    def encode_upload(
        self,
        state: dict,
        extras: dict,
        reference: np.ndarray | None,
        keys: list[str] | None,
        rng: np.random.Generator,
        residual: np.ndarray | None = None,
        metadata_floats: int = 0,
    ) -> tuple[dict, dict, int, np.ndarray | None]:
        """Encode one party's upload as the server would receive it.

        ``reference`` is the flat broadcast vector the party trained from
        (needed by ``on_delta`` codecs; may be ``None`` for the identity
        codec).  ``metadata_floats`` meters aggregation scalars the
        algorithm ships beyond its array streams (FedNova's ``tau_i``).

        Returns ``(state, extras, nbytes, new_residual)``; the state and
        extras are what the server reconstructs after decoding.
        """
        if self.codec.lossless:
            nbytes = FLOAT_BYTES * (
                _state_floats(state) + _extras_floats(extras) + metadata_floats
            )
            return state, extras, nbytes, None
        vector = state_dict_to_vector(state, keys=keys)
        target = reference - vector if self.codec.on_delta else vector
        if self.codec.error_feedback and residual is not None:
            target = target + residual
        payload = self.codec.encode(target, rng)
        decoded = self.codec.decode(payload)
        new_residual = target - decoded if self.codec.error_feedback else None
        out = reference - decoded if self.codec.on_delta else decoded
        state_out = vector_to_state_dict(out, state, keys=keys)
        extras_out, extras_nbytes = self.encode_extras(extras, rng)
        nbytes = payload.nbytes + extras_nbytes + FLOAT_BYTES * metadata_floats
        return state_out, extras_out, nbytes, new_residual

    # ------------------------------------------------------------------
    # Algorithm extras (control variates and friends)
    # ------------------------------------------------------------------
    def encode_extras(
        self, extras: dict, rng: np.random.Generator
    ) -> tuple[dict, int]:
        """Encode a payload dict's arrays; meter everything in it.

        Values may be arrays, lists/tuples of arrays, or scalars.  Under
        sparsifiers the arrays pass through dense (see module docstring)
        at float32 cost; shape-preserving codecs genuinely round-trip
        them.  Scalars are metered at one float each.
        """
        if not extras:
            return extras, 0
        if self.codec.lossless or self.codec.error_feedback:
            return extras, FLOAT_BYTES * _extras_floats(extras)
        out: dict = {}
        nbytes = 0
        for key, value in extras.items():
            if isinstance(value, (list, tuple)):
                coded = []
                for entry in value:
                    decoded, entry_nbytes = self._roundtrip_array(entry, rng)
                    coded.append(decoded)
                    nbytes += entry_nbytes
                out[key] = type(value)(coded)
            elif isinstance(value, np.ndarray):
                decoded, entry_nbytes = self._roundtrip_array(value, rng)
                out[key] = decoded
                nbytes += entry_nbytes
            else:
                if isinstance(value, numbers.Number):
                    nbytes += FLOAT_BYTES
                out[key] = value
        return out, nbytes

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Mutable transport state a run checkpoint must carry.

        Covers the downlink generator (stochastic codecs) and the
        incremental-broadcast reference/residual (error-feedback codecs)
        so a resumed run's wire stream is bitwise identical to the
        uninterrupted one.
        """
        return {
            "down_rng": self._down_rng.bit_generator.state,
            "down_reference": (
                None if self._down_reference is None else self._down_reference.copy()
            ),
            "down_residual": (
                None if self._down_residual is None else self._down_residual.copy()
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        self._down_rng.bit_generator.state = state["down_rng"]
        reference = state["down_reference"]
        residual = state["down_residual"]
        self._down_reference = None if reference is None else np.asarray(reference).copy()
        self._down_residual = None if residual is None else np.asarray(residual).copy()

    def _roundtrip_array(
        self, array: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        array = np.asarray(array)
        payload = self.codec.encode(array.reshape(-1), rng)
        return self.codec.decode(payload).reshape(array.shape), payload.nbytes

    def __repr__(self) -> str:
        return f"CommChannel(codec={self.codec!r})"
