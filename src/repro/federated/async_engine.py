"""Virtual-time asynchronous federation engine (FedBuff-style).

The synchronous :class:`~repro.federated.server.FederatedServer` is a
barrier: every round waits for the slowest sampled party.  Deployed
cross-device systems instead keep a *cohort* of clients in flight,
apply updates as soon as a buffer of ``M`` uploads fills (FedBuff), and
let stragglers' deltas land in later server steps with recorded
staleness.  This module simulates that server on a **virtual clock**:

- a discrete-event scheduler over a heap of ``(virtual_time, seq,
  event)`` — no wall-clock reads anywhere, so the same spec seed yields
  the same event order, history and final model in any process;
- latency comes from the existing :class:`~repro.federated.systems.
  SystemModel` (per-party compute speed and bandwidth) and
  :class:`~repro.federated.faults.FaultModel` (straggler slowdowns,
  dropouts, mid-training crashes), both already pure seeded draws;
- client *compute* runs through the ordinary
  :class:`~repro.federated.executor.ClientExecutor` backends — each
  dispatch group is one ``execute_round`` batch, so serial, stacked and
  (for materialized populations) fork-parallel execution all plug in
  underneath unchanged;
- parties come from a :class:`~repro.federated.population.
  ClientPopulation`: checked out at dispatch, released (state spilled
  cold) when their upload lands or they fail — memory stays
  O(cohort), not O(population).

Scheduler invariants
--------------------
1. ``outstanding + len(buffer) <= cohort`` whenever an explicit
   ``buffer_size`` is set (fault over-sampling may push a *barrier*
   dispatch group past the nominal cohort, exactly like the sync
   server's over-sampled rounds); failures are replaced only at flush
   boundaries, so a server step is never silently backfilled.
2. In buffered mode a server step (flush) happens when the buffer
   reaches ``M = buffer_size`` **or** the last in-flight client
   resolves — whichever comes first; the second clause guarantees
   progress under heavy dropout.  In barrier mode (``buffer_size``
   unset) a flush waits for the *entire* dispatch group, so the
   survivors aggregate when the slowest arrives (all-failure rounds
   record NaN) — the synchronous round, replayed on the virtual clock.
3. After each flush the engine dispatches ``cohort - outstanding``
   freshly sampled parties at the current clock, so every dispatch
   group trains from one well-defined model version.

Staleness semantics
-------------------
An update's staleness is the number of server steps committed between
its dispatch and its application.  A flush whose updates are *all*
staleness-0 (every barrier flush, and the common async case) aggregates
through the algorithm's own :meth:`aggregate` over absolute client
states — which is why ``buffer == cohort`` reproduces the synchronous
server **bitwise**.  A flush that mixes model versions cannot (the
absolute states disagree about everything the missed steps changed);
it applies a staleness-weighted delta average instead::

    global += server_lr * sum_i w_i * (state_i - dispatch_version_i)
    w_i  proportional to  num_samples_i * (1 + staleness_i) ** -a

with ``a = config.staleness_exponent`` (0 = pure sample weighting;
FedBuff's paper uses 0.5).  The delta path is defined for the
FedAvg-family (plain weighted averaging; FedAvg and FedProx); engines
configured so mixed flushes are possible reject other algorithms
up front rather than silently dropping their server-side logic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.comm import CommChannel
from repro.federated.config import FederatedConfig
from repro.federated.evaluation import evaluate as evaluate_model
from repro.federated.executor import ParallelExecutor, make_executor
from repro.federated.faults import NO_FAULT, FaultModel
from repro.federated.history import History, RoundRecord
from repro.federated.population import ClientPopulation, MaterializedPopulation
from repro.federated.sampling import sample_clients
from repro.federated.systems import SystemModel

#: algorithms whose aggregation is plain weighted averaging, for which
#: the mixed-staleness delta path is exact in semantics
DELTA_SAFE_ALGORITHMS = ("fedavg", "fedprox")

#: event kind -> event class; every kind must have a matching
#: ``AsyncFederation._handle_<kind>`` method (enforced by tools/lint.py)
EVENT_TYPES: dict[str, type] = {}


def register_event(cls):
    """Class decorator: register an event type under its ``kind``."""
    EVENT_TYPES[cls.kind] = cls
    return cls


@register_event
@dataclass(frozen=True)
class ClientUpdate:
    """A client's upload arrives at the server."""

    kind: ClassVar[str] = "client_update"
    party: int
    slot: int


@register_event
@dataclass(frozen=True)
class ClientFailure:
    """An in-flight client is lost (mid-training crash)."""

    kind: ClassVar[str] = "client_failure"
    party: int
    slot: int
    reason: str


class _DispatchGroup:
    """One batch of clients dispatched against one model version."""

    __slots__ = ("seq", "server_step", "reference")

    def __init__(self, seq: int, server_step: int, reference: dict):
        self.seq = seq
        self.server_step = server_step
        #: the global state this group trained from (delta base); holds a
        #: reference to the server's dict — aggregation replaces rather
        #: than mutates it, so no copy is needed
        self.reference = reference


class _InFlight:
    """Everything the server will need when this client's event fires."""

    __slots__ = ("party", "group", "index", "result", "slowdown")

    def __init__(self, party, group, index, result, slowdown):
        self.party = party
        self.group = group
        #: position inside the dispatch group (participant order)
        self.index = index
        self.result = result
        self.slowdown = slowdown


class AsyncFederation:
    """Buffered-asynchronous federated training on a virtual clock.

    Parameters mirror :class:`~repro.federated.server.FederatedServer`
    with ``clients`` generalized to a :class:`ClientPopulation` and a
    :class:`SystemModel` supplying the latency axis.  Cohort size comes
    from ``config.sample_per_round`` (falling back to ``sample_fraction
    * population``), buffer size from ``config.buffer_size`` (falling
    back to the cohort — a barrier).
    """

    def __init__(
        self,
        model,
        algorithm,
        population: ClientPopulation,
        config: FederatedConfig,
        test_dataset=None,
        executor=None,
        channel=None,
        system: SystemModel | None = None,
    ):
        self.model = model
        self.algorithm = algorithm
        self.population = population
        self.config = config
        self.test_dataset = test_dataset
        self.system = system if system is not None else SystemModel()
        self.global_state = model.state_dict()
        self.history = History()
        self._sampler_rng = np.random.default_rng(config.seed)
        self.fault_model = FaultModel.from_config(config)
        if config.sample_per_round is not None:
            self.cohort = config.sample_per_round
        else:
            self.cohort = max(
                1, int(round(config.sample_fraction * population.size))
            )
        if self.cohort > population.size:
            raise ValueError(
                f"cohort ({self.cohort}) exceeds the population "
                f"({population.size}); lower sample_per_round"
            )
        #: barrier mode (no explicit buffer): a server step waits for the
        #: whole dispatch group, including fault-driven over-sampling
        #: beyond the nominal cohort — exactly the sync server's round.
        self._barrier = config.buffer_size is None
        self.buffer_size = (
            config.buffer_size if config.buffer_size is not None else self.cohort
        )
        if self.buffer_size > self.cohort:
            raise ValueError(
                f"buffer_size ({self.buffer_size}) cannot exceed the cohort "
                f"({self.cohort})"
            )
        if (
            not self._barrier
            and algorithm.name not in DELTA_SAFE_ALGORITHMS
            and (self.buffer_size < self.cohort or self.fault_model is not None)
        ):
            raise ValueError(
                f"aggregation='async' with an explicit buffer_size can mix "
                f"model versions, which is only defined for plain weighted "
                f"averaging ({DELTA_SAFE_ALGORITHMS}); {algorithm.name!r} "
                "has server-side aggregation logic the delta path would "
                "silently drop.  Omit buffer_size (a barrier) or use a "
                "FedAvg-family algorithm."
            )
        self._view = population.client_view()
        algorithm.prepare(model, self._view, config)
        self.channel = (
            channel if channel is not None else CommChannel.from_config(config)
        )
        self._comm_keys = sorted(self.global_state)
        self.executor = executor if executor is not None else make_executor(config)
        if isinstance(self.executor, ParallelExecutor) and not isinstance(
            population, MaterializedPopulation
        ):
            raise ValueError(
                "the fork-parallel executor snapshots all clients at fork "
                "time and cannot see lazily materialized parties; use "
                "executor='serial' or 'stacked' with virtual populations"
            )
        self.executor.setup(model, algorithm, self._view, config, channel=self.channel)

        # -- scheduler state -------------------------------------------
        self._clock = 0.0
        self._event_seq = 0
        self._group_seq = 0
        self._events: list[tuple[float, int, object]] = []
        self._inflight: dict[int, _InFlight] = {}
        self._slot_seq = 0
        self._outstanding = 0
        self._buffer: list[_InFlight] = []
        self._flushes = 0
        # per-epoch (since last flush) accounting for the RoundRecord
        self._epoch_sampled: list[int] = []
        self._epoch_dropped: list[int] = []
        self._epoch_drop_reasons: list[str] = []
        self._epoch_bytes_down = 0
        self._epoch_fallback: str | None = None

    @property
    def virtual_time(self) -> float:
        """Current reading of the virtual clock (seconds)."""
        return self._clock

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, time: float, event) -> None:
        heapq.heappush(self._events, (time, self._event_seq, event))
        self._event_seq += 1

    def _handle_client_update(self, event: ClientUpdate) -> None:
        entry = self._inflight.pop(event.slot)
        self._outstanding -= 1
        self.population.release(event.party)
        self._buffer.append(entry)

    def _handle_client_failure(self, event: ClientFailure) -> None:
        self._inflight.pop(event.slot)
        self._outstanding -= 1
        self.population.release(event.party)
        self._epoch_dropped.append(event.party)
        self._epoch_drop_reasons.append(event.reason)

    # ------------------------------------------------------------------
    # Dispatch: sample, execute (compute happens now; arrival is later)
    # ------------------------------------------------------------------
    def _sample_group(self, count: int) -> list[int]:
        """Draw a dispatch group, over-sampling under active faults.

        Mirrors ``FederatedServer._sample_round``: with an expected drop
        fraction ``d``, dispatching ``count / (1 - d)`` keeps expected
        completions at ``count`` (the adjustment applies to the count
        rather than the fraction — same math, absolute form).
        """
        size = self.population.size
        if (
            self.fault_model is not None
            and self.config.over_sample
            and count < size
        ):
            drop = self.fault_model.expected_drop_rate(self.config.deadline)
            if drop > 0.0:
                count = min(size, max(1, int(round(count / (1.0 - drop)))))
        return [int(p) for p in sample_clients(size, count, self._sampler_rng)]

    def _party_duration(self, party: int, steps: int, up_bytes: int,
                        down_bytes: int, slowdown: float) -> float:
        """Seconds from dispatch to upload arrival for one client."""
        compute = steps * self.system.step_time / self.system._speed(party)
        compute *= slowdown
        transfer = (down_bytes + up_bytes) / self.system._bandwidth(party)
        return compute + transfer + self.system.server_overhead

    def _dispatch(self, count: int) -> None:
        """Sample ``count`` parties, run their local rounds against the
        current model version, and schedule their arrivals/failures."""
        if count <= 0:
            return
        sampled = self._sample_group(count)
        self._epoch_sampled.extend(sampled)
        step = self._flushes
        faults = (
            self.fault_model.round_faults(step, sampled)
            if self.fault_model is not None
            else {}
        )
        deadline = self.config.deadline
        participants: list[int] = []
        dispatch_faults = {}
        for party in sampled:
            fault = faults.get(party, NO_FAULT)
            if fault.dropped:
                self._epoch_dropped.append(party)
                self._epoch_drop_reasons.append("dropout")
                continue
            if deadline is not None and fault.slowdown > deadline:
                self._epoch_dropped.append(party)
                self._epoch_drop_reasons.append("deadline")
                continue
            participants.append(party)
            if not fault.ok:
                dispatch_faults[party] = fault
        for party in participants:
            self.population.checkout(party)
        extras = self.algorithm.broadcast_payload()
        broadcast_state, extras, down_per_client = self.channel.broadcast(
            self.global_state, extras, self._comm_keys
        )
        self._epoch_bytes_down += down_per_client * len(sampled)
        execution = self.executor.execute_round(
            broadcast_state, participants, extras,
            faults=dispatch_faults or None,
        )
        if execution.fallback is not None and self._epoch_fallback is None:
            self._epoch_fallback = execution.fallback
        # Persistent per-party state commits at compute time (the client
        # finished training now, in virtual time; only its *upload* is
        # still traveling), in participant order like the sync server.
        for party, result in zip(execution.completed, execution.results):
            self.algorithm.commit(self._view[party], result)
        group = _DispatchGroup(self._group_seq, step, self.global_state)
        self._group_seq += 1
        completed = dict(zip(execution.completed, execution.results))
        for index, party in enumerate(participants):
            fault = dispatch_faults.get(party, NO_FAULT)
            slot = self._slot_seq
            self._slot_seq += 1
            if party in completed:
                result = completed[party]
                entry = _InFlight(party, group, index, result, fault.slowdown)
                self._inflight[slot] = entry
                self._outstanding += 1
                duration = self._party_duration(
                    party, result.num_steps, result.upload_nbytes,
                    down_per_client, fault.slowdown,
                )
                self._schedule(self._clock + duration, ClientUpdate(party, slot))
            elif party in execution.failed:
                # Mid-training crash: the party occupies its slot for the
                # steps it survived, then is lost (no upload in flight).
                steps_done = fault.crash_after_steps or 0
                self._inflight[slot] = _InFlight(
                    party, group, index, None, fault.slowdown
                )
                self._outstanding += 1
                duration = self._party_duration(
                    party, steps_done, 0, down_per_client, fault.slowdown
                )
                self._schedule(
                    self._clock + duration,
                    ClientFailure(party, slot, execution.failed[party]),
                )
            else:  # pragma: no cover - executor contract: completed or failed
                self.population.release(party)

    # ------------------------------------------------------------------
    # Flush: one server step
    # ------------------------------------------------------------------
    def _aggregate_delta(self, entries: list[_InFlight]) -> dict:
        """Staleness-weighted delta average (the mixed-version path)."""
        exponent = self.config.staleness_exponent
        weights = np.array(
            [
                entry.result.num_samples
                * (1.0 + (self._flushes - entry.group.server_step)) ** -exponent
                for entry in entries
            ],
            dtype=np.float64,
        )
        weights = weights / weights.sum()
        server_lr = self.config.server_lr
        new_state: dict[str, np.ndarray] = {}
        for key in self.algorithm.all_keys:
            base = np.asarray(self.global_state[key], dtype=np.float64)
            update = np.zeros_like(base)
            for weight, entry in zip(weights, entries):
                delta = np.asarray(
                    entry.result.state[key], dtype=np.float64
                ) - np.asarray(entry.group.reference[key], dtype=np.float64)
                update += weight * delta
            merged = base + server_lr * update
            new_state[key] = merged.astype(
                np.asarray(self.global_state[key]).dtype
            )
        return new_state

    def _flush(self) -> RoundRecord:
        """Apply the buffered updates as one server step and record it."""
        entries = sorted(self._buffer, key=lambda e: (e.group.seq, e.index))
        self._buffer = []
        staleness = [
            self._flushes - entry.group.server_step for entry in entries
        ]
        results = [entry.result for entry in entries]
        if entries:
            if all(s == 0 for s in staleness):
                # Single model version: the algorithm's own aggregation
                # over absolute states — bitwise the sync server's path.
                self.global_state = self.algorithm.aggregate(
                    self.global_state, results, self.config
                )
            else:
                self.global_state = self._aggregate_delta(entries)
        self._flushes += 1
        accuracy = None
        if self.test_dataset is not None and (
            self._flushes % self.config.eval_every == 0
        ):
            accuracy = self.evaluate()
        client_bytes_up = [r.upload_nbytes for r in results]
        bytes_up = sum(client_bytes_up)
        record = RoundRecord(
            round_index=self._flushes - 1,
            test_accuracy=accuracy,
            train_loss=(
                float(np.mean([r.mean_loss for r in results]))
                if results
                else float("nan")
            ),
            participants=[entry.party for entry in entries],
            bytes_communicated=self._epoch_bytes_down + bytes_up,
            client_steps=[r.num_steps for r in results],
            bytes_down=self._epoch_bytes_down,
            bytes_up=bytes_up,
            client_bytes_up=client_bytes_up,
            sampled=self._epoch_sampled,
            dropped=self._epoch_dropped,
            drop_reasons=self._epoch_drop_reasons,
            slowdowns=(
                [entry.slowdown for entry in entries]
                if self.fault_model is not None
                else []
            ),
            fallback=self._epoch_fallback,
            virtual_time=self._clock,
            staleness=staleness,
            buffer_flush=len(entries),
        )
        self.history.append(record)
        self._epoch_sampled = []
        self._epoch_dropped = []
        self._epoch_drop_reasons = []
        self._epoch_bytes_down = 0
        self._epoch_fallback = None
        return record

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _replenish(self, target: int) -> None:
        """Top the cohort back up; flush-through if everyone drops."""
        while self._flushes < target:
            self._dispatch(self.cohort - self._outstanding)
            if self._outstanding > 0:
                return
            # Every dispatched party dropped before compute: the sync
            # server records such a round as NaN; so does the engine.
            self._flush()

    def fit(self, num_rounds: int | None = None) -> History:
        """Run until ``num_rounds`` server steps (flushes) committed."""
        rounds = (
            num_rounds if num_rounds is not None else self.config.num_rounds
        )
        target = self._flushes + rounds
        self._replenish(target)
        while self._flushes < target and self._events:
            time, _seq, event = heapq.heappop(self._events)
            self._clock = time
            getattr(self, f"_handle_{event.kind}")(event)
            # Barrier mode waits for the whole dispatch group — which can
            # exceed the nominal cohort under fault over-sampling — so it
            # aggregates exactly the sync round's survivors.  Buffered
            # mode flushes at M arrivals (or when everything in flight
            # has resolved, which prevents deadlock on heavy dropout).
            if (
                not self._barrier and len(self._buffer) >= self.buffer_size
            ) or self._outstanding == 0:
                self._flush()
                self._replenish(target)
        return self.history

    def evaluate(self, dataset=None) -> float:
        """Top-1 accuracy of the current global model."""
        target = dataset if dataset is not None else self.test_dataset
        if target is None:
            raise ValueError("no test dataset provided")
        self.model.load_state_dict(self.global_state)
        result = evaluate_model(
            self.model,
            target,
            self.config.eval_batch_size,
            compiled=self.config.compile,
        )
        return result.accuracy

    def close(self) -> None:
        """Release the executor's resources (worker pools); idempotent."""
        self.executor.close()

    def __enter__(self) -> "AsyncFederation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
