"""Round-by-round training history (the data behind Figures 7-12)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RoundRecord:
    """Metrics from a single communication round."""

    round_index: int
    test_accuracy: float | None
    train_loss: float
    participants: list[int]
    #: total bytes shipped this round (both directions, all participants),
    #: measured from the encoded payloads of the run's codec
    #: (:mod:`repro.comm`) — the paper's communication-cost axis.
    bytes_communicated: int = 0
    #: local mini-batch steps taken by each participant this round
    #: (aligned with ``participants``); feeds the wall-clock system model.
    client_steps: list[int] = field(default_factory=list)
    #: per-direction breakdown of ``bytes_communicated`` (server->clients
    #: and clients->server); 0 on records persisted before the breakdown
    #: existed.
    bytes_down: int = 0
    bytes_up: int = 0
    #: measured uplink bytes per completing participant (aligned with
    #: ``participants``); lets the wall-clock replay charge per-client
    #: codec payload variation correctly.  Empty on legacy records.
    client_bytes_up: list[int] = field(default_factory=list)
    #: the full set of parties the sampler drew this round, before the
    #: fault model thinned it; equals ``participants`` on fault-free
    #: rounds.  Empty on legacy records (read it as "= participants").
    sampled: list[int] = field(default_factory=list)
    #: sampled parties that did not make it into aggregation, with
    #: aligned human-readable reasons ("dropout", "deadline",
    #: "crash@step3").
    dropped: list[int] = field(default_factory=list)
    drop_reasons: list[str] = field(default_factory=list)
    #: compute slowdown per completing participant (aligned with
    #: ``participants``; 1.0 = nominal) — how the system model charges
    #: stragglers' elapsed time.  Empty means all-nominal.
    slowdowns: list[float] = field(default_factory=list)
    #: recovery path the executor took this round ("retry", "serial"),
    #: None for a clean round.
    fallback: str | None = None
    #: virtual clock reading when this server step committed (seconds on
    #: the :class:`~repro.federated.systems.SystemModel` time axis).
    #: 0.0 on synchronous-server records, which keep their own wall-clock
    #: replay via :meth:`SystemModel.replay`.
    virtual_time: float = 0.0
    #: per-applied-update staleness (server steps elapsed between a
    #: client's dispatch and its update landing; aligned with
    #: ``participants``).  All zeros under a synchronous barrier; empty
    #: on legacy records.
    staleness: list[int] = field(default_factory=list)
    #: number of buffered client updates this server step applied (the
    #: FedBuff ``M``); 0 on synchronous-server records.
    buffer_flush: int = 0

    def to_dict(self) -> dict:
        return {
            "round": self.round_index,
            "test_accuracy": self.test_accuracy,
            "train_loss": self.train_loss,
            "participants": list(self.participants),
            "bytes_communicated": self.bytes_communicated,
            "client_steps": list(self.client_steps),
            "bytes_down": self.bytes_down,
            "bytes_up": self.bytes_up,
            "client_bytes_up": list(self.client_bytes_up),
            "sampled": list(self.sampled),
            "dropped": list(self.dropped),
            "drop_reasons": list(self.drop_reasons),
            "slowdowns": list(self.slowdowns),
            "fallback": self.fallback,
            "virtual_time": self.virtual_time,
            "staleness": list(self.staleness),
            "buffer_flush": self.buffer_flush,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        """Inverse of :meth:`to_dict`; tolerant of older persisted records."""
        accuracy = data.get("test_accuracy")
        return cls(
            round_index=int(data["round"]),
            test_accuracy=None if accuracy is None else float(accuracy),
            train_loss=float(data["train_loss"]),
            participants=[int(p) for p in data.get("participants", [])],
            bytes_communicated=int(data.get("bytes_communicated", 0)),
            client_steps=[int(s) for s in data.get("client_steps", [])],
            bytes_down=int(data.get("bytes_down", 0)),
            bytes_up=int(data.get("bytes_up", 0)),
            client_bytes_up=[int(b) for b in data.get("client_bytes_up", [])],
            sampled=[int(p) for p in data.get("sampled", [])],
            dropped=[int(p) for p in data.get("dropped", [])],
            drop_reasons=[str(r) for r in data.get("drop_reasons", [])],
            slowdowns=[float(s) for s in data.get("slowdowns", [])],
            fallback=data.get("fallback"),
            virtual_time=float(data.get("virtual_time", 0.0)),
            staleness=[int(s) for s in data.get("staleness", [])],
            buffer_flush=int(data.get("buffer_flush", 0)),
        )


@dataclass
class History:
    """Full run record with convenience accessors for curve analysis."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def rounds(self) -> np.ndarray:
        return np.array([r.round_index for r in self.records])

    @property
    def accuracies(self) -> np.ndarray:
        """Per-round test accuracy (NaN for rounds without evaluation)."""
        return np.array(
            [np.nan if r.test_accuracy is None else r.test_accuracy for r in self.records]
        )

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.train_loss for r in self.records])

    @property
    def virtual_times(self) -> np.ndarray:
        """Virtual-clock reading at each server step (async engine runs)."""
        return np.array([r.virtual_time for r in self.records])

    def mean_staleness(self) -> float:
        """Average staleness over every applied update in the run.

        0.0 for synchronous runs (and async runs with ``buffer ==
        cohort``, where the barrier guarantees no update ever waits out
        a server step).
        """
        values = [s for r in self.records for s in r.staleness]
        if not values:
            return 0.0
        return float(np.mean(values))

    @property
    def dropped_counts(self) -> np.ndarray:
        """Parties lost per round (dropout, deadline, crash); 0 = clean."""
        return np.array([len(r.dropped) for r in self.records])

    @property
    def final_accuracy(self) -> float:
        evaluated = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        if not evaluated:
            raise ValueError("no evaluated rounds in history")
        return float(evaluated[-1])

    @property
    def best_accuracy(self) -> float:
        evaluated = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        if not evaluated:
            raise ValueError("no evaluated rounds in history")
        return float(max(evaluated))

    def accuracy_instability(self) -> float:
        """Mean absolute round-to-round accuracy change.

        The paper repeatedly observes "unstable" training curves (Findings
        4, 7, 8); this scalar makes the claim measurable and testable.
        """
        acc = self.accuracies
        acc = acc[~np.isnan(acc)]
        if len(acc) < 2:
            return 0.0
        return float(np.abs(np.diff(acc)).mean())

    def cumulative_communication(self) -> np.ndarray:
        """Total bytes shipped up to and including each round.

        Plotting accuracy against this axis instead of the round index is
        the paper's Section 5.2 communication-efficiency view — it is what
        makes SCAFFOLD's doubled payload visible.
        """
        return np.cumsum([r.bytes_communicated for r in self.records])

    def to_dict(self) -> dict:
        return {"records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        """Rebuild a history persisted by :meth:`to_dict` (e.g. from a
        :class:`~repro.experiments.store.ResultStore` JSON file) so the
        analysis accessors work on reloaded runs."""
        return cls(records=[RoundRecord.from_dict(r) for r in data.get("records", [])])

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(rounds, accuracies) restricted to evaluated rounds."""
        mask = ~np.isnan(self.accuracies)
        return self.rounds[mask], self.accuracies[mask]
