"""Round-by-round training history (the data behind Figures 7-12)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RoundRecord:
    """Metrics from a single communication round."""

    round_index: int
    test_accuracy: float | None
    train_loss: float
    participants: list[int]
    #: total bytes shipped this round (both directions, all participants),
    #: assuming float32 payloads — the paper's communication-cost axis.
    bytes_communicated: int = 0
    #: local mini-batch steps taken by each participant this round
    #: (aligned with ``participants``); feeds the wall-clock system model.
    client_steps: list[int] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "round": self.round_index,
            "test_accuracy": self.test_accuracy,
            "train_loss": self.train_loss,
            "participants": list(self.participants),
            "bytes_communicated": self.bytes_communicated,
            "client_steps": list(self.client_steps),
        }


@dataclass
class History:
    """Full run record with convenience accessors for curve analysis."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def rounds(self) -> np.ndarray:
        return np.array([r.round_index for r in self.records])

    @property
    def accuracies(self) -> np.ndarray:
        """Per-round test accuracy (NaN for rounds without evaluation)."""
        return np.array(
            [np.nan if r.test_accuracy is None else r.test_accuracy for r in self.records]
        )

    @property
    def losses(self) -> np.ndarray:
        return np.array([r.train_loss for r in self.records])

    @property
    def final_accuracy(self) -> float:
        evaluated = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        if not evaluated:
            raise ValueError("no evaluated rounds in history")
        return float(evaluated[-1])

    @property
    def best_accuracy(self) -> float:
        evaluated = [r.test_accuracy for r in self.records if r.test_accuracy is not None]
        if not evaluated:
            raise ValueError("no evaluated rounds in history")
        return float(max(evaluated))

    def accuracy_instability(self) -> float:
        """Mean absolute round-to-round accuracy change.

        The paper repeatedly observes "unstable" training curves (Findings
        4, 7, 8); this scalar makes the claim measurable and testable.
        """
        acc = self.accuracies
        acc = acc[~np.isnan(acc)]
        if len(acc) < 2:
            return 0.0
        return float(np.abs(np.diff(acc)).mean())

    def cumulative_communication(self) -> np.ndarray:
        """Total bytes shipped up to and including each round.

        Plotting accuracy against this axis instead of the round index is
        the paper's Section 5.2 communication-efficiency view — it is what
        makes SCAFFOLD's doubled payload visible.
        """
        return np.cumsum([r.bytes_communicated for r in self.records])

    def to_dict(self) -> dict:
        return {"records": [r.to_dict() for r in self.records]}

    def curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(rounds, accuracies) restricted to evaluated rounds."""
        mask = ~np.isnan(self.accuracies)
        return self.rounds[mask], self.accuracies[mask]
