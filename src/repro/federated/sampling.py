"""Party sampling for partial participation (paper Sections 5.6 and 6.1).

Two samplers:

- :func:`sample_parties` — uniform random sampling, the paper's default
  (Algorithm 1 line 6), whose instability Figure 12 documents;
- :class:`StratifiedSampler` — the paper's Section 6.1 proposal made
  concrete: "instead of random sampling, selective sampling according to
  the data distribution features of the parties may significantly
  increase the learning stability".  Parties are chosen greedily so that
  the pooled label distribution of the sample stays close (in KL) to the
  global one, with a random tie-breaking seed party per round so coverage
  still rotates.
"""

from __future__ import annotations

import numpy as np


def sample_parties(
    num_parties: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample ``max(1, round(fraction * N))`` distinct parties.

    The paper's scalability experiment uses 100 parties with fraction 0.1;
    full participation (fraction 1.0) returns all parties in index order so
    runs are byte-for-byte reproducible across sampler versions.
    """
    if num_parties <= 0:
        raise ValueError(f"num_parties must be positive, got {num_parties}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return np.arange(num_parties)
    count = max(1, int(round(fraction * num_parties)))
    return np.sort(rng.choice(num_parties, size=count, replace=False))


def sample_clients(
    population: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniformly sample ``count`` distinct parties from ``population``.

    The count-based sibling of :func:`sample_parties`, used by the async
    engine where cohorts are sized absolutely (``sample_per_round=100``
    out of a million) rather than as a fraction.  Guards explicitly:
    ``count`` must satisfy ``0 < count <= population`` — asking for more
    clients than exist (the fraction-form equivalent of ``fraction > 1``)
    is an error, not a silent clamp to the full population.

    The draw is the exact same ``rng.choice(N, size=count,
    replace=False)`` call as :func:`sample_parties` (numpy implements it
    with Floyd's algorithm — O(count) time and memory, no O(population)
    permutation, so million-client populations stay flat), which means a
    barrier-mode async run consumes the sampler RNG identically to the
    synchronous server.  ``count == population`` returns all parties in
    index order without touching the RNG, mirroring ``fraction == 1.0``.
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    if not 0 < count <= population:
        raise ValueError(
            f"count must be in [1, population={population}], got {count}; "
            "cannot sample more clients than the population holds"
        )
    if count == population:
        return np.arange(population)
    return np.sort(rng.choice(population, size=count, replace=False))


class StratifiedSampler:
    """Label-distribution-aware party sampling (paper Section 6.1).

    Parameters
    ----------
    label_counts:
        ``(num_parties, num_classes)`` per-party label counts (e.g. from
        :meth:`repro.partition.base.Partition.counts_matrix`, or collected
        from the clients — which is a privacy trade-off the paper's
        Section 6.1 acknowledges by pointing at sketching techniques).
    """

    def __init__(self, label_counts: np.ndarray):
        label_counts = np.asarray(label_counts, dtype=np.float64)
        if label_counts.ndim != 2:
            raise ValueError(
                f"label_counts must be (parties, classes), got {label_counts.shape}"
            )
        if (label_counts < 0).any():
            raise ValueError("label counts must be non-negative")
        if label_counts.sum() == 0:
            raise ValueError("label counts are all zero")
        self.label_counts = label_counts
        self._global = label_counts.sum(axis=0)
        self._global = self._global / self._global.sum()

    @property
    def num_parties(self) -> int:
        return self.label_counts.shape[0]

    def _kl_to_global(self, pooled: np.ndarray) -> float:
        eps = 1e-12
        p = self._global + eps
        q = pooled / max(pooled.sum(), eps) + eps
        return float(np.sum(p * np.log(p / q)))

    def sample(self, fraction: float, rng: np.random.Generator) -> np.ndarray:
        """Select parties whose pooled labels approximate the global mix.

        Greedy: start from a random seed party, then repeatedly add the
        party that most reduces KL(global || pooled-sample).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return np.arange(self.num_parties)
        count = max(1, int(round(fraction * self.num_parties)))
        chosen: list[int] = [int(rng.integers(self.num_parties))]
        pooled = self.label_counts[chosen[0]].copy()
        remaining = set(range(self.num_parties)) - set(chosen)
        while len(chosen) < count:
            best_party = None
            best_kl = np.inf
            # Iterate a sorted sequence, not the raw set: KL ties then
            # break toward the lowest party index on every platform,
            # instead of following hash order.
            for party in sorted(remaining):
                kl = self._kl_to_global(pooled + self.label_counts[party])
                if kl < best_kl:
                    best_kl = kl
                    best_party = party
            chosen.append(best_party)
            pooled += self.label_counts[best_party]
            remaining.discard(best_party)
        return np.sort(np.array(chosen))
