"""The federation orchestrator: the "Server executes" loop of Algorithm 1.

Round structure:

1. sample a set of parties ``S_t``;
2. encode the broadcast (global model + algorithm extras) through the
   run's :class:`~repro.comm.CommChannel` — the codec's decoded output is
   what parties train from, and its measured payload bytes are what the
   round record charges for the downlink;
3. run each party's local training through the configured
   :class:`~repro.federated.executor.ClientExecutor` (serially on the
   workspace model, or fan-out across a worker pool — bitwise-identical
   either way), which also runs every upload through the channel's
   uplink codec and meters it;
4. commit each result's persistent per-party state, in participant order;
5. aggregate the results into the next global model (the algorithm's
   :meth:`aggregate`);
6. periodically evaluate top-1 accuracy on the held-out test set.

Fault-tolerant rounds
---------------------
When the config enables a :class:`~repro.federated.faults.FaultModel`,
the sampled set is thinned before dispatch (dropouts; stragglers whose
slowdown exceeds the round ``deadline``) and again after execution
(injected crashes).  The round aggregates whatever subset survives —
with over-sampling keeping *expected completed* participation at the
configured fraction — and the :class:`RoundRecord` carries the sampled
set, the dropped parties with reasons, per-party slowdowns and the
executor's recovery path.  A round every party fails leaves the global
model unchanged (there is nothing to aggregate) and records a NaN
training loss.

Long runs checkpoint with :meth:`FederatedServer.save_checkpoint` and
continue with :meth:`FederatedServer.resume`; a resumed run reproduces
the uninterrupted run's history bitwise (see DESIGN.md for the format).

The server owns a single workspace model instance; serial party training
reloads weights into it instead of rebuilding, so CPU runs stay cheap.
Parallel workers fork their own long-lived replicas of it.
"""

from __future__ import annotations

import copy
import os
import pickle
from typing import Callable

import numpy as np

from repro.comm import CommChannel
from repro.grad.nn.module import Module
from repro.federated.algorithms.base import FedAlgorithm
from repro.federated.client import Client
from repro.federated.config import FederatedConfig
from repro.federated.evaluation import evaluate as evaluate_model
from repro.federated.executor import ClientExecutor, make_executor
from repro.federated.faults import NO_FAULT, FaultModel
from repro.federated.history import History, RoundRecord
from repro.federated.sampling import StratifiedSampler, sample_parties

#: version tag written into checkpoints; bumped on layout changes
CHECKPOINT_FORMAT = 1


class FederatedServer:
    """Run a federated algorithm over a fixed set of clients.

    Parameters
    ----------
    model:
        Workspace model; its initial weights are round 0's global model.
    algorithm:
        A :class:`FedAlgorithm` (FedAvg, FedProx, Scaffold, FedNova, ...).
    clients:
        The parties (see :func:`repro.federated.client.make_clients`).
    config:
        Run hyper-parameters.
    test_dataset:
        Held-out data for the paper's top-1 accuracy metric (optional —
        without it the history records losses only).
    round_callback:
        Optional hook ``(round_index, server) -> None`` called after each
        round; useful for custom logging or early stopping in examples.
    executor:
        Client-execution backend.  Defaults to whatever ``config`` asks
        for (``config.executor`` / ``config.num_workers``); pass an
        instance to share a pool across servers or to inject a custom
        backend.  Call :meth:`close` (or use the server as a context
        manager) to release pooled workers.
    channel:
        Communication channel applying the run's update-compression
        codec and measuring payload bytes (see :mod:`repro.comm`).
        Defaults to whatever ``config`` asks for (``config.codec`` and
        friends); pass an instance to inject a custom codec.
    """

    def __init__(
        self,
        model: Module,
        algorithm: FedAlgorithm,
        clients: list[Client],
        config: FederatedConfig,
        test_dataset=None,
        round_callback: Callable[[int, "FederatedServer"], None] | None = None,
        executor: ClientExecutor | None = None,
        channel: CommChannel | None = None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.model = model
        self.algorithm = algorithm
        self.clients = clients
        self.config = config
        self.test_dataset = test_dataset
        self.round_callback = round_callback
        self.global_state = model.state_dict()
        self.history = History()
        self._sampler_rng = np.random.default_rng(config.seed)
        self.fault_model = FaultModel.from_config(config)
        self._stratified: StratifiedSampler | None = None
        if config.sampler == "stratified":
            # Empty parties (legitimate under low-beta Dirichlet skew)
            # contribute zero counts; labels.max() on an empty array
            # would raise, so the class range comes from non-empty ones.
            label_maxima = [
                int(client.dataset.labels.max())
                for client in clients
                if len(client.dataset) > 0
            ]
            if not label_maxima:
                raise ValueError(
                    "stratified sampling needs at least one non-empty client"
                )
            num_classes = 1 + max(label_maxima)
            counts = np.stack(
                [client.dataset.class_counts(num_classes) for client in clients]
            )
            self._stratified = StratifiedSampler(counts)
        algorithm.prepare(model, clients, config)
        self.channel = channel if channel is not None else CommChannel.from_config(config)
        self._comm_keys = sorted(self.global_state)
        # The executor binds after prepare() so forked workers inherit the
        # algorithm's cached key structure with the rest of the snapshot.
        self.executor = executor if executor is not None else make_executor(config)
        self.executor.setup(model, algorithm, clients, config, channel=self.channel)

    @property
    def num_parties(self) -> int:
        return len(self.clients)

    def _sample_round(self) -> list[int]:
        """Draw this round's parties, over-sampling under active faults.

        With a fault model expected to lose a fraction ``d`` of sampled
        parties, sampling ``m / (1 - d)`` instead of ``m`` keeps the
        expected *completed* count at the configured participation.
        """
        fraction = self.config.sample_fraction
        if (
            self.fault_model is not None
            and self.config.over_sample
            and fraction < 1.0
        ):
            drop = self.fault_model.expected_drop_rate(self.config.deadline)
            if drop > 0.0:
                fraction = min(1.0, fraction / (1.0 - drop))
        if self._stratified is not None:
            sampled = self._stratified.sample(fraction, self._sampler_rng)
        else:
            sampled = sample_parties(
                self.num_parties, fraction, self._sampler_rng
            )
        return [int(p) for p in sampled]

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round and return its record."""
        sampled = self._sample_round()
        # Consult the fault model: dropouts and deadline-missing
        # stragglers never dispatch; crashes and surviving stragglers do.
        deadline = self.config.deadline
        faults = (
            self.fault_model.round_faults(round_index, sampled)
            if self.fault_model is not None
            else {}
        )
        participants: list[int] = []
        dispatch_faults = {}
        dropped: list[int] = []
        drop_reasons: list[str] = []
        for party in sampled:
            fault = faults.get(party, NO_FAULT)
            if fault.dropped:
                dropped.append(party)
                drop_reasons.append("dropout")
                continue
            if deadline is not None and fault.slowdown > deadline:
                dropped.append(party)
                drop_reasons.append("deadline")
                continue
            participants.append(party)
            if not fault.ok:
                dispatch_faults[party] = fault
        # Downlink: encode the broadcast through the comm channel; what
        # clients train from is what they would decode off the wire, and
        # the per-client byte cost is measured from the encoded payloads.
        extras = self.algorithm.broadcast_payload()
        broadcast_state, extras, down_per_client = self.channel.broadcast(
            self.global_state, extras, self._comm_keys
        )
        execution = self.executor.execute_round(
            broadcast_state, participants, extras,
            faults=dispatch_faults or None,
        )
        for party in participants:
            if party in execution.failed:
                dropped.append(party)
                drop_reasons.append(execution.failed[party])
        completed = execution.completed
        results = execution.results
        # Commit persistent per-party state (SCAFFOLD c_i, local BN) in
        # participant order, then aggregate over the same ordering — the
        # two invariants that keep parallel runs bitwise-equal to serial.
        for party, result in zip(completed, results):
            self.algorithm.commit(self.clients[party], result)
        if results:
            self.global_state = self.algorithm.aggregate(
                self.global_state, results, self.config
            )

        accuracy = None
        if self.test_dataset is not None and (
            (round_index + 1) % self.config.eval_every == 0
        ):
            accuracy = self.evaluate()
        # The server pushed the broadcast to every sampled party, so the
        # downlink is charged for all of them; only completers upload.
        bytes_down = down_per_client * len(sampled)
        client_bytes_up = [r.upload_nbytes for r in results]
        bytes_up = sum(client_bytes_up)
        record = RoundRecord(
            round_index=round_index,
            test_accuracy=accuracy,
            train_loss=(
                float(np.mean([r.mean_loss for r in results]))
                if results
                else float("nan")
            ),
            participants=completed,
            bytes_communicated=bytes_down + bytes_up,
            client_steps=[r.num_steps for r in results],
            bytes_down=bytes_down,
            bytes_up=bytes_up,
            client_bytes_up=client_bytes_up,
            sampled=sampled,
            dropped=dropped,
            drop_reasons=drop_reasons,
            slowdowns=(
                [faults.get(p, NO_FAULT).slowdown for p in completed]
                if faults
                else []
            ),
            fallback=execution.fallback,
        )
        self.history.append(record)
        if self.round_callback is not None:
            self.round_callback(round_index, self)
        return record

    def fit(self, num_rounds: int | None = None) -> History:
        """Run ``num_rounds`` rounds (defaults to the config's).

        With ``config.checkpoint_every > 0`` a full run checkpoint is
        written to ``config.checkpoint_path`` every k completed rounds.
        """
        rounds = num_rounds if num_rounds is not None else self.config.num_rounds
        start = len(self.history)
        every = self.config.checkpoint_every
        for round_index in range(start, start + rounds):
            self.run_round(round_index)
            if every > 0 and len(self.history) % every == 0:
                self.save_checkpoint(self.config.checkpoint_path)
        return self.history

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str) -> None:
        """Serialize everything a bitwise-identical resume needs.

        The checkpoint carries the global model state, every client's
        generator state and persistent per-party state (SCAFFOLD ``c_i``,
        retained BN entries, codec error-feedback residuals), server-side
        algorithm state (SCAFFOLD ``c``, FedOpt moments), the sampler
        generator, the comm channel's downlink state, and the full round
        history.  Written atomically (temp file + rename) so an
        interrupted save never leaves a truncated checkpoint behind.
        """
        payload = {
            "format": CHECKPOINT_FORMAT,
            "algorithm": self.algorithm.name,
            "num_parties": self.num_parties,
            "rounds_completed": len(self.history),
            "global_state": {
                key: np.asarray(value).copy()
                for key, value in self.global_state.items()
            },
            "clients": [
                {
                    "rng": client.rng.bit_generator.state,
                    "state": copy.deepcopy(client.state),
                }
                for client in self.clients
            ],
            "algorithm_state": self.algorithm.checkpoint_state(),
            "sampler_rng": self._sampler_rng.bit_generator.state,
            "channel": self.channel.checkpoint_state(),
            "history": self.history.to_dict(),
        }
        tmp = f"{path}.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def resume(self, path: str) -> "FederatedServer":
        """Load a checkpoint into this (freshly constructed) server.

        The server must have been built with the same model architecture,
        algorithm, clients and config as the run that wrote the
        checkpoint; ``fit()`` then continues from the next round and
        reproduces the uninterrupted run's records bitwise.
        """
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise ValueError(
                f"unsupported checkpoint format {payload.get('format')!r} "
                f"(this build reads format {CHECKPOINT_FORMAT})"
            )
        if payload["algorithm"] != self.algorithm.name:
            raise ValueError(
                f"checkpoint was written by algorithm {payload['algorithm']!r}, "
                f"this server runs {self.algorithm.name!r}"
            )
        if payload["num_parties"] != self.num_parties:
            raise ValueError(
                f"checkpoint federation has {payload['num_parties']} parties, "
                f"this server has {self.num_parties}"
            )
        checkpoint_keys = sorted(payload["global_state"])
        if checkpoint_keys != self._comm_keys:
            raise ValueError(
                "checkpoint model state keys do not match this server's model"
            )
        self.global_state = payload["global_state"]
        for client, snapshot in zip(self.clients, payload["clients"]):
            client.rng.bit_generator.state = snapshot["rng"]
            client.state = snapshot["state"]
        algorithm_state = payload["algorithm_state"]
        if algorithm_state:
            self.algorithm.restore_state(algorithm_state)
        self._sampler_rng.bit_generator.state = payload["sampler_rng"]
        self.channel.restore_state(payload["channel"])
        self.history = History.from_dict(payload["history"])
        return self

    def evaluate(self, dataset=None) -> float:
        """Top-1 accuracy of the current global model."""
        target = dataset if dataset is not None else self.test_dataset
        if target is None:
            raise ValueError("no test dataset provided")
        self.model.load_state_dict(self.global_state)
        result = evaluate_model(
            self.model,
            target,
            self.config.eval_batch_size,
            compiled=self.config.compile,
            optimize=self.config.optimize,
        )
        return result.accuracy

    def close(self) -> None:
        """Release the executor's resources (worker pools); idempotent."""
        self.executor.close()

    def __enter__(self) -> "FederatedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
