"""The federation orchestrator: the "Server executes" loop of Algorithm 1.

Round structure:

1. sample a set of parties ``S_t``;
2. encode the broadcast (global model + algorithm extras) through the
   run's :class:`~repro.comm.CommChannel` — the codec's decoded output is
   what parties train from, and its measured payload bytes are what the
   round record charges for the downlink;
3. run each party's local training through the configured
   :class:`~repro.federated.executor.ClientExecutor` (serially on the
   workspace model, or fan-out across a worker pool — bitwise-identical
   either way), which also runs every upload through the channel's
   uplink codec and meters it;
4. commit each result's persistent per-party state, in participant order;
5. aggregate the results into the next global model (the algorithm's
   :meth:`aggregate`);
6. periodically evaluate top-1 accuracy on the held-out test set.

The server owns a single workspace model instance; serial party training
reloads weights into it instead of rebuilding, so CPU runs stay cheap.
Parallel workers fork their own long-lived replicas of it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.comm import CommChannel
from repro.grad.nn.module import Module
from repro.federated.algorithms.base import FedAlgorithm
from repro.federated.client import Client
from repro.federated.config import FederatedConfig
from repro.federated.evaluation import evaluate_accuracy
from repro.federated.executor import ClientExecutor, make_executor
from repro.federated.history import History, RoundRecord
from repro.federated.sampling import StratifiedSampler, sample_parties


class FederatedServer:
    """Run a federated algorithm over a fixed set of clients.

    Parameters
    ----------
    model:
        Workspace model; its initial weights are round 0's global model.
    algorithm:
        A :class:`FedAlgorithm` (FedAvg, FedProx, Scaffold, FedNova, ...).
    clients:
        The parties (see :func:`repro.federated.client.make_clients`).
    config:
        Run hyper-parameters.
    test_dataset:
        Held-out data for the paper's top-1 accuracy metric (optional —
        without it the history records losses only).
    round_callback:
        Optional hook ``(round_index, server) -> None`` called after each
        round; useful for custom logging or early stopping in examples.
    executor:
        Client-execution backend.  Defaults to whatever ``config`` asks
        for (``config.executor`` / ``config.num_workers``); pass an
        instance to share a pool across servers or to inject a custom
        backend.  Call :meth:`close` (or use the server as a context
        manager) to release pooled workers.
    channel:
        Communication channel applying the run's update-compression
        codec and measuring payload bytes (see :mod:`repro.comm`).
        Defaults to whatever ``config`` asks for (``config.codec`` and
        friends); pass an instance to inject a custom codec.
    """

    def __init__(
        self,
        model: Module,
        algorithm: FedAlgorithm,
        clients: list[Client],
        config: FederatedConfig,
        test_dataset=None,
        round_callback: Callable[[int, "FederatedServer"], None] | None = None,
        executor: ClientExecutor | None = None,
        channel: CommChannel | None = None,
    ):
        if not clients:
            raise ValueError("need at least one client")
        self.model = model
        self.algorithm = algorithm
        self.clients = clients
        self.config = config
        self.test_dataset = test_dataset
        self.round_callback = round_callback
        self.global_state = model.state_dict()
        self.history = History()
        self._sampler_rng = np.random.default_rng(config.seed)
        self._stratified: StratifiedSampler | None = None
        if config.sampler == "stratified":
            num_classes = 1 + max(
                int(client.dataset.labels.max()) for client in clients
            )
            counts = np.stack(
                [client.dataset.class_counts(num_classes) for client in clients]
            )
            self._stratified = StratifiedSampler(counts)
        algorithm.prepare(model, clients, config)
        self.channel = channel if channel is not None else CommChannel.from_config(config)
        self._comm_keys = sorted(self.global_state)
        # The executor binds after prepare() so forked workers inherit the
        # algorithm's cached key structure with the rest of the snapshot.
        self.executor = executor if executor is not None else make_executor(config)
        self.executor.setup(model, algorithm, clients, config, channel=self.channel)

    @property
    def num_parties(self) -> int:
        return len(self.clients)

    def run_round(self, round_index: int) -> RoundRecord:
        """Execute one communication round and return its record."""
        if self._stratified is not None:
            participants = self._stratified.sample(
                self.config.sample_fraction, self._sampler_rng
            )
        else:
            participants = sample_parties(
                self.num_parties, self.config.sample_fraction, self._sampler_rng
            )
        participants = [int(p) for p in participants]
        # Downlink: encode the broadcast through the comm channel; what
        # clients train from is what they would decode off the wire, and
        # the per-client byte cost is measured from the encoded payloads.
        extras = self.algorithm.broadcast_payload()
        broadcast_state, extras, down_per_client = self.channel.broadcast(
            self.global_state, extras, self._comm_keys
        )
        results = self.executor.run_round(broadcast_state, participants, extras)
        # Commit persistent per-party state (SCAFFOLD c_i, local BN) in
        # participant order, then aggregate over the same ordering — the
        # two invariants that keep parallel runs bitwise-equal to serial.
        for party, result in zip(participants, results):
            self.algorithm.commit(self.clients[party], result)
        self.global_state = self.algorithm.aggregate(
            self.global_state, results, self.config
        )

        accuracy = None
        if self.test_dataset is not None and (
            (round_index + 1) % self.config.eval_every == 0
        ):
            accuracy = self.evaluate()
        bytes_down = down_per_client * len(participants)
        bytes_up = sum(r.upload_nbytes for r in results)
        record = RoundRecord(
            round_index=round_index,
            test_accuracy=accuracy,
            train_loss=float(np.mean([r.mean_loss for r in results])),
            participants=participants,
            bytes_communicated=bytes_down + bytes_up,
            client_steps=[r.num_steps for r in results],
            bytes_down=bytes_down,
            bytes_up=bytes_up,
        )
        self.history.append(record)
        if self.round_callback is not None:
            self.round_callback(round_index, self)
        return record

    def fit(self, num_rounds: int | None = None) -> History:
        """Run ``num_rounds`` rounds (defaults to the config's)."""
        rounds = num_rounds if num_rounds is not None else self.config.num_rounds
        start = len(self.history)
        for round_index in range(start, start + rounds):
            self.run_round(round_index)
        return self.history

    def evaluate(self, dataset=None) -> float:
        """Top-1 accuracy of the current global model."""
        target = dataset if dataset is not None else self.test_dataset
        if target is None:
            raise ValueError("no test dataset provided")
        self.model.load_state_dict(self.global_state)
        return evaluate_accuracy(self.model, target, self.config.eval_batch_size)

    def close(self) -> None:
        """Release the executor's resources (worker pools); idempotent."""
        self.executor.close()

    def __enter__(self) -> "FederatedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
