"""State-dict arithmetic for server aggregation.

State dicts mix trainable parameters and buffers (batch-norm running
statistics, batch counters).  Which keys get averaged and which stay local
is exactly the design choice the paper's Finding 7 and Section 6.2 discuss,
so the split is explicit here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grad.nn.module import Module


def parameter_keys(model: Module) -> list[str]:
    """Names of trainable parameters, in traversal order."""
    return [name for name, _ in model.named_parameters()]


def buffer_keys(model: Module) -> list[str]:
    """Names of non-trained buffers (BN statistics and counters)."""
    return [name for name, _ in model.named_buffers()]


def batch_norm_keys(model: Module) -> list[str]:
    """All state-dict keys belonging to batch-norm layers.

    Includes both the learned affine parameters (gamma/beta) and the
    running statistics — the set that FedBN-style aggregation keeps local.
    """
    from repro.grad.nn.layers import _BatchNorm

    keys: list[str] = []
    for module_name, module in model.named_modules():
        if isinstance(module, _BatchNorm):
            prefix = f"{module_name}." if module_name else ""
            keys.extend(f"{prefix}{name}" for name in module._parameters)
            keys.extend(f"{prefix}{name}" for name in module._buffers)
    return keys


def weighted_average_states(
    states: Sequence[dict[str, np.ndarray]],
    weights: Sequence[float],
    keys: Sequence[str] | None = None,
) -> dict[str, np.ndarray]:
    """Weighted average of state dicts over ``keys`` (all keys by default).

    Weights are normalized to sum to one.  Integer entries (e.g. BN's
    ``num_batches_tracked``) are averaged in float then cast back.
    """
    if not states:
        raise ValueError("need at least one state to average")
    if len(states) != len(weights):
        raise ValueError(f"{len(states)} states but {len(weights)} weights")
    weights = np.asarray(weights, dtype=np.float64)
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must not all be zero")
    weights = weights / total

    if keys is None:
        keys = list(states[0])
    out: dict[str, np.ndarray] = {}
    for key in keys:
        ref = np.asarray(states[0][key])
        accum = np.zeros(ref.shape, dtype=np.float64)
        for state, weight in zip(states, weights):
            accum += weight * np.asarray(state[key], dtype=np.float64)
        out[key] = accum.astype(ref.dtype)
    return out


def subtract_states(
    a: dict[str, np.ndarray],
    b: dict[str, np.ndarray],
    keys: Sequence[str],
) -> dict[str, np.ndarray]:
    """Per-key ``a - b`` over ``keys`` (used for model deltas)."""
    return {
        key: np.asarray(a[key], dtype=np.float64) - np.asarray(b[key], dtype=np.float64)
        for key in keys
    }


def apply_update(
    state: dict[str, np.ndarray],
    update: dict[str, np.ndarray],
    lr: float,
) -> dict[str, np.ndarray]:
    """Return ``state - lr * update`` over the update's keys (others copied)."""
    out = {key: np.asarray(value).copy() for key, value in state.items()}
    for key, delta in update.items():
        ref = np.asarray(state[key])
        out[key] = (ref.astype(np.float64) - lr * delta).astype(ref.dtype)
    return out


def merge_states(
    base: dict[str, np.ndarray],
    overlay: dict[str, np.ndarray],
    keys: Sequence[str],
) -> dict[str, np.ndarray]:
    """Copy of ``base`` with ``keys`` taken from ``overlay``."""
    out = {key: np.asarray(value).copy() for key, value in base.items()}
    for key in keys:
        out[key] = np.asarray(overlay[key]).copy()
    return out
