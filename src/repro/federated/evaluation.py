"""Global-model evaluation: the paper's top-1 test accuracy metric.

:func:`evaluate` is the fused fast path: one forward pass per batch
yields *both* accuracy and mean cross-entropy (the server previously paid
two full passes per round for them), optionally replayed through a
captured inference program (see :mod:`repro.grad.capture`).  The
historical :func:`evaluate_accuracy` / :func:`evaluate_loss` entry points
are thin wrappers over it and return bitwise-identical values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import DataLoader
from repro.grad.capture import inference_engine
from repro.grad.nn.module import Module
from repro.grad.tensor import Tensor, no_grad


@dataclass
class EvalResult:
    """Accuracy and mean loss from a single pass over a dataset."""

    accuracy: float
    loss: float
    num_samples: int


def _cross_entropy_sum(logits: np.ndarray, targets: np.ndarray) -> float:
    # Mirrors F.cross_entropy(..., reduction="sum") on the same logits
    # bit for bit, so the fused path reproduces evaluate_loss exactly.
    rows = np.arange(logits.shape[0])
    shifted = logits - logits.max(axis=1, keepdims=True)
    sumexp = np.exp(shifted).sum(axis=1, keepdims=True)
    losses = np.log(sumexp[:, 0]) - shifted[rows, targets]
    return float(losses.sum())


def _evaluate_inner(
    model: Module, dataset, batch_size: int, compiled: bool, optimize: bool = True
) -> EvalResult:
    """Single-pass accuracy+loss; assumes eval mode is already set."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    engine = inference_engine(model, optimize=optimize) if compiled else None
    correct = 0
    total = 0.0
    with no_grad():
        for features, labels in DataLoader(dataset, batch_size):
            logits = engine.forward(features) if engine is not None else None
            if logits is None:
                logits = model(Tensor(features)).data
            correct += int((logits.argmax(axis=1) == labels).sum())
            total += _cross_entropy_sum(logits, labels)
    n = len(dataset)
    return EvalResult(accuracy=correct / n, loss=total / n, num_samples=n)


def evaluate(
    model: Module,
    dataset,
    batch_size: int = 256,
    compiled: bool = False,
    optimize: bool = True,
) -> EvalResult:
    """Accuracy and mean cross-entropy from one forward pass per batch.

    With ``compiled=True`` the forward is replayed through the model's
    cached inference program (captured on first use and reused across
    rounds); odd-shaped final batches transparently run eagerly.
    ``optimize=False`` replays the unoptimized program (same bits).
    """
    was_training = model.training
    model.eval()
    try:
        return _evaluate_inner(model, dataset, batch_size, compiled, optimize)
    finally:
        if was_training:
            model.train()


def evaluate_accuracy(model: Module, dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode, no grad)."""
    return evaluate(model, dataset, batch_size).accuracy


def evaluate_per_party(
    model: Module, clients, batch_size: int = 256, compiled: bool = False
) -> "np.ndarray":
    """Accuracy of one (global) model on every party's local data.

    The spread of these values is the silo-level fairness view: under
    label skew a global model can be accurate overall yet fail the
    specialized parties — useful context for the paper's Section 6
    discussion even though Table 3 reports only the global test accuracy.

    The eval-mode toggle is hoisted out of the per-party loop, and with
    ``compiled=True`` all parties share the model's one cached inference
    program (full-size batches replay; ragged tails run eagerly).
    """
    was_training = model.training
    model.eval()
    try:
        accuracies = [
            _evaluate_inner(model, client.dataset, batch_size, compiled).accuracy
            for client in clients
        ]
    finally:
        if was_training:
            model.train()
    return np.array(accuracies)


def evaluate_loss(model: Module, dataset, batch_size: int = 256) -> float:
    """Mean cross-entropy of ``model`` on ``dataset``."""
    return evaluate(model, dataset, batch_size).loss
