"""Global-model evaluation: the paper's top-1 test accuracy metric."""

from __future__ import annotations

import numpy as np

from repro.data.loader import DataLoader
from repro.grad.nn.module import Module
from repro.grad.tensor import Tensor, no_grad


def evaluate_accuracy(model: Module, dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode, no grad)."""
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    correct = 0
    with no_grad():
        for features, labels in DataLoader(dataset, batch_size):
            predictions = model(Tensor(features)).argmax(axis=1)
            correct += int((predictions == labels).sum())
    if was_training:
        model.train()
    return correct / len(dataset)


def evaluate_per_party(
    model: Module, clients, batch_size: int = 256
) -> "np.ndarray":
    """Accuracy of one (global) model on every party's local data.

    The spread of these values is the silo-level fairness view: under
    label skew a global model can be accurate overall yet fail the
    specialized parties — useful context for the paper's Section 6
    discussion even though Table 3 reports only the global test accuracy.
    """
    return np.array(
        [evaluate_accuracy(model, client.dataset, batch_size) for client in clients]
    )


def evaluate_loss(model: Module, dataset, batch_size: int = 256) -> float:
    """Mean cross-entropy of ``model`` on ``dataset``."""
    from repro.grad import functional as F

    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    was_training = model.training
    model.eval()
    total = 0.0
    with no_grad():
        for features, labels in DataLoader(dataset, batch_size):
            loss = F.cross_entropy(model(Tensor(features)), labels, reduction="sum")
            total += loss.item()
    if was_training:
        model.train()
    return total / len(dataset)
