"""Federated learning core: the four algorithms the paper evaluates.

- :class:`FedAvg` — weighted model averaging (McMahan et al.).
- :class:`FedProx` — FedAvg + proximal term in the local objective.
- :class:`Scaffold` — control variates correcting client drift.
- :class:`FedNova` — normalized averaging of heterogeneous local updates.
- :class:`FedOpt` — extension: server-side optimizer (momentum/Adam), cited
  by the paper as related work.

Orchestration lives in :class:`FederatedServer`; per-party state (local
datasets, SCAFFOLD control variates, retained BN statistics) lives in
:class:`Client`.
"""

from repro.federated.config import FederatedConfig
from repro.federated.client import Client, heterogeneous_epochs, make_clients
from repro.federated.history import History, RoundRecord
from repro.federated.server import FederatedServer
from repro.federated.algorithms import (
    ALGORITHM_NAMES,
    FedAlgorithm,
    FedAvg,
    FedNova,
    FedOpt,
    FedProx,
    Scaffold,
    make_algorithm,
)
from repro.federated.evaluation import (
    EvalResult,
    evaluate,
    evaluate_accuracy,
    evaluate_loss,
    evaluate_per_party,
)
from repro.federated.executor import (
    ClientExecutor,
    ParallelExecutor,
    RoundExecution,
    SerialExecutor,
    StackedDriftError,
    StackedExecutor,
    make_executor,
)
from repro.federated.faults import FaultModel, InjectedCrash, PartyFault
from repro.federated.population import (
    ClientPopulation,
    ClientView,
    MaterializedPopulation,
    VirtualPopulation,
)
from repro.federated.async_engine import AsyncFederation
from repro.federated.privacy import DifferentialPrivacy, approximate_epsilon
from repro.federated.systems import SystemModel
from repro.federated.sampling import StratifiedSampler, sample_clients, sample_parties

__all__ = [
    "FederatedConfig",
    "Client",
    "make_clients",
    "heterogeneous_epochs",
    "FederatedServer",
    "History",
    "RoundRecord",
    "FedAlgorithm",
    "FedAvg",
    "FedProx",
    "Scaffold",
    "FedNova",
    "FedOpt",
    "make_algorithm",
    "ALGORITHM_NAMES",
    "EvalResult",
    "evaluate",
    "evaluate_accuracy",
    "evaluate_loss",
    "evaluate_per_party",
    "ClientExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "StackedExecutor",
    "StackedDriftError",
    "RoundExecution",
    "make_executor",
    "FaultModel",
    "PartyFault",
    "InjectedCrash",
    "DifferentialPrivacy",
    "approximate_epsilon",
    "SystemModel",
    "StratifiedSampler",
    "sample_parties",
    "sample_clients",
    "ClientPopulation",
    "ClientView",
    "MaterializedPopulation",
    "VirtualPopulation",
    "AsyncFederation",
]
