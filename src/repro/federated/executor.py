"""Pluggable client-execution backends for the federated round loop.

The per-round unit of work — "run one party's local training against the
current global model" — is embarrassingly parallel, and FL simulators built
for this workload (FedJAX, FedML's distributed-computing layer) all treat
it that way.  This module provides two interchangeable backends:

- :class:`SerialExecutor` — the classic single-process loop (default);
- :class:`ParallelExecutor` — a fork-based ``multiprocessing`` pool with
  one long-lived model replica per worker.

Both rely on the algorithm purity contract (see
:meth:`repro.federated.algorithms.base.FedAlgorithm.local_update`): a
client round is a pure function of ``(global_state, client payload,
config)`` that may use its ``model`` argument only as scratch workspace
and must report persistent per-party state changes in
``ClientResult.client_state`` instead of mutating anything shared.

Determinism
-----------
Results are **bitwise identical regardless of worker count**:

- each party owns a private ``numpy`` generator; the worker receives its
  current state with the task and returns the advanced state with the
  result, so shuffling sequences match the serial schedule exactly;
- the global state is shipped as a flat ``float32`` vector (the
  :mod:`repro.grad.serialize` transport dtype) and unflattened against the
  worker replica — a lossless round-trip for ``float32`` model states;
- the server consumes results in *participant order* (submission order),
  never completion order, so aggregation sees the same sequence the
  serial loop produces.

Fault tolerance
---------------
:meth:`ClientExecutor.execute_round` is the hardened entry point the
server drives.  Its contract:

- **transactional commit** — client generator states advance only after
  *every* dispatched task resolved (success or definitive failure); an
  exception mid-round leaves all clients exactly as they were, so the
  round can be retried or abandoned without corrupting RNG schedules;
- **bounded retry** — a task raising an unexpected exception is retried
  up to ``config.max_retries`` times from the same pre-task snapshot,
  so a *transient* fault recovers bitwise-identically to a fault-free
  run;
- **serial re-execution fallback** — the parallel backend re-runs a
  task that keeps failing in the pool directly in the parent process
  (covering worker death and transport corruption) before giving up
  loudly;
- **injected crashes** (:class:`~repro.federated.faults.InjectedCrash`)
  are deterministic by construction and are *not* retried: the party is
  reported failed and its partial work — including its advanced
  generator state — is discarded.

Workers are forked lazily on the first round, after
:meth:`FedAlgorithm.prepare`, so the replicas inherit the datasets and
cached key structure by copy-on-write instead of pickling them.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.comm.channel import RESIDUAL_KEY, CommChannel
from repro.federated.faults import InjectedCrash, PartyFault
from repro.federated.trainer import (
    LocalTrainingResult,
    local_training_hook,
    run_local_training,
)
from repro.grad.capture import stacked_engine
from repro.grad.optim import StackedSGD
from repro.grad.serialize import state_dict_to_vector, vector_to_state_dict

if TYPE_CHECKING:
    from repro.grad.nn.module import Module
    from repro.federated.algorithms.base import ClientResult, FedAlgorithm
    from repro.federated.client import Client
    from repro.federated.config import FederatedConfig


def fork_available() -> bool:
    """Whether this platform supports fork-based worker pools."""
    return "fork" in multiprocessing.get_all_start_methods()


def _effective_cpu_count() -> int:
    """CPUs the pool could actually use (monkeypatchable in tests)."""
    return os.cpu_count() or 1


def process_upload(channel, algorithm, result, client, reference, keys) -> None:
    """Run one result through the uplink side of the comm channel.

    Mutates ``result`` in place: its state and payload become what the
    server reconstructs after decoding, ``upload_nbytes`` records the
    measured wire size, and an error-feedback residual (if the codec
    keeps one) is added to ``result.client_state`` so the server commits
    it into ``client.state`` like any other persistent per-party state.
    Uses ``client.rng`` for stochastic codecs — its state already travels
    between server and workers, so serial and parallel runs draw the
    same bits.
    """
    residual = None
    if channel.codec.error_feedback:
        residual = client.state.get(RESIDUAL_KEY)
    state, extras, nbytes, new_residual = channel.encode_upload(
        result.state,
        result.payload,
        reference,
        keys,
        client.rng,
        residual=residual,
        metadata_floats=algorithm.uplink_metadata_floats(),
    )
    result.state = state
    result.payload = extras
    result.upload_nbytes = nbytes
    if new_residual is not None:
        result.client_state[RESIDUAL_KEY] = new_residual


@dataclass
class RoundExecution:
    """What one hardened round execution produced.

    ``results`` holds the completed parties' results in participant
    order; ``failed`` maps each party that did not finish to a short
    reason string (``"crash@step3"``); ``fallback`` names the recovery
    path taken when any task needed one (``"retry"`` or ``"serial"``),
    ``None`` for a clean round.
    """

    results: "list[ClientResult]" = field(default_factory=list)
    completed: list[int] = field(default_factory=list)
    failed: dict[int, str] = field(default_factory=dict)
    fallback: str | None = None


class ClientExecutor:
    """Interface: run the sampled parties' local rounds for one round."""

    def setup(
        self,
        model: "Module",
        algorithm: "FedAlgorithm",
        clients: "list[Client]",
        config: "FederatedConfig",
        channel: CommChannel | None = None,
    ) -> None:
        """Bind the run's shared objects; called once by the server.

        ``channel`` enables uplink codec processing + byte metering; when
        ``None`` (standalone executor use) results pass through raw.
        """
        self.model = model
        self.algorithm = algorithm
        self.clients = clients
        self.config = config
        self.channel = channel

    def run_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
    ) -> "list[ClientResult]":
        """Execute local training for ``participants``, in their order.

        ``payload`` is the (already channel-encoded) broadcast extras;
        when ``None`` the executor asks the algorithm directly, which is
        the uncompressed pre-channel behaviour.  Without injected faults
        every party completes (unexpected failures raise after retries),
        so this returns the bare result list.
        """
        return self.execute_round(global_state, participants, payload).results

    def execute_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
        faults: "Mapping[int, PartyFault] | None" = None,
    ) -> RoundExecution:
        """Fault-tolerant round execution (see the module docstring).

        ``faults`` carries injected per-party failures for this round;
        parties the fault model already dropped must not appear in
        ``participants`` at all.
        """
        raise NotImplementedError

    def _max_retries(self) -> int:
        config = getattr(self, "config", None)
        return config.max_retries if config is not None else 1

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(ClientExecutor):
    """Run parties one after another on the server's workspace model.

    ``note``, when set, is recorded as each round's ``fallback`` so the
    history shows *why* this run degraded to serial (e.g. ``"auto"``
    found a single-CPU host); ``None`` leaves clean rounds unmarked.
    """

    def __init__(self, note: str | None = None):
        self._note = note

    def execute_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
        faults: "Mapping[int, PartyFault] | None" = None,
    ) -> RoundExecution:
        if payload is None:
            payload = self.algorithm.broadcast_payload()
        channel = self.channel
        # The identity codec never transforms state, so the flat reference
        # vector (only needed by delta-mode codecs) is built lazily.
        keys: list[str] | None = None
        reference: np.ndarray | None = None
        execution = RoundExecution()
        max_retries = self._max_retries()
        # Advanced generator states stage here and commit only after the
        # whole round resolved — an irrecoverable failure on a later
        # party must leave every client untouched.
        staged_rng: dict[int, dict] = {}
        for party in participants:
            if channel is not None and keys is None and not channel.codec.lossless:
                keys = sorted(global_state)
                reference = state_dict_to_vector(global_state, keys=keys)
            result = self._resolve_party(
                party, global_state, payload, faults, reference, keys,
                execution, staged_rng, max_retries,
            )
            if result is not None:
                execution.results.append(result)
                execution.completed.append(party)
        for party, rng_state in staged_rng.items():
            self.clients[party].rng.bit_generator.state = rng_state
        if execution.fallback is None and self._note is not None:
            execution.fallback = self._note
        return execution

    def _resolve_party(
        self, party, global_state, payload, faults, reference, keys,
        execution, staged_rng, max_retries,
    ):
        """Run one party's task transactionally; the serial unit of work.

        Returns the :class:`ClientResult` (with the advanced generator
        state staged in ``staged_rng``, the live generator restored to
        its pre-task snapshot), or None when the party failed via an
        injected crash (recorded in ``execution.failed``).  Unexpected
        exceptions retry up to ``max_retries`` times and then propagate
        with nothing staged.
        """
        client = self.clients[party]
        fault = faults.get(party) if faults else None
        snapshot = client.rng.bit_generator.state
        attempts = 0
        while True:
            try:
                result = self._run_one(
                    client, global_state, payload, fault, reference, keys
                )
            except InjectedCrash as crash:
                # Deterministic by construction: no retry.  The party's
                # partial work (and generator draws) die with it.
                client.rng.bit_generator.state = snapshot
                execution.failed[party] = f"crash@step{crash.steps_completed}"
                return None
            except Exception:
                client.rng.bit_generator.state = snapshot
                attempts += 1
                if attempts > max_retries:
                    raise
                execution.fallback = "retry"
                continue
            staged_rng[party] = client.rng.bit_generator.state
            client.rng.bit_generator.state = snapshot
            return result

    def _run_one(self, client, global_state, payload, fault, reference, keys):
        """One party's task: fault arming, local update, uplink coding."""
        if fault is not None and fault.crash_after_steps is not None:
            client.crash_after_steps = fault.crash_after_steps
        try:
            result = self.algorithm.local_update(
                self.model, global_state, client, self.config, payload
            )
        finally:
            client.crash_after_steps = None
        if self.channel is not None:
            process_upload(
                self.channel, self.algorithm, result, client, reference, keys
            )
        return result

    def __repr__(self) -> str:
        if self._note is not None:
            return f"SerialExecutor(note={self._note!r})"
        return "SerialExecutor()"


# ----------------------------------------------------------------------
# Fork-side worker machinery
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything a worker inherits at fork time (copy-on-write)."""

    __slots__ = ("model", "algorithm", "clients", "config", "keys", "channel", "template")

    def __init__(self, model, algorithm, clients, config, keys, channel):
        self.model = model
        self.algorithm = algorithm
        self.clients = clients
        self.config = config
        self.keys = keys
        self.channel = channel
        self.template = None  # lazily cached state-dict template


#: Set in the parent immediately before the pool forks; each worker keeps
#: the inherited snapshot.  Only the mutable bits (rng state, per-party
#: state, the global model vector) travel with each task.
_FORK_STATE: _WorkerState | None = None


def _run_task(
    client_index, global_vec, rng_state, client_state, payload, crash_after=None
):
    """Worker entry: one party's local round against the shipped state."""
    state = _FORK_STATE
    if state is None:  # pragma: no cover - defensive; fork guarantees it
        raise RuntimeError("worker has no inherited federation state")
    if state.template is None:
        state.template = state.model.state_dict()
    client = state.clients[client_index]
    client.rng.bit_generator.state = rng_state
    client.state = client_state
    global_state = vector_to_state_dict(global_vec, state.template, keys=state.keys)
    # Workers are long-lived and client objects are reused across tasks,
    # so the injected-crash arming must not outlive this task.
    client.crash_after_steps = crash_after
    try:
        result = state.algorithm.local_update(
            state.model, global_state, client, state.config, payload
        )
    finally:
        client.crash_after_steps = None
    if state.channel is not None:
        # global_vec is exactly the flat broadcast reference delta-mode
        # codecs need; the uplink draws from client.rng, whose advanced
        # state returns to the parent with the result.
        process_upload(
            state.channel, state.algorithm, result, client, global_vec, state.keys
        )
    return result, client.rng.bit_generator.state


def _shutdown_pool(pool) -> None:
    """Tear a pool down, tolerating an already-broken or closed pool.

    After a worker crash the pool object can be in a half-dead state
    where ``terminate()``/``join()`` themselves raise; teardown must
    still complete (and stay idempotent) so ``close()`` after a failed
    round — or the GC finalizer after an explicit ``close()`` — never
    masks the original error with a shutdown error.
    """
    try:
        pool.terminate()
    except Exception:
        pass
    try:
        pool.join()
    except Exception:
        pass


class ParallelExecutor(ClientExecutor):
    """Train sampled parties concurrently in a fork-based process pool.

    Parameters
    ----------
    num_workers:
        Number of worker processes (>= 2; use :class:`SerialExecutor` for
        single-process execution).  Values above the number of sampled
        parties per round are harmless — excess workers idle.
    """

    def __init__(self, num_workers: int):
        if num_workers < 2:
            raise ValueError(
                f"ParallelExecutor needs num_workers >= 2, got {num_workers}; "
                "use SerialExecutor for single-process execution"
            )
        if not fork_available():
            raise RuntimeError(
                "ParallelExecutor requires the 'fork' start method (POSIX); "
                "use SerialExecutor on this platform"
            )
        self.num_workers = num_workers
        self._pool = None
        self._keys: list[str] | None = None
        self._finalizer = None

    def _ensure_pool(self, global_state: dict[str, np.ndarray]) -> None:
        if self._pool is not None:
            return
        global _FORK_STATE
        self._keys = sorted(global_state)
        _FORK_STATE = _WorkerState(
            self.model, self.algorithm, self.clients, self.config, self._keys,
            self.channel,
        )
        try:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.num_workers)
        finally:
            _FORK_STATE = None
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    def execute_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
        faults: "Mapping[int, PartyFault] | None" = None,
    ) -> RoundExecution:
        self._ensure_pool(global_state)
        if payload is None:
            payload = self.algorithm.broadcast_payload()
        global_vec = state_dict_to_vector(global_state, keys=self._keys)
        faults = faults or {}
        max_retries = self._max_retries()

        def submit(party):
            client = self.clients[party]
            fault = faults.get(party)
            crash_after = fault.crash_after_steps if fault is not None else None
            return self._pool.apply_async(
                _run_task,
                (
                    party,
                    global_vec,
                    client.rng.bit_generator.state,
                    client.state,
                    payload,
                    crash_after,
                ),
            )

        pending = [(party, submit(party)) for party in participants]
        execution = RoundExecution()
        # Parent client generators advance only in the commit phase below,
        # so an irrecoverable failure anywhere leaves them untouched.
        staged: dict[int, tuple] = {}
        # Collect in submission (= participant) order, not completion order,
        # so aggregation is independent of worker scheduling.
        for party, handle in pending:
            try:
                staged[party] = handle.get()
                continue
            except InjectedCrash as crash:
                # Deterministic injection: the party is lost this round.
                execution.failed[party] = f"crash@step{crash.steps_completed}"
                continue
            except Exception:
                pass
            if self._recover(
                party, global_state, global_vec, payload, faults,
                staged, execution, max_retries,
            ):
                continue
        for party in participants:
            if party in staged:
                result, rng_state = staged[party]
                self.clients[party].rng.bit_generator.state = rng_state
                execution.results.append(result)
                execution.completed.append(party)
        return execution

    def _recover(
        self, party, global_state, global_vec, payload, faults,
        staged, execution, max_retries,
    ) -> bool:
        """Retry a failed task through the pool, then serially in-parent.

        Returns True when the party resolved (result staged or marked
        failed); raises when every path is exhausted — with nothing
        committed, so the caller's clients are unchanged.
        """
        client = self.clients[party]
        fault = faults.get(party)
        for _ in range(max_retries):
            execution.fallback = "retry"
            handle = self._pool.apply_async(
                _run_task,
                (
                    party,
                    global_vec,
                    client.rng.bit_generator.state,
                    client.state,
                    payload,
                    fault.crash_after_steps if fault is not None else None,
                ),
            )
            try:
                staged[party] = handle.get()
                return True
            except InjectedCrash as crash:
                execution.failed[party] = f"crash@step{crash.steps_completed}"
                return True
            except Exception:
                continue
        # Serial re-execution in the parent: immune to worker death and
        # result-transport corruption.  The parent client's generator is
        # still at its pre-round state, so the task replays exactly.
        execution.fallback = "serial"
        snapshot = client.rng.bit_generator.state
        if fault is not None and fault.crash_after_steps is not None:
            client.crash_after_steps = fault.crash_after_steps
        try:
            result = self.algorithm.local_update(
                self.model, global_state, client, self.config, payload
            )
            if self.channel is not None:
                process_upload(
                    self.channel, self.algorithm, result, client,
                    global_vec, self._keys,
                )
            staged[party] = (result, client.rng.bit_generator.state)
            return True
        except InjectedCrash as crash:
            execution.failed[party] = f"crash@step{crash.steps_completed}"
            return True
        finally:
            client.crash_after_steps = None
            client.rng.bit_generator.state = snapshot

    def close(self) -> None:
        # Detach state *before* running the finalizer: if shutdown is
        # interrupted (KeyboardInterrupt mid-terminate), a second close()
        # must be a no-op rather than double-shutting the pool.
        finalizer, self._finalizer, self._pool = self._finalizer, None, None
        if finalizer is not None:
            finalizer()

    def __repr__(self) -> str:
        return f"ParallelExecutor(num_workers={self.num_workers})"


class StackedDriftError(RuntimeError):
    """The stacked replay diverged from the serial reference run.

    Raised by :class:`StackedExecutor`'s automated drift check.  On hosts
    whose BLAS reassociates batched-GEMM reductions exactness is
    impossible; pass ``--stacked-tolerance`` (``stacked_tolerance`` in
    the config) to accept a bounded per-element deviation instead.
    """


class _StackCall:
    """One intercepted ``run_local_training`` call, frozen for replay."""

    __slots__ = ("state0", "proximal_mu", "anchor", "correction", "correction_mode")

    def __init__(self, state0, proximal_mu, anchor, correction, correction_mode):
        self.state0 = state0
        self.proximal_mu = proximal_mu
        self.anchor = anchor
        self.correction = correction
        self.correction_mode = correction_mode


class _StackDeferred(Exception):
    """Unwinds ``local_update`` at the training call during recording."""

    def __init__(self, call: _StackCall):
        super().__init__("local training deferred to the stacked program")
        self.call = call


class _StackRecord:
    """Per-party bookkeeping across the stacked phases."""

    __slots__ = ("party", "client", "call", "result", "post_rng")

    def __init__(self, party, client, call):
        self.party = party
        self.client = client
        self.call = call
        self.result: LocalTrainingResult | None = None
        self.post_rng = None


class StackedExecutor(SerialExecutor):
    """Batch K clients' local rounds into one fat compiled replay.

    The round's sampled parties are grouped into stacks of up to
    ``stack_size`` clients with identical work shape (same epoch count
    and sample count, batch-size-divisible data).  Each group trains
    through a single :class:`~repro.grad.capture.StackedStep` whose
    buffers carry a leading client axis, so every local SGD step of the
    whole group is a handful of large NumPy ops instead of K small
    Python loops.  Everything around the training loop — the algorithm's
    ``local_update`` body, uplink codecs, fault injection, retries — is
    the inherited serial machinery, driven via the trainer hook in two
    passes:

    1. **record**: ``local_update`` runs until it calls
       ``run_local_training``; the hook captures the loaded start state
       and optimizer arguments and unwinds;
    2. **replay**: after the batched training, ``local_update`` runs
       again and the hook hands it the precomputed result.

    Determinism: per-client generator draws (the per-epoch shuffles, any
    codec draws) happen in the exact serial order, and all stacked
    kernels are per-slice bitwise mirrors of the serial compiled step, so
    with ``tolerance == 0.0`` results are required to be bit-identical to
    :class:`SerialExecutor` — verified once per run by re-running the
    first stacked group serially (:class:`StackedDriftError` on
    violation).  Parties that do not fit the stacking contract (ragged
    batches, armed crash faults, non-SGD optimizer, DP noise, models the
    stacked compiler rejects) fall back to the serial path per party or
    per group.
    """

    def __init__(self, stack_size: int = 16, tolerance: float = 0.0):
        super().__init__()
        if stack_size < 2:
            raise ValueError(
                f"StackedExecutor needs stack_size >= 2, got {stack_size}; "
                "use SerialExecutor for single-client execution"
            )
        if tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {tolerance}")
        self.stack_size = stack_size
        self.tolerance = tolerance
        self._drift_checked = False

    def execute_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
        faults: "Mapping[int, PartyFault] | None" = None,
    ) -> RoundExecution:
        if payload is None:
            payload = self.algorithm.broadcast_payload()
        channel = self.channel
        keys: list[str] | None = None
        reference: np.ndarray | None = None
        if channel is not None and not channel.codec.lossless:
            keys = sorted(global_state)
            reference = state_dict_to_vector(global_state, keys=keys)
        execution = RoundExecution()
        max_retries = self._max_retries()
        staged_rng: dict[int, dict] = {}
        results: dict[int, object] = {}
        groups, serial_parties = self._plan(participants, faults)
        for group in groups:
            done = self._run_stack(
                group, global_state, payload, reference, keys,
                staged_rng, results,
            )
            if not done:
                if execution.fallback is None:
                    execution.fallback = "stacked:serial"
                serial_parties = serial_parties + group
        for party in serial_parties:
            result = self._resolve_party(
                party, global_state, payload, faults, reference, keys,
                execution, staged_rng, max_retries,
            )
            if result is not None:
                results[party] = result
        # Participant order, regardless of stacked/serial processing order.
        for party in participants:
            if party in results:
                execution.results.append(results[party])
                execution.completed.append(party)
        for party, rng_state in staged_rng.items():
            self.clients[party].rng.bit_generator.state = rng_state
        return execution

    def _plan(self, participants, faults):
        """Split the round into stackable groups and serial leftovers.

        A party is stackable when its local work is shape-static: SGD
        without DP, no armed crash fault, and a sample count that is a
        positive multiple of the batch size (no ragged last batch).
        Stackable parties are grouped by (epochs, num_samples) and
        chunked to ``stack_size`` in participant order; singleton chunks
        gain nothing from batching and stay serial.
        """
        config = self.config
        config_ok = config.optimizer == "sgd" and config.dp is None
        serial: list[int] = []
        by_key: dict[tuple, list[int]] = {}
        for party in participants:
            client = self.clients[party]
            fault = faults.get(party) if faults else None
            samples = client.num_samples
            if (
                not config_ok
                or (fault is not None and fault.crash_after_steps is not None)
                or samples == 0
                or samples % config.batch_size != 0
            ):
                serial.append(party)
                continue
            epochs = (
                client.local_epochs
                if client.local_epochs is not None
                else config.local_epochs
            )
            by_key.setdefault((epochs, samples), []).append(party)
        groups: list[list[int]] = []
        for parties in by_key.values():
            for start in range(0, len(parties), self.stack_size):
                chunk = parties[start : start + self.stack_size]
                if len(chunk) < 2:
                    serial.extend(chunk)
                else:
                    groups.append(chunk)
        return groups, serial

    def _run_stack(
        self, group, global_state, payload, reference, keys, staged_rng, results
    ) -> bool:
        """Try one group end to end; False degrades the group to serial.

        Transactional like the serial path: on any failure every group
        member's generator is back at its pre-group snapshot and nothing
        is staged, so the serial rerun (or a raised error) sees clean
        state.  :class:`StackedDriftError` propagates — a broken
        exactness contract must not be silently papered over.
        """
        clients = [self.clients[party] for party in group]
        snapshots = [client.rng.bit_generator.state for client in clients]

        def restore():
            for client, snapshot in zip(clients, snapshots):
                client.rng.bit_generator.state = snapshot
            for party in group:
                staged_rng.pop(party, None)
                results.pop(party, None)

        records = self._record_group(group, global_state, payload)
        if records is None:
            restore()
            return False
        try:
            self._train_stack(records)
            if not self._drift_checked:
                self._check_drift(records, snapshots)
                self._drift_checked = True
            self._replay_group(
                records, snapshots, global_state, payload, reference, keys,
                staged_rng, results,
            )
        except StackedDriftError:
            restore()
            raise
        except Exception:
            # CaptureError (model the compiler rejects — memoized, so
            # later rounds skip the attempt) or anything unexpected: the
            # serial rerun either succeeds or surfaces the real error
            # through the retry machinery.
            restore()
            return False
        return True

    def _record_group(self, group, global_state, payload):
        """Phase 1: intercept each party's training call (no rng draws)."""

        def recording_hook(
            model, client, config, proximal_mu, anchor, correction, correction_mode
        ):
            raise _StackDeferred(
                _StackCall(
                    model.state_dict(), proximal_mu, anchor, correction,
                    correction_mode,
                )
            )

        records = []
        for party in group:
            client = self.clients[party]
            try:
                with local_training_hook(recording_hook):
                    self.algorithm.local_update(
                        self.model, global_state, client, self.config, payload
                    )
            except _StackDeferred as deferred:
                records.append(_StackRecord(party, client, deferred.call))
                continue
            except Exception:
                return None
            # local_update finished without calling run_local_training —
            # an algorithm shape the two-phase protocol cannot batch.
            return None
        first = records[0].call
        for record in records[1:]:
            call = record.call
            if (
                call.proximal_mu != first.proximal_mu
                or (call.anchor is None) != (first.anchor is None)
                or (call.correction is None) != (first.correction is None)
                or call.correction_mode != first.correction_mode
            ):
                return None
        return records

    def _train_stack(self, records) -> None:
        """Phase 2: run the group's local SGD as one batched program."""
        config = self.config
        model = self.model
        stack = len(records)
        first_client = records[0].client
        features = first_client.dataset.features
        labels = first_client.dataset.labels
        batch = config.batch_size
        program = stacked_engine(model, optimize=config.optimize).program(
            stack,
            np.zeros((batch,) + features.shape[1:], features.dtype),
            np.zeros((batch,), labels.dtype),
        )
        param_keys = [name for name, _ in model.named_parameters()]
        stacks = [program.param_stack(i) for i in range(len(param_keys))]
        for k, record in enumerate(records):
            state0 = record.call.state0
            for buffer, key in zip(stacks, param_keys):
                if buffer is not None:
                    buffer[k] = state0[key]
        call = records[0].call
        optimizer = StackedSGD(
            stacks,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            proximal_mu=call.proximal_mu,
        )
        if call.anchor is not None:
            optimizer.set_anchor(
                [
                    np.stack([record.call.anchor[i] for record in records])
                    for i in range(len(param_keys))
                ]
            )
        if call.correction is not None:
            optimizer.set_correction(
                [
                    np.stack([record.call.correction[i] for record in records])
                    for i in range(len(param_keys))
                ],
                mode=call.correction_mode,
            )
        epochs = (
            first_client.local_epochs
            if first_client.local_epochs is not None
            else config.local_epochs
        )
        samples = first_client.num_samples
        steps_per_epoch = samples // batch
        # All shuffle orders are drawn up front, per client in epoch
        # order — exactly the sequence the serial DataLoader consumes
        # (training itself draws nothing), so each private generator ends
        # the phase in its serial post-training state.
        orders = []
        data = []
        for record in records:
            client_orders = []
            for _ in range(epochs):
                order = np.arange(samples)
                record.client.rng.shuffle(order)
                client_orders.append(order)
            orders.append(client_orders)
            data.append(
                (record.client.dataset.features, record.client.dataset.labels)
            )
        feature_buf = program.features
        label_buf = program.labels
        totals = [0.0] * stack
        steps = 0
        for epoch in range(epochs):
            for step in range(steps_per_epoch):
                lo = step * batch
                hi = lo + batch
                for k in range(stack):
                    index = orders[k][epoch][lo:hi]
                    feature_buf[k] = data[k][0][index]
                    label_buf[k] = data[k][1][index]
                losses = program.step()
                optimizer.step(program.grads())
                for k in range(stack):
                    totals[k] += float(losses[k])
                steps += 1
        for k, record in enumerate(records):
            state = dict(record.call.state0)
            for buffer, key in zip(stacks, param_keys):
                if buffer is not None:
                    state[key] = buffer[k].copy()
            record.result = LocalTrainingResult(
                state=state,
                num_steps=steps,
                num_samples=samples,
                mean_loss=totals[k] / max(steps, 1),
            )
            record.post_rng = record.client.rng.bit_generator.state

    def _check_drift(self, records, snapshots) -> None:
        """Re-run the group serially and compare (first group per run).

        ``tolerance == 0.0`` demands bitwise identity; a positive
        tolerance bounds the max-abs per-element deviation instead.
        """
        model = self.model
        tolerance = self.tolerance
        for record, snapshot in zip(records, snapshots):
            client = record.client
            client.rng.bit_generator.state = snapshot
            model.load_state_dict(record.call.state0)
            call = record.call
            serial = run_local_training(
                model, client, self.config,
                proximal_mu=call.proximal_mu,
                anchor=call.anchor,
                correction=call.correction,
                correction_mode=call.correction_mode,
            )
            client.rng.bit_generator.state = record.post_rng
            stacked = record.result
            if serial.num_steps != stacked.num_steps:
                raise StackedDriftError(
                    f"stacked replay ran {stacked.num_steps} steps for party "
                    f"{record.party} where serial ran {serial.num_steps}"
                )
            drift = 0.0
            for key, reference in serial.state.items():
                reference = np.asarray(reference)
                mine = np.asarray(stacked.state[key])
                if np.array_equal(reference, mine):
                    continue
                if tolerance == 0.0:
                    raise StackedDriftError(
                        f"stacked replay diverged from serial on party "
                        f"{record.party} key {key!r} with tolerance 0.0; "
                        "this host's batched GEMM is not bitwise exact — "
                        "pass --stacked-tolerance to accept bounded drift"
                    )
                drift = max(
                    drift,
                    float(
                        np.max(
                            np.abs(
                                reference.astype(np.float64)
                                - mine.astype(np.float64)
                            )
                        )
                    ),
                )
            if drift > tolerance:
                raise StackedDriftError(
                    f"stacked replay drifted {drift:.3e} from serial on "
                    f"party {record.party}, above tolerance {tolerance:.3e}"
                )

    def _replay_group(
        self, records, snapshots, global_state, payload, reference, keys,
        staged_rng, results,
    ) -> None:
        """Phase 3: feed results back through each ``local_update``."""
        for record, snapshot in zip(records, snapshots):
            client = record.client
            outcome = record.result

            def replay_hook(
                model, hook_client, config, proximal_mu, anchor, correction,
                correction_mode,
            ):
                model.load_state_dict(outcome.state)
                return outcome

            # Post-training state first: anything after the training call
            # (SCAFFOLD option-1 full-batch pass, codec draws) must see
            # the same generator sequence the serial path would.
            client.rng.bit_generator.state = record.post_rng
            with local_training_hook(replay_hook):
                result = self.algorithm.local_update(
                    self.model, global_state, client, self.config, payload
                )
            if self.channel is not None:
                process_upload(
                    self.channel, self.algorithm, result, client, reference, keys
                )
            staged_rng[record.party] = client.rng.bit_generator.state
            client.rng.bit_generator.state = snapshot
            results[record.party] = result

    def __repr__(self) -> str:
        return (
            f"StackedExecutor(stack_size={self.stack_size}, "
            f"tolerance={self.tolerance})"
        )


#: executor names make_executor accepts (mirrors FederatedConfig validation)
EXECUTOR_NAMES = ("auto", "serial", "parallel", "stacked")


def make_executor(config: "FederatedConfig") -> ClientExecutor:
    """Build the executor a :class:`FederatedConfig` asks for.

    ``executor="serial"``, ``"parallel"`` and ``"stacked"`` are explicit;
    ``"auto"`` picks :class:`ParallelExecutor` when ``num_workers >= 2``,
    the platform can fork, *and* more than one CPU is actually available
    — forked workers time-slicing one core cost fork/IPC overhead for
    zero concurrency, so a single-CPU host degrades to
    :class:`SerialExecutor` with a one-line warning and the reason
    recorded in each round's ``fallback`` field.  An explicit
    ``executor="parallel"`` still forces the pool.  Unknown names raise
    ``ValueError`` — configs are typically validated upstream, but
    hand-built ones must not silently degrade to serial.
    """
    if config.executor not in EXECUTOR_NAMES:
        raise ValueError(
            f"unknown executor {config.executor!r}; expected one of "
            f"{EXECUTOR_NAMES}"
        )
    if config.executor == "stacked":
        return StackedExecutor(
            stack_size=config.stack_size, tolerance=config.stacked_tolerance
        )
    wants_parallel = config.executor == "parallel" or (
        config.executor == "auto" and config.num_workers >= 2
    )
    if not wants_parallel:
        return SerialExecutor()
    if config.executor == "auto" and not fork_available():
        return SerialExecutor()
    if config.executor == "auto" and _effective_cpu_count() <= 1:
        warnings.warn(
            f"executor='auto' found a single-CPU host; running "
            f"{config.num_workers} requested workers serially "
            "(pass executor='parallel' to force a pool)",
            RuntimeWarning,
            stacklevel=2,
        )
        return SerialExecutor(note="serial:single-cpu")
    return ParallelExecutor(max(config.num_workers, 2))
