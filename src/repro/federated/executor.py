"""Pluggable client-execution backends for the federated round loop.

The per-round unit of work — "run one party's local training against the
current global model" — is embarrassingly parallel, and FL simulators built
for this workload (FedJAX, FedML's distributed-computing layer) all treat
it that way.  This module provides two interchangeable backends:

- :class:`SerialExecutor` — the classic single-process loop (default);
- :class:`ParallelExecutor` — a fork-based ``multiprocessing`` pool with
  one long-lived model replica per worker.

Both rely on the algorithm purity contract (see
:meth:`repro.federated.algorithms.base.FedAlgorithm.local_update`): a
client round is a pure function of ``(global_state, client payload,
config)`` that may use its ``model`` argument only as scratch workspace
and must report persistent per-party state changes in
``ClientResult.client_state`` instead of mutating anything shared.

Determinism
-----------
Results are **bitwise identical regardless of worker count**:

- each party owns a private ``numpy`` generator; the worker receives its
  current state with the task and returns the advanced state with the
  result, so shuffling sequences match the serial schedule exactly;
- the global state is shipped as a flat ``float32`` vector (the
  :mod:`repro.grad.serialize` transport dtype) and unflattened against the
  worker replica — a lossless round-trip for ``float32`` model states;
- the server consumes results in *participant order* (submission order),
  never completion order, so aggregation sees the same sequence the
  serial loop produces.

Workers are forked lazily on the first round, after
:meth:`FedAlgorithm.prepare`, so the replicas inherit the datasets and
cached key structure by copy-on-write instead of pickling them.
"""

from __future__ import annotations

import multiprocessing
import weakref
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.comm.channel import RESIDUAL_KEY, CommChannel
from repro.grad.serialize import state_dict_to_vector, vector_to_state_dict

if TYPE_CHECKING:
    from repro.grad.nn.module import Module
    from repro.federated.algorithms.base import ClientResult, FedAlgorithm
    from repro.federated.client import Client
    from repro.federated.config import FederatedConfig


def fork_available() -> bool:
    """Whether this platform supports fork-based worker pools."""
    return "fork" in multiprocessing.get_all_start_methods()


def process_upload(channel, algorithm, result, client, reference, keys) -> None:
    """Run one result through the uplink side of the comm channel.

    Mutates ``result`` in place: its state and payload become what the
    server reconstructs after decoding, ``upload_nbytes`` records the
    measured wire size, and an error-feedback residual (if the codec
    keeps one) is added to ``result.client_state`` so the server commits
    it into ``client.state`` like any other persistent per-party state.
    Uses ``client.rng`` for stochastic codecs — its state already travels
    between server and workers, so serial and parallel runs draw the
    same bits.
    """
    residual = None
    if channel.codec.error_feedback:
        residual = client.state.get(RESIDUAL_KEY)
    state, extras, nbytes, new_residual = channel.encode_upload(
        result.state,
        result.payload,
        reference,
        keys,
        client.rng,
        residual=residual,
        metadata_floats=algorithm.uplink_metadata_floats(),
    )
    result.state = state
    result.payload = extras
    result.upload_nbytes = nbytes
    if new_residual is not None:
        result.client_state[RESIDUAL_KEY] = new_residual


class ClientExecutor:
    """Interface: run the sampled parties' local rounds for one round."""

    def setup(
        self,
        model: "Module",
        algorithm: "FedAlgorithm",
        clients: "list[Client]",
        config: "FederatedConfig",
        channel: CommChannel | None = None,
    ) -> None:
        """Bind the run's shared objects; called once by the server.

        ``channel`` enables uplink codec processing + byte metering; when
        ``None`` (standalone executor use) results pass through raw.
        """
        self.model = model
        self.algorithm = algorithm
        self.clients = clients
        self.config = config
        self.channel = channel

    def run_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
    ) -> "list[ClientResult]":
        """Execute local training for ``participants``, in their order.

        ``payload`` is the (already channel-encoded) broadcast extras;
        when ``None`` the executor asks the algorithm directly, which is
        the uncompressed pre-channel behaviour.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "ClientExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(ClientExecutor):
    """Run parties one after another on the server's workspace model."""

    def run_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
    ) -> "list[ClientResult]":
        if payload is None:
            payload = self.algorithm.broadcast_payload()
        channel = self.channel
        # The identity codec never transforms state, so the flat reference
        # vector (only needed by delta-mode codecs) is built lazily.
        keys: list[str] | None = None
        reference: np.ndarray | None = None
        results = []
        for party in participants:
            client = self.clients[party]
            result = self.algorithm.local_update(
                self.model, global_state, client, self.config, payload
            )
            if channel is not None:
                if keys is None and not channel.codec.lossless:
                    keys = sorted(global_state)
                    reference = state_dict_to_vector(global_state, keys=keys)
                process_upload(
                    channel, self.algorithm, result, client, reference, keys
                )
            results.append(result)
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


# ----------------------------------------------------------------------
# Fork-side worker machinery
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything a worker inherits at fork time (copy-on-write)."""

    __slots__ = ("model", "algorithm", "clients", "config", "keys", "channel", "template")

    def __init__(self, model, algorithm, clients, config, keys, channel):
        self.model = model
        self.algorithm = algorithm
        self.clients = clients
        self.config = config
        self.keys = keys
        self.channel = channel
        self.template = None  # lazily cached state-dict template


#: Set in the parent immediately before the pool forks; each worker keeps
#: the inherited snapshot.  Only the mutable bits (rng state, per-party
#: state, the global model vector) travel with each task.
_FORK_STATE: _WorkerState | None = None


def _run_task(client_index, global_vec, rng_state, client_state, payload):
    """Worker entry: one party's local round against the shipped state."""
    state = _FORK_STATE
    if state is None:  # pragma: no cover - defensive; fork guarantees it
        raise RuntimeError("worker has no inherited federation state")
    if state.template is None:
        state.template = state.model.state_dict()
    client = state.clients[client_index]
    client.rng.bit_generator.state = rng_state
    client.state = client_state
    global_state = vector_to_state_dict(global_vec, state.template, keys=state.keys)
    result = state.algorithm.local_update(
        state.model, global_state, client, state.config, payload
    )
    if state.channel is not None:
        # global_vec is exactly the flat broadcast reference delta-mode
        # codecs need; the uplink draws from client.rng, whose advanced
        # state returns to the parent with the result.
        process_upload(
            state.channel, state.algorithm, result, client, global_vec, state.keys
        )
    return result, client.rng.bit_generator.state


def _shutdown_pool(pool) -> None:
    pool.terminate()
    pool.join()


class ParallelExecutor(ClientExecutor):
    """Train sampled parties concurrently in a fork-based process pool.

    Parameters
    ----------
    num_workers:
        Number of worker processes (>= 2; use :class:`SerialExecutor` for
        single-process execution).  Values above the number of sampled
        parties per round are harmless — excess workers idle.
    """

    def __init__(self, num_workers: int):
        if num_workers < 2:
            raise ValueError(
                f"ParallelExecutor needs num_workers >= 2, got {num_workers}; "
                "use SerialExecutor for single-process execution"
            )
        if not fork_available():
            raise RuntimeError(
                "ParallelExecutor requires the 'fork' start method (POSIX); "
                "use SerialExecutor on this platform"
            )
        self.num_workers = num_workers
        self._pool = None
        self._keys: list[str] | None = None
        self._finalizer = None

    def _ensure_pool(self, global_state: dict[str, np.ndarray]) -> None:
        if self._pool is not None:
            return
        global _FORK_STATE
        self._keys = sorted(global_state)
        _FORK_STATE = _WorkerState(
            self.model, self.algorithm, self.clients, self.config, self._keys,
            self.channel,
        )
        try:
            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(self.num_workers)
        finally:
            _FORK_STATE = None
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool)

    def run_round(
        self,
        global_state: dict[str, np.ndarray],
        participants: Sequence[int],
        payload: dict | None = None,
    ) -> "list[ClientResult]":
        self._ensure_pool(global_state)
        if payload is None:
            payload = self.algorithm.broadcast_payload()
        global_vec = state_dict_to_vector(global_state, keys=self._keys)
        pending = []
        for party in participants:
            client = self.clients[party]
            pending.append(
                self._pool.apply_async(
                    _run_task,
                    (
                        party,
                        global_vec,
                        client.rng.bit_generator.state,
                        client.state,
                        payload,
                    ),
                )
            )
        # Collect in submission (= participant) order, not completion order,
        # so aggregation is independent of worker scheduling.
        results = []
        for party, handle in zip(participants, pending):
            result, rng_state = handle.get()
            self.clients[party].rng.bit_generator.state = rng_state
            results.append(result)
        return results

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._pool = None

    def __repr__(self) -> str:
        return f"ParallelExecutor(num_workers={self.num_workers})"


def make_executor(config: "FederatedConfig") -> ClientExecutor:
    """Build the executor a :class:`FederatedConfig` asks for.

    ``executor="serial"`` and ``executor="parallel"`` are explicit;
    ``"auto"`` picks :class:`ParallelExecutor` when ``num_workers >= 2``
    and the platform can fork, falling back to :class:`SerialExecutor`
    otherwise.
    """
    wants_parallel = config.executor == "parallel" or (
        config.executor == "auto" and config.num_workers >= 2
    )
    if not wants_parallel:
        return SerialExecutor()
    if config.executor == "auto" and not fork_available():
        return SerialExecutor()
    return ParallelExecutor(max(config.num_workers, 2))
