"""Differential privacy for local training (paper Section 6.1).

The paper's future-directions section: "techniques such as differential
privacy are useful to protect the local databases.  How to decrease the
accuracy loss while ensuring the differential privacy guarantee is a
challenging research direction."  This module provides the standard
DP-SGD mechanism at batch granularity:

1. clip the (global) gradient norm of each mini-batch update to ``clip_norm``;
2. add Gaussian noise ``N(0, (noise_multiplier * clip_norm / batch)^2)``.

Batch-level clipping is the common lightweight approximation of
per-example DP-SGD; :func:`approximate_epsilon` gives the corresponding
coarse advanced-composition bound (a real deployment would use an RDP/
moments accountant — out of scope for this reproduction).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DifferentialPrivacy:
    """DP-SGD parameters for local training.

    Attributes
    ----------
    clip_norm:
        Maximum L2 norm of each batch gradient (over all parameters).
    noise_multiplier:
        Gaussian noise std as a multiple of ``clip_norm / batch_size``.
    seed:
        Seeds the noise generator (combined with the party id).
    """

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {self.clip_norm}")
        if self.noise_multiplier < 0:
            raise ValueError(
                f"noise_multiplier must be non-negative, got {self.noise_multiplier}"
            )


def clip_gradients(grads: list[np.ndarray], clip_norm: float) -> float:
    """Scale ``grads`` in place so their joint L2 norm is <= ``clip_norm``.

    Returns the pre-clipping norm (useful for diagnostics).
    """
    total = math.sqrt(sum(float((g.astype(np.float64) ** 2).sum()) for g in grads))
    if total > clip_norm and total > 0:
        factor = clip_norm / total
        for g in grads:
            g *= factor
    return total


def add_noise(
    grads: list[np.ndarray],
    clip_norm: float,
    noise_multiplier: float,
    batch_size: int,
    rng: np.random.Generator,
) -> None:
    """Add the DP-SGD Gaussian noise to ``grads`` in place."""
    if noise_multiplier == 0:
        return
    std = noise_multiplier * clip_norm / max(batch_size, 1)
    for g in grads:
        g += rng.normal(0.0, std, size=g.shape).astype(g.dtype)


def approximate_epsilon(
    num_steps: int,
    sample_rate: float,
    noise_multiplier: float,
    delta: float = 1e-5,
) -> float:
    """Coarse (epsilon, delta) estimate via amplification + advanced composition.

    Per-step epsilon is amplified by subsampling (factor ``sample_rate``)
    and composed over ``num_steps`` with the advanced composition theorem.
    This intentionally over-estimates compared to an RDP accountant —
    treat it as an upper bound for comparing configurations, not a
    certification.
    """
    if num_steps <= 0:
        raise ValueError(f"num_steps must be positive, got {num_steps}")
    if not 0 < sample_rate <= 1:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    if noise_multiplier <= 0:
        return math.inf
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    per_step = sample_rate * math.sqrt(2.0 * math.log(1.25 / delta)) / noise_multiplier
    return per_step * math.sqrt(2.0 * num_steps * math.log(1.0 / delta)) + (
        num_steps * per_step * (math.exp(per_step) - 1.0)
    )
