"""Failure injection for federated rounds (the system-heterogeneity axis).

The paper's Figure 12 shows partial participation alone destabilizing
non-IID training; deployed cross-silo federations add harsher failure
modes a synchronous server must absorb every round:

- **dropout** — a sampled party never responds (network partition, silo
  maintenance); its update is simply missing from the round;
- **stragglers** — a party computes at a fraction of its nominal speed;
  it finishes, but late, and a deadline-based server may stop waiting;
- **crashes** — a party dies *mid-training* after some number of local
  steps; its partial work is lost and must not leak into any shared
  state (the transactional-commit contract in
  :mod:`repro.federated.executor`).

:class:`FaultModel` draws all three per ``(round, party)`` as a **pure
function** of ``(seed, round_index, party)`` — no sequential generator
state.  That makes the schedule independent of sampling order and of how
many parties a round inspects (over-sampling does not perturb later
draws), and it survives checkpoint/resume for free: a resumed run
replays the exact fault schedule of the uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class InjectedCrash(RuntimeError):
    """A fault-model crash, raised from inside a party's local training.

    Carries the number of local steps the party completed before dying so
    failure records can account for the wasted work.  The executor treats
    this as a *permanent* party failure for the round (no retry — the
    schedule is deterministic), unlike transient real exceptions.
    """

    def __init__(self, client_id: int, steps_completed: int):
        super().__init__(
            f"injected crash: client {client_id} died after "
            f"{steps_completed} local step(s)"
        )
        self.client_id = client_id
        self.steps_completed = steps_completed

    def __reduce__(self):
        # Rebuild from the typed fields so the exception survives the
        # worker-to-parent pickle hop of the parallel executor.
        return (InjectedCrash, (self.client_id, self.steps_completed))


@dataclass(frozen=True)
class PartyFault:
    """One party's fate for one round, as drawn by a :class:`FaultModel`."""

    #: party never responds this round (update missing, uplink never sent)
    dropped: bool = False
    #: compute-time multiplier (1.0 = nominal; 3.0 = three times slower)
    slowdown: float = 1.0
    #: die after this many local steps (``None`` = no crash)
    crash_after_steps: int | None = None

    @property
    def ok(self) -> bool:
        """Whether the party completes the round at nominal speed."""
        return not self.dropped and self.crash_after_steps is None and self.slowdown == 1.0


#: the no-fault outcome, shared so fault-free rounds allocate nothing
NO_FAULT = PartyFault()


@dataclass(frozen=True)
class FaultModel:
    """Seeded per-round, per-party failure injection.

    Parameters
    ----------
    dropout_prob:
        Probability a sampled party silently drops out of a round.
    straggler_prob:
        Probability a responding party runs slowed this round.
    straggler_factor:
        Compute-time multiplier applied to stragglers (>= 1).  Under a
        round ``deadline`` smaller than this factor, stragglers time out
        and count as dropped.
    crash_prob:
        Probability a responding party crashes mid-training.
    crash_after_steps:
        Local steps a crashing party completes before dying (>= 1).
    seed:
        Seeds the per-``(round, party)`` draws; independent of every
        other generator in the run.
    """

    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 1.0
    crash_prob: float = 0.0
    crash_after_steps: int = 1
    seed: int = 0

    def __post_init__(self):
        for name in ("dropout_prob", "straggler_prob", "crash_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.dropout_prob + self.crash_prob > 1.0:
            raise ValueError(
                "dropout_prob + crash_prob must not exceed 1, got "
                f"{self.dropout_prob} + {self.crash_prob}"
            )
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.crash_after_steps < 1:
            raise ValueError(
                f"crash_after_steps must be >= 1, got {self.crash_after_steps}"
            )

    @property
    def active(self) -> bool:
        """Whether any failure mode has non-zero probability."""
        return (
            self.dropout_prob > 0.0
            or self.crash_prob > 0.0
            or (self.straggler_prob > 0.0 and self.straggler_factor > 1.0)
        )

    @classmethod
    def from_config(cls, config) -> "FaultModel | None":
        """The fault model a :class:`FederatedConfig` asks for (or None)."""
        model = cls(
            dropout_prob=config.dropout_prob,
            straggler_prob=config.straggler_prob,
            straggler_factor=config.straggler_factor,
            crash_prob=config.crash_prob,
            crash_after_steps=config.crash_after_steps,
            seed=config.seed + 318_211,
        )
        return model if model.active else None

    def party_fault(self, round_index: int, party: int) -> PartyFault:
        """Draw one party's fate for one round (pure in its arguments)."""
        if not self.active:
            return NO_FAULT
        # Mask the seed into SeedSequence's non-negative domain; the round
        # and party indices are non-negative already.
        rng = np.random.default_rng(
            (self.seed & 0x7FFFFFFF, int(round_index), int(party))
        )
        fate = rng.random()
        if fate < self.dropout_prob:
            return PartyFault(dropped=True)
        if fate < self.dropout_prob + self.crash_prob:
            return PartyFault(crash_after_steps=self.crash_after_steps)
        if self.straggler_prob > 0.0 and rng.random() < self.straggler_prob:
            return PartyFault(slowdown=self.straggler_factor)
        return NO_FAULT

    def round_faults(
        self, round_index: int, parties: "list[int] | np.ndarray"
    ) -> dict[int, PartyFault]:
        """Fates for every party in ``parties`` this round."""
        return {
            int(party): self.party_fault(round_index, int(party))
            for party in parties
        }

    def expected_drop_rate(self, deadline: float | None = None) -> float:
        """Expected fraction of sampled parties lost to the fault model.

        Counts dropouts and crashes, plus stragglers when a round
        ``deadline`` (a slowdown threshold, see
        :meth:`repro.federated.server.FederatedServer.run_round`) would
        time them out.  Drives the server's over-sampling so expected
        *completed* participation matches the configured fraction.
        """
        lost = self.dropout_prob + self.crash_prob
        if (
            deadline is not None
            and self.straggler_factor > deadline
            and self.straggler_prob > 0.0
        ):
            lost += (1.0 - lost) * self.straggler_prob
        return min(lost, 1.0)

    def __repr__(self) -> str:
        return (
            f"FaultModel(dropout={self.dropout_prob}, "
            f"straggler={self.straggler_prob}x{self.straggler_factor}, "
            f"crash={self.crash_prob}@{self.crash_after_steps})"
        )
