"""Wall-clock system model: turn round histories into time-to-accuracy.

The paper evaluates accuracy per *communication round*; a deployed
federation cares about accuracy per *unit of wall-clock time*, where a
round costs

    max over participants of (compute time + transfer time)

because the server waits for the slowest sampled party (synchronous FL,
as in Figure 1).  This model replays a recorded :class:`History` under
configurable per-party compute speeds and bandwidths, which is how the
communication overheads of Section 3.3 (SCAFFOLD's doubled payload)
become visible as time: an algorithm can win per-round and lose per-hour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.federated.history import History


@dataclass(frozen=True)
class SystemModel:
    """Per-party compute and network characteristics.

    Attributes
    ----------
    step_time:
        Seconds one mini-batch SGD step takes on a speed-1.0 party.
    compute_speeds:
        Relative speed per party (``None`` = all 1.0).  A party with
        speed 0.5 takes twice ``step_time`` per step.
    bandwidths:
        Bytes/second per party for the combined down+up transfer
        (``None`` = all ``default_bandwidth``).
    default_bandwidth:
        Fallback bandwidth (bytes/second).
    server_overhead:
        Fixed per-round seconds (aggregation, scheduling).
    """

    step_time: float = 0.01
    compute_speeds: tuple[float, ...] | None = None
    bandwidths: tuple[float, ...] | None = None
    default_bandwidth: float = 1e6
    server_overhead: float = 0.0

    def __post_init__(self):
        if self.step_time <= 0:
            raise ValueError(f"step_time must be positive, got {self.step_time}")
        if self.default_bandwidth <= 0:
            raise ValueError("default_bandwidth must be positive")
        for name, values in (("compute_speeds", self.compute_speeds),
                             ("bandwidths", self.bandwidths)):
            if values is not None and any(v <= 0 for v in values):
                raise ValueError(f"all {name} must be positive")
        if self.server_overhead < 0:
            raise ValueError("server_overhead must be non-negative")

    def _speed(self, party: int) -> float:
        if self.compute_speeds is None:
            return 1.0
        return self.compute_speeds[party % len(self.compute_speeds)]

    def _bandwidth(self, party: int) -> float:
        if self.bandwidths is None:
            return self.default_bandwidth
        return self.bandwidths[party % len(self.bandwidths)]

    def round_duration(
        self,
        participants: list[int],
        steps: list[int],
        round_bytes: int,
        bytes_down: int = 0,
        bytes_up: int = 0,
        client_bytes_up: list[int] | None = None,
        slowdowns: list[float] | None = None,
    ) -> float:
        """Seconds one synchronous round takes under this model.

        When the per-direction fields PR 2 introduced are available
        (``bytes_down``/``bytes_up`` non-zero), each party is charged the
        shared per-client downlink plus *its own* measured uplink
        (``client_bytes_up``, falling back to an even uplink split) —
        which is what makes SCAFFOLD's doubled uplink and per-client
        codec payload variation visible in wall-clock replay.  Legacy
        records without the breakdown keep the old even split of
        ``round_bytes``.  ``slowdowns`` are the fault model's per-party
        compute multipliers: a straggler that completed is charged its
        slowed elapsed time.  Timed-out or dropped parties never appear
        in ``participants`` and so never extend the round.
        """
        if not participants:
            return self.server_overhead
        if len(steps) != len(participants):
            raise ValueError(
                f"{len(steps)} step counts for {len(participants)} participants"
            )
        n = len(participants)
        if slowdowns is not None and len(slowdowns) not in (0, n):
            raise ValueError(
                f"{len(slowdowns)} slowdowns for {n} participants"
            )
        if client_bytes_up is not None and len(client_bytes_up) not in (0, n):
            raise ValueError(
                f"{len(client_bytes_up)} uplink byte counts for {n} participants"
            )
        directional = bytes_down > 0 or bytes_up > 0
        down_per_party = bytes_down / n if directional else round_bytes / n
        slowest = 0.0
        for index, (party, party_steps) in enumerate(zip(participants, steps)):
            compute = party_steps * self.step_time / self._speed(party)
            if slowdowns:
                compute *= slowdowns[index]
            if directional:
                if client_bytes_up:
                    up = client_bytes_up[index]
                else:
                    up = bytes_up / n
                party_bytes = down_per_party + up
            else:
                party_bytes = down_per_party
            transfer = party_bytes / self._bandwidth(party)
            slowest = max(slowest, compute + transfer)
        return slowest + self.server_overhead

    def replay(self, history: History) -> np.ndarray:
        """Cumulative wall-clock seconds at the end of each round."""
        durations = [
            self.round_duration(
                record.participants,
                record.client_steps,
                record.bytes_communicated,
                bytes_down=record.bytes_down,
                bytes_up=record.bytes_up,
                client_bytes_up=record.client_bytes_up,
                slowdowns=record.slowdowns,
            )
            for record in history.records
        ]
        return np.cumsum(durations)

    def time_to_accuracy(self, history: History, target: float) -> float:
        """Seconds until the global model first reaches ``target`` accuracy.

        Returns ``inf`` when the run never gets there — the honest answer
        for an algorithm that plateaus below the target.
        """
        times = self.replay(history)
        for record, elapsed in zip(history.records, times):
            if record.test_accuracy is not None and record.test_accuracy >= target:
                return float(elapsed)
        return float("inf")

    def accuracy_time_curve(self, history: History) -> tuple[np.ndarray, np.ndarray]:
        """(elapsed seconds, accuracy) pairs for evaluated rounds."""
        times = self.replay(history)
        mask = ~np.isnan(history.accuracies)
        return times[mask], history.accuracies[mask]
