"""The party ("client") side of the federation.

A client owns a local dataset, a private shuffling generator, and a small
bag of persistent per-party state: SCAFFOLD's control variate ``c_i`` and —
under the ``bn_policy="local"`` remedy — its own batch-norm statistics that
survive across rounds instead of being overwritten by the server broadcast.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import DataLoader


class Client:
    """One data silo participating in federated training.

    Parameters
    ----------
    client_id:
        Index of the party (``P_i`` in the paper).
    dataset:
        The party's local data (a ``Subset`` view or materialized dataset).
    rng:
        Private generator for local shuffling; derive it from the run seed
        so whole experiments are reproducible.

    A client with an **empty dataset** is permitted (low-beta Dirichlet
    partitions legitimately produce empty parties): it contributes zero
    label counts and zero samples.  :func:`make_clients` still rejects or
    drops empty parties at federation-construction time — silently
    shrinking a federation skews comparisons — but code that builds
    clients directly may keep them.
    """

    def __init__(
        self,
        client_id: int,
        dataset,
        rng: np.random.Generator,
        local_epochs: int | None = None,
    ):
        if local_epochs is not None and local_epochs <= 0:
            raise ValueError(f"local_epochs must be positive, got {local_epochs}")
        self.client_id = client_id
        self.dataset = dataset
        self.rng = rng
        #: per-party local-epoch override.  The paper's FedNova motivation:
        #: "different parties may conduct different numbers of local steps
        #: ... when parties have different computation power given the same
        #: time constraint".  ``None`` uses the run config's value.
        self.local_epochs = local_epochs
        #: algorithm-managed persistent state (e.g. SCAFFOLD's c_i)
        self.state: dict = {}
        #: fault-injection hook: when set, local training raises
        #: :class:`~repro.federated.faults.InjectedCrash` after this many
        #: mini-batch steps.  Transient — the executor sets it for one
        #: task and clears it afterwards; never checkpointed.
        self.crash_after_steps: int | None = None

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def loader(self, batch_size: int) -> DataLoader:
        """A shuffling loader over the local data for one round."""
        return DataLoader(self.dataset, batch_size, shuffle=True, rng=self.rng)

    def label_distribution(self, num_classes: int) -> np.ndarray:
        counts = self.dataset.class_counts(num_classes)
        return counts / max(counts.sum(), 1)

    def __repr__(self) -> str:
        return f"Client(id={self.client_id}, samples={self.num_samples})"


def make_clients(
    partition,
    dataset,
    seed: int = 0,
    drop_empty: bool = False,
    local_epochs: list[int] | None = None,
) -> list[Client]:
    """Build one client per party from a partition of ``dataset``.

    Parameters
    ----------
    drop_empty:
        When True, parties that received no samples are silently skipped
        (can happen under extreme Dirichlet skew with ``min_size=0``).
        When False, an empty party raises — usually the right default,
        because silently shrinking the federation skews comparisons.
    local_epochs:
        Optional per-party epoch counts simulating heterogeneous compute
        (the FedNova scenario); must have one entry per party.
    """
    if local_epochs is not None and len(local_epochs) != partition.num_parties:
        raise ValueError(
            f"local_epochs has {len(local_epochs)} entries for "
            f"{partition.num_parties} parties"
        )
    root = np.random.default_rng(seed)
    clients = []
    for client_id, party_data in enumerate(partition.subsets(dataset)):
        child = np.random.default_rng(root.integers(2**63))
        if len(party_data) == 0:
            if drop_empty:
                continue
            raise ValueError(
                f"party {client_id} is empty; use a partitioner min_size or "
                "drop_empty=True"
            )
        epochs = None if local_epochs is None else local_epochs[client_id]
        clients.append(Client(client_id, party_data, child, local_epochs=epochs))
    return clients


def heterogeneous_epochs(
    num_parties: int,
    base_epochs: int,
    rng: np.random.Generator,
    low_factor: float = 0.2,
) -> list[int]:
    """Draw per-party epoch counts simulating unequal computation power.

    Each party completes between ``low_factor * base_epochs`` and
    ``base_epochs`` local epochs (at least 1), uniformly at random — the
    "same time constraint, different computation power" setting FedNova
    targets.
    """
    if base_epochs <= 0:
        raise ValueError(f"base_epochs must be positive, got {base_epochs}")
    if not 0 < low_factor <= 1:
        raise ValueError(f"low_factor must be in (0, 1], got {low_factor}")
    low = max(1, int(round(low_factor * base_epochs)))
    return [int(rng.integers(low, base_epochs + 1)) for _ in range(num_parties)]
