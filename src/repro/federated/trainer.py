"""Local training: the "Party executes" block of Algorithms 1 and 2.

All four algorithms share the same loop — E epochs of mini-batch SGD —
and differ only in the gradient they step on:

- FedAvg / FedNova: plain ``∇L``;
- FedProx: ``∇L + mu (w - w^t)`` via the optimizer's proximal anchor;
- SCAFFOLD: ``∇L - c_i + c`` via the optimizer's additive correction.

``LocalTrainingResult`` reports the local step count ``tau_i`` — the
quantity FedNova's normalization needs — and the trained state dict.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.grad import functional as F
from repro.grad.capture import training_engine
from repro.grad.nn.module import Module
from repro.grad.optim import Adam, SGD
from repro.grad.tensor import Tensor
from repro.federated.client import Client
from repro.federated.config import FederatedConfig
from repro.federated.faults import InjectedCrash


@dataclass
class LocalTrainingResult:
    """Outcome of one party's local round."""

    state: dict[str, np.ndarray]
    num_steps: int  # tau_i: number of mini-batch updates performed
    num_samples: int  # |D^i|
    mean_loss: float


#: Interception point for alternative local-training backends.  The
#: algorithms bind ``run_local_training`` at import time, so a backend
#: (the stacked executor) cannot monkeypatch the name — it installs a
#: hook here instead.  The hook sees the exact call the algorithm makes
#: (model already loaded with this party's start state) and may return a
#: finished :class:`LocalTrainingResult` to short-circuit, raise to
#: abort, or return None to fall through to the normal loop.
_TRAINING_HOOK = None


@contextmanager
def local_training_hook(hook):
    """Install ``hook`` for the duration of the ``with`` block.

    ``hook(model, client, config, proximal_mu, anchor, correction,
    correction_mode)`` runs at the top of :func:`run_local_training`.
    Hooks do not nest: installing one while another is active raises.
    """
    global _TRAINING_HOOK
    if _TRAINING_HOOK is not None:
        raise RuntimeError("a local-training hook is already installed")
    _TRAINING_HOOK = hook
    try:
        yield
    finally:
        _TRAINING_HOOK = None


def run_local_training(
    model: Module,
    client: Client,
    config: FederatedConfig,
    proximal_mu: float = 0.0,
    anchor: list[np.ndarray] | None = None,
    correction: list[np.ndarray] | None = None,
    correction_mode: str = "step",
) -> LocalTrainingResult:
    """Train ``model`` (already loaded with the global weights) locally.

    The model is mutated in place; callers snapshot ``model.state_dict()``
    from the returned result.
    """
    if _TRAINING_HOOK is not None:
        result = _TRAINING_HOOK(
            model, client, config, proximal_mu, anchor, correction, correction_mode
        )
        if result is not None:
            return result
    # Single gate for every non-SGD local optimizer (adam AND amsgrad):
    # SCAFFOLD's drift correction is defined on the SGD update rule, so
    # reject it here once instead of scattering per-optimizer checks.
    if correction is not None and config.optimizer != "sgd":
        raise ValueError(
            "SCAFFOLD's drift correction is defined on the SGD update rule; "
            f"optimizer={config.optimizer!r} cannot apply it — use "
            "optimizer='sgd'"
        )
    if config.optimizer == "sgd":
        optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
            proximal_mu=proximal_mu,
        )
    else:
        optimizer = Adam(
            model.parameters(),
            lr=config.lr,
            weight_decay=config.weight_decay,
            amsgrad=config.optimizer == "amsgrad",
            proximal_mu=proximal_mu,
        )
    if proximal_mu > 0:
        if anchor is None:
            raise ValueError("proximal training needs the global-model anchor")
        optimizer.set_anchor(anchor)
    if correction is not None:
        optimizer.set_correction(correction, mode=correction_mode)

    dp = config.dp
    dp_rng = None
    if dp is not None:
        from repro.federated import privacy

        dp_rng = np.random.default_rng(dp.seed + 7919 * client.client_id)

    model.train()
    params = model.parameters()
    loader = client.loader(config.batch_size)
    # Step capture & replay (see repro.grad.capture): the engine replays
    # full-size batches bitwise-identically and returns None for any other
    # shape (the ragged last batch), which then runs the eager path below.
    engine = (
        training_engine(model, optimize=config.optimize)
        if config.compile
        else None
    )
    steps = 0
    total_loss = 0.0
    epochs = client.local_epochs if client.local_epochs is not None else config.local_epochs
    for _ in range(epochs):
        for features, labels in loader:
            optimizer.zero_grad()
            loss_value = engine.step(features, labels) if engine is not None else None
            if loss_value is None:
                logits = model(Tensor(features))
                loss = F.cross_entropy(logits, labels)
                loss.backward()
                loss_value = loss.item()
            if dp is not None:
                grads = [p.grad for p in params if p.grad is not None]
                privacy.clip_gradients(grads, dp.clip_norm)
                privacy.add_noise(
                    grads, dp.clip_norm, dp.noise_multiplier, len(labels), dp_rng
                )
            optimizer.step()
            steps += 1
            total_loss += loss_value
            # Fault injection: die mid-round with the model workspace and
            # the client generator already dirtied — exactly the partial
            # work the executor's transactional commit must discard.
            if client.crash_after_steps is not None and steps >= client.crash_after_steps:
                raise InjectedCrash(client.client_id, steps)

    return LocalTrainingResult(
        state=model.state_dict(),
        num_steps=steps,
        num_samples=client.num_samples,
        mean_loss=total_loss / max(steps, 1),
    )


def full_batch_gradient(
    model: Module, client: Client, config: FederatedConfig
) -> list[np.ndarray]:
    """Gradient of the local objective at the current model weights.

    Used by SCAFFOLD's option (i) control-variate update: ``c_i* = ∇L_i(w^t)``.
    Computed by accumulating over mini-batches so large parties do not need
    one giant forward pass.
    """
    model.train()
    params = model.parameters()
    # Accumulate in the parameter dtype (float32): gradients arrive in it
    # anyway, and a per-batch float64 round-trip doubled the memory traffic
    # of this pass for no accuracy the downstream consumers can observe.
    accum = [np.zeros(p.data.shape, dtype=p.data.dtype) for p in params]
    total = 0
    for features, labels in client.loader(config.eval_batch_size):
        model.zero_grad()
        loss = F.cross_entropy(model(Tensor(features)), labels, reduction="sum")
        loss.backward()
        for slot, param in zip(accum, params):
            if param.grad is not None:
                slot += param.grad
        total += len(labels)
    model.zero_grad()
    return [slot / max(total, 1) for slot in accum]
