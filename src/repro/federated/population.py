"""Lazy client populations: million-party federations in O(cohort) memory.

The classic simulator shape — :func:`~repro.federated.client.make_clients`
materializing one :class:`~repro.federated.client.Client` (dataset view,
private generator, state dict) per party up front — is O(population) in
memory and startup time.  Production cross-device FL (FedML, FedJAX,
Google's system papers) never does this: a population of millions exists
only as an ID space, and a party is *derived* when sampled.

This module provides that abstraction:

- :class:`ClientPopulation` — the interface: ``checkout(party)``
  materializes a live :class:`Client` on demand, ``release(party)``
  spills its persistent state (optimizer / control-variate /
  error-feedback residuals, plus the advanced generator state) back into
  a cold store and drops the materialization.  Memory is
  O(checked-out) + O(previously-touched parties' state), never O(size).
- :class:`MaterializedPopulation` — an adapter over a prebuilt client
  list, so small federations (and bitwise sync-equality tests) run
  through the exact same engine code path.
- :class:`VirtualPopulation` — derives each party's dataset indices and
  RNG stream as a **pure function of** ``(seed, party_id)``: sampling
  party 517_203 of a million-party population touches O(samples_per_
  client) memory, and re-deriving it in another process yields the same
  party bit for bit.

Derivation scheme
-----------------
Party ``p``'s draws come from ``np.random.default_rng((seed, tag, p))``
— the same closed-form seeding idiom :class:`~repro.federated.faults.
FaultModel` uses for its pure per-``(round, party)`` draws.  ``tag`` 0
derives the dataset indices (consumed once at first materialization),
``tag`` 1 seeds the client's private training generator (shuffles, codec
draws), so index derivation never perturbs training randomness.

Label skew uses the paper's Dirichlet recipe per party: proportions
``Dir(beta)`` over classes, a multinomial split of ``samples_per_client``
across them, then per-class draws from precomputed class pools.  Parties
share base samples (with a million parties drawing from one base dataset
they must); each party's *multiset* of indices is still its own.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Subset
from repro.federated.client import Client


class ClientView:
    """Executor-facing adapter: ``clients[party]`` over a lazy population.

    Executors (and :meth:`FedAlgorithm.prepare`) only ever take
    ``len(clients)`` and index parties the engine already checked out, so
    this view satisfies the ``list[Client]`` contract without holding one
    object per party.  Indexing a party that is not currently checked out
    is an engine bug and raises instead of silently materializing —
    materialization must go through :meth:`ClientPopulation.checkout` so
    the release/spill lifecycle stays balanced.
    """

    def __init__(self, population: "ClientPopulation"):
        self._population = population

    def __len__(self) -> int:
        return self._population.size

    def __getitem__(self, party: int) -> Client:
        return self._population.active(party)


class ClientPopulation:
    """Interface: derive parties on demand, spill their state when cold."""

    #: total number of parties in the federation (the ID space)
    size: int

    def checkout(self, party: int) -> Client:
        """Materialize (or re-acquire) one party; balanced by release."""
        raise NotImplementedError

    def release(self, party: int) -> None:
        """Drop one checkout; the last release spills state and frees."""
        raise NotImplementedError

    def active(self, party: int) -> Client:
        """The currently checked-out client for ``party`` (no refcount)."""
        raise NotImplementedError

    def client_view(self) -> ClientView:
        """A ``list[Client]``-shaped adapter for executors/algorithms."""
        return ClientView(self)

    @property
    def materialized_count(self) -> int:
        """Live client objects right now (the flat-memory invariant)."""
        raise NotImplementedError


class MaterializedPopulation(ClientPopulation):
    """A population backed by prebuilt clients (the classic simulator).

    Checkout returns the live object and release is a no-op spill — state
    already lives on the client — so the async engine drives small
    federations through identical code to the million-party case.
    """

    def __init__(self, clients: list[Client]):
        if not clients:
            raise ValueError("need at least one client")
        self._clients = list(clients)
        self.size = len(self._clients)

    def checkout(self, party: int) -> Client:
        return self._clients[party]

    def release(self, party: int) -> None:
        pass

    def active(self, party: int) -> Client:
        return self._clients[party]

    def client_view(self):
        # Executors may be handed the real list: parallel workers fork
        # with it and index arbitrary parties.
        return self._clients

    @property
    def materialized_count(self) -> int:
        return self.size


class VirtualPopulation(ClientPopulation):
    """Derive any of ``size`` parties on demand from ``(seed, party)``.

    Parameters
    ----------
    dataset:
        The base pool parties draw their local samples from (an
        :class:`~repro.data.dataset.ArrayDataset` or compatible).
    size:
        Number of parties in the federation.
    samples_per_client:
        Local dataset size per party (must not exceed the base pool).
    seed:
        Root of every per-party derivation; two populations built with
        the same ``(dataset, size, samples_per_client, seed, skew_beta)``
        are indistinguishable, in any process.
    skew_beta:
        ``None`` — iid parties (uniform draws without replacement from
        the pool).  A positive float — Dirichlet(beta) label skew, the
        paper's ``p_k ~ Dir(beta)`` recipe applied per party.
    """

    def __init__(
        self,
        dataset,
        size: int,
        samples_per_client: int = 64,
        seed: int = 0,
        skew_beta: float | None = None,
    ):
        if size <= 0:
            raise ValueError(f"population size must be positive, got {size}")
        if samples_per_client <= 0:
            raise ValueError(
                f"samples_per_client must be positive, got {samples_per_client}"
            )
        if samples_per_client > len(dataset):
            raise ValueError(
                f"samples_per_client ({samples_per_client}) exceeds the base "
                f"dataset ({len(dataset)} samples)"
            )
        if skew_beta is not None and skew_beta <= 0:
            raise ValueError(f"skew_beta must be positive, got {skew_beta}")
        self.dataset = dataset
        self.size = size
        self.samples_per_client = samples_per_client
        self.seed = int(seed)
        self.skew_beta = skew_beta
        self._class_pools: list[np.ndarray] | None = None
        if skew_beta is not None:
            labels = np.asarray(dataset.labels)
            num_classes = int(labels.max()) + 1
            self._class_pools = [
                np.flatnonzero(labels == c) for c in range(num_classes)
            ]
        #: live clients and their checkout depth
        self._active: dict[int, Client] = {}
        self._refs: dict[int, int] = {}
        #: cold store: parties that participated before, keyed by id —
        #: O(touched parties), independent of ``size``
        self._spilled: dict[int, dict] = {}

    # -- derivation (pure functions of (seed, party)) -------------------
    def _party_rng(self, tag: int, party: int) -> np.random.Generator:
        return np.random.default_rng((self.seed & 0x7FFFFFFF, tag, int(party)))

    def party_indices(self, party: int) -> np.ndarray:
        """The party's sample indices into the base dataset (pure)."""
        rng = self._party_rng(0, party)
        if self._class_pools is None:
            return np.sort(
                rng.choice(len(self.dataset), self.samples_per_client, replace=False)
            )
        proportions = rng.dirichlet(
            np.full(len(self._class_pools), self.skew_beta)
        )
        counts = rng.multinomial(self.samples_per_client, proportions)
        chunks = []
        for pool, count in zip(self._class_pools, counts):
            if count == 0:
                continue
            if len(pool) == 0:
                # Empty class in the base pool: redistribute uniformly.
                chunks.append(rng.choice(len(self.dataset), count, replace=True))
                continue
            chunks.append(pool[rng.integers(0, len(pool), size=count)])
        return np.sort(np.concatenate(chunks))

    def _materialize(self, party: int) -> Client:
        indices = self.party_indices(party)
        client = Client(
            client_id=int(party),
            dataset=Subset(self.dataset, indices),
            rng=self._party_rng(1, party),
        )
        cold = self._spilled.pop(party, None)
        if cold is not None:
            client.rng.bit_generator.state = cold["rng"]
            client.state = cold["state"]
        return client

    # -- lifecycle ------------------------------------------------------
    def checkout(self, party: int) -> Client:
        if not 0 <= party < self.size:
            raise IndexError(
                f"party {party} outside population [0, {self.size})"
            )
        if party not in self._active:
            self._active[party] = self._materialize(party)
            self._refs[party] = 0
        self._refs[party] += 1
        return self._active[party]

    def release(self, party: int) -> None:
        refs = self._refs.get(party)
        if refs is None:
            raise RuntimeError(f"release of party {party} without checkout")
        if refs > 1:
            self._refs[party] = refs - 1
            return
        client = self._active.pop(party)
        del self._refs[party]
        self._spilled[party] = {
            "rng": client.rng.bit_generator.state,
            "state": client.state,
        }

    def active(self, party: int) -> Client:
        client = self._active.get(party)
        if client is None:
            raise KeyError(
                f"party {party} is not checked out; executors must only "
                "touch parties the engine dispatched"
            )
        return client

    @property
    def materialized_count(self) -> int:
        return len(self._active)

    @property
    def spilled_count(self) -> int:
        """Cold-store entries (parties that participated and went cold)."""
        return len(self._spilled)

    def __repr__(self) -> str:
        skew = "iid" if self.skew_beta is None else f"dirichlet({self.skew_beta})"
        return (
            f"VirtualPopulation(size={self.size}, "
            f"samples_per_client={self.samples_per_client}, {skew})"
        )
