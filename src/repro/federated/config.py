"""Run configuration shared by server, clients and algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.federated.privacy import DifferentialPrivacy


@dataclass
class FederatedConfig:
    """Hyper-parameters of a federated run (paper Section 5 defaults).

    Attributes
    ----------
    num_rounds:
        Communication rounds ``T`` (50 for Table 3, 100 for Figure 7,
        500 for Figure 12).
    local_epochs:
        ``E``, the number of local passes per round (paper default 10).
    batch_size:
        Local mini-batch size (paper default 64).
    lr:
        Local SGD learning rate (0.01; 0.1 for rcv1).
    momentum:
        Local SGD momentum (paper uses 0.9).
    weight_decay:
        Local L2 penalty (paper uses none).
    sample_fraction:
        Fraction of parties sampled each round (1.0 = full participation,
        the paper's default; 0.1 with 100 parties for Figure 12).
    server_lr:
        Server-side step on the aggregated update (the ``eta`` of
        Algorithm 1 line 9; 1.0 recovers plain weighted model averaging,
        which is what the reference implementation does).
    bn_policy:
        ``"average"`` — batch-norm layers are averaged and broadcast like
        every other weight (the paper's naive default that Finding 7
        criticizes); ``"local"`` — every party keeps its own batch-norm
        entries (learned gamma/beta and running statistics) across rounds,
        the FedBN-style remedy the paper's Section 6.2 sketches.  The
        server still averages BN entries into its own copy so the global
        model remains evaluable.
    eval_every:
        Evaluate the global model on the test set every k rounds.
    eval_batch_size:
        Batch size for evaluation passes.
    seed:
        Seeds party sampling and local shuffling.
    dp:
        Optional :class:`~repro.federated.privacy.DifferentialPrivacy`
        settings; when set, local training clips each batch gradient and
        adds Gaussian noise (paper Section 6.1's future direction).
    sampler:
        Party-sampling policy under partial participation: ``"uniform"``
        (the paper's default, Algorithm 1 line 6) or ``"stratified"``
        (the Section 6.1 "non-IID resistant sampling" proposal — parties
        chosen so the sampled pool's label mix tracks the global one).
    optimizer:
        Local optimizer: ``"sgd"`` (the paper's choice), ``"adam"`` or
        ``"amsgrad"`` (options the NIID-Bench reference code exposes).
        SCAFFOLD requires ``"sgd"`` — its drift correction is defined on
        the SGD update rule.
    executor:
        Client-execution backend: ``"serial"`` (one process, the classic
        loop), ``"parallel"`` (a fork-based worker pool; requires
        ``num_workers >= 2``), ``"stacked"`` (batch up to ``stack_size``
        clients' local rounds into one fat compiled replay; see
        :class:`~repro.federated.executor.StackedExecutor`), or
        ``"auto"`` (parallel when ``num_workers >= 2`` and the platform
        supports fork, else serial).  Results are bitwise identical
        across backends; see :mod:`repro.federated.executor`.
    num_workers:
        Worker processes for the parallel executor.  ``0`` (and ``1``)
        mean single-process execution.  A good starting point is the
        machine's physical core count, capped by the number of parties
        sampled per round — extra workers only idle.
    stack_size:
        Clients per stack for ``executor="stacked"`` (K; >= 2).  Larger
        stacks amortize NumPy dispatch over more clients per op; returns
        diminish once the fat operands saturate cache/BLAS throughput.
    stacked_tolerance:
        Max-abs per-element drift the stacked executor's serial-vs-
        stacked check accepts.  ``0.0`` (default) demands bitwise
        identity — correct on hosts whose batched GEMM runs each slice
        through the 2-D kernel; hosts that reassociate the reduction
        need a small positive tolerance (the drift check tells you).
    codec:
        Update-compression codec applied to both transport directions
        (see :mod:`repro.comm`): ``"identity"`` (the paper's float32
        wire — the default, bitwise-identical to uncompressed training),
        ``"float16"``, ``"qsgd"`` (stochastic uniform quantization at
        ``codec_bits``), ``"topk"`` or ``"randk"`` (sparsification
        keeping a ``codec_k`` fraction of entries, with per-party
        error-feedback residuals).  Byte accounting is measured from the
        encoded payloads either way.
    codec_bits:
        Bit width for the ``qsgd`` codec (1-16; ignored otherwise).
    codec_k:
        Kept fraction in (0, 1] for the ``topk``/``randk`` codecs
        (ignored otherwise).
    dropout_prob:
        Per-round probability a sampled party drops out (never responds);
        see :class:`~repro.federated.faults.FaultModel`.
    straggler_prob / straggler_factor:
        Probability a responding party runs slowed this round, and the
        compute-time multiplier applied when it does (>= 1).
    crash_prob / crash_after_steps:
        Probability a responding party crashes mid-training, and how many
        local steps it completes before dying.
    deadline:
        Round deadline in relative time units (a fault-free party
        finishes at 1.0; a straggler at ``straggler_factor``).  Parties
        whose slowdown exceeds the deadline time out and are dropped
        from aggregation.  ``None`` waits for every responder.
    over_sample:
        Under an active fault model with partial participation, sample
        extra parties so the *expected completed* count matches
        ``sample_fraction`` (on by default; disable to study raw
        participation decay).
    max_retries:
        Bounded retries the executor attempts for a party whose task
        raises an unexpected (non-injected) exception, before the
        parallel backend falls back to serial re-execution and then
        gives up loudly.
    checkpoint_every:
        Save a full run checkpoint every k rounds (0 = never); see
        :meth:`~repro.federated.server.FederatedServer.save_checkpoint`.
    checkpoint_path:
        Where periodic checkpoints are written (required when
        ``checkpoint_every > 0``).
    compile:
        Capture each (model, batch shape) training step once and replay
        it through preallocated buffers on later steps (see
        :mod:`repro.grad.capture`).  Replays are bitwise identical to
        eager execution, so this is purely a speed knob; models using
        unsupported ops (e.g. dropout) transparently stay eager.
    optimize:
        Run the program optimizer on captured steps (liveness-planned
        buffer arena, dead-op elimination, constant interning).  On by
        default and bitwise-identical by construction; set False to
        reproduce unoptimized programs exactly.  No effect unless
        ``compile`` is on.
    aggregation:
        ``"sync"`` — the classic barrier round (Algorithm 1, the paper's
        protocol); ``"async"`` — FedBuff-style buffered aggregation on
        the virtual-clock event engine
        (:class:`~repro.federated.async_engine.AsyncFederation`): the
        server applies an update as soon as ``buffer_size`` client
        uploads have arrived, and stragglers' deltas land in later
        server steps with recorded staleness.
    sample_per_round:
        Absolute cohort size for the async engine (clients concurrently
        in flight).  ``None`` derives it from ``sample_fraction`` times
        the population.  Ignored by the synchronous server, which sizes
        rounds by ``sample_fraction``.
    buffer_size:
        FedBuff buffer ``M``: client updates per server step under
        ``aggregation="async"``.  ``None`` (default) means the full
        cohort — a synchronization barrier, which reproduces the sync
        server bitwise.  ``M < cohort`` is genuinely asynchronous.
    staleness_exponent:
        Staleness discount ``a`` for async flushes that mix model
        versions: an update trained ``s`` server steps ago is weighted
        by ``(1 + s) ** -a`` on top of its sample count.  ``0.0``
        (default) weights purely by sample count; FedBuff's paper uses
        ``a = 0.5``.
    """

    num_rounds: int = 50
    local_epochs: int = 10
    batch_size: int = 64
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0
    sample_fraction: float = 1.0
    server_lr: float = 1.0
    bn_policy: str = "average"
    eval_every: int = 1
    eval_batch_size: int = 256
    seed: int = 0
    dp: "DifferentialPrivacy | None" = None
    sampler: str = "uniform"
    optimizer: str = "sgd"
    executor: str = "auto"
    num_workers: int = 0
    stack_size: int = 16
    stacked_tolerance: float = 0.0
    codec: str = "identity"
    codec_bits: int = 8
    codec_k: float = 0.1
    dropout_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 1.0
    crash_prob: float = 0.0
    crash_after_steps: int = 1
    deadline: float | None = None
    over_sample: bool = True
    max_retries: int = 1
    checkpoint_every: int = 0
    checkpoint_path: str | None = None
    compile: bool = False
    optimize: bool = True
    aggregation: str = "sync"
    sample_per_round: int | None = None
    buffer_size: int | None = None
    staleness_exponent: float = 0.0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.num_rounds <= 0:
            raise ValueError(f"num_rounds must be positive, got {self.num_rounds}")
        if self.local_epochs <= 0:
            raise ValueError(f"local_epochs must be positive, got {self.local_epochs}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.lr <= 0:
            raise ValueError(f"lr must be positive, got {self.lr}")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(
                f"sample_fraction must be in (0, 1], got {self.sample_fraction}"
            )
        if self.server_lr <= 0:
            raise ValueError(f"server_lr must be positive, got {self.server_lr}")
        if self.bn_policy not in ("average", "local"):
            raise ValueError(
                f"bn_policy must be 'average' or 'local', got {self.bn_policy!r}"
            )
        if self.eval_every <= 0:
            raise ValueError(f"eval_every must be positive, got {self.eval_every}")
        if self.sampler not in ("uniform", "stratified"):
            raise ValueError(
                f"sampler must be 'uniform' or 'stratified', got {self.sampler!r}"
            )
        if self.optimizer not in ("sgd", "adam", "amsgrad"):
            raise ValueError(
                f"optimizer must be 'sgd', 'adam' or 'amsgrad', "
                f"got {self.optimizer!r}"
            )
        if self.executor not in ("auto", "serial", "parallel", "stacked"):
            raise ValueError(
                f"executor must be 'auto', 'serial', 'parallel' or "
                f"'stacked', got {self.executor!r}"
            )
        if self.num_workers < 0:
            raise ValueError(
                f"num_workers must be non-negative, got {self.num_workers}"
            )
        if self.stack_size < 2:
            raise ValueError(
                f"stack_size must be >= 2, got {self.stack_size}"
            )
        if self.stacked_tolerance < 0:
            raise ValueError(
                f"stacked_tolerance must be non-negative, "
                f"got {self.stacked_tolerance}"
            )
        if self.executor == "parallel" and self.num_workers < 2:
            raise ValueError(
                "executor='parallel' needs num_workers >= 2; "
                "use executor='serial' (or 'auto') for single-process runs"
            )
        from repro.comm import CODEC_NAMES

        if self.codec not in CODEC_NAMES:
            raise ValueError(
                f"codec must be one of {CODEC_NAMES}, got {self.codec!r}"
            )
        if not 1 <= self.codec_bits <= 16:
            raise ValueError(
                f"codec_bits must be in [1, 16], got {self.codec_bits}"
            )
        if not 0.0 < self.codec_k <= 1.0:
            raise ValueError(
                f"codec_k must be a fraction in (0, 1], got {self.codec_k}"
            )
        for name in ("dropout_prob", "straggler_prob", "crash_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.dropout_prob + self.crash_prob > 1.0:
            raise ValueError(
                "dropout_prob + crash_prob must not exceed 1, got "
                f"{self.dropout_prob} + {self.crash_prob}"
            )
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        if self.crash_after_steps < 1:
            raise ValueError(
                f"crash_after_steps must be >= 1, got {self.crash_after_steps}"
            )
        if self.deadline is not None and self.deadline < 1.0:
            raise ValueError(
                "deadline is relative to a fault-free party's round time "
                f"(1.0) and must be >= 1, got {self.deadline}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be non-negative, got {self.checkpoint_every}"
            )
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise ValueError(
                "checkpoint_every > 0 needs a checkpoint_path to write to"
            )
        if self.aggregation not in ("sync", "async"):
            raise ValueError(
                f"aggregation must be 'sync' or 'async', got {self.aggregation!r}"
            )
        if self.sample_per_round is not None and self.sample_per_round < 1:
            raise ValueError(
                f"sample_per_round must be >= 1, got {self.sample_per_round}"
            )
        if self.buffer_size is not None and self.buffer_size < 1:
            raise ValueError(
                f"buffer_size must be >= 1, got {self.buffer_size}"
            )
        if (
            self.buffer_size is not None
            and self.sample_per_round is not None
            and self.buffer_size > self.sample_per_round
        ):
            raise ValueError(
                f"buffer_size ({self.buffer_size}) cannot exceed the cohort "
                f"(sample_per_round={self.sample_per_round}): the buffer can "
                "never fill with fewer clients in flight than it holds"
            )
        if self.staleness_exponent < 0:
            raise ValueError(
                f"staleness_exponent must be non-negative, "
                f"got {self.staleness_exponent}"
            )
