"""FedNova (Algorithm 1 with the orange line).

Local training is plain FedAvg (the inherited pure
:meth:`~repro.federated.algorithms.fedavg.FedAvg.local_update`, so FedNova
parallelizes across workers unchanged), but the server normalizes every party's
cumulative update by its local step count before averaging, then rescales
by the weighted-average step count (Algorithm 1 line 10):

    w^{t+1} = w^t - eta * (sum_i |D^i| tau_i / n) * sum_i (|D^i| dw_i) / (n tau_i)

with ``dw_i = w^t - w_i^t``.  This removes the bias towards parties that
happen to take more local steps (bigger datasets at a fixed epoch count,
or faster hardware at a fixed time budget).

Two normalizations are available:

- ``momentum_correction=False`` (default): normalize by the raw
  mini-batch count ``tau_i``, matching the paper's Algorithm 1 and the
  NIID-Bench reference implementation;
- ``momentum_correction=True``: normalize by the *effective* step count
  under heavy-ball momentum from the original FedNova derivation,
  ``||a_i||_1 = (tau_i - rho (1 - rho^tau_i) / (1 - rho)) / (1 - rho)``,
  which accounts for momentum inflating every local update by up to
  ``1/(1-rho)``.
"""

from __future__ import annotations

import numpy as np

from repro.federated.aggregation import (
    apply_update,
    subtract_states,
    weighted_average_states,
)
from repro.federated.algorithms.base import ClientResult
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.config import FederatedConfig


def effective_steps(tau: int, momentum: float) -> float:
    """||a_i||_1: the effective step count of tau momentum-SGD steps."""
    if tau <= 0:
        raise ValueError(f"tau must be positive, got {tau}")
    if not 0.0 <= momentum < 1.0:
        raise ValueError(f"momentum must be in [0, 1), got {momentum}")
    if momentum == 0.0:
        return float(tau)
    rho = momentum
    return (tau - rho * (1.0 - rho**tau) / (1.0 - rho)) / (1.0 - rho)


class FedNova(FedAvg):
    """Normalized averaging of heterogeneous local updates (Algorithm 1, line 10)."""

    name = "fednova"

    def __init__(self, momentum_correction: bool = False):
        self.momentum_correction = momentum_correction

    def _normalizer(self, num_steps: int, config: FederatedConfig) -> float:
        if self.momentum_correction:
            return effective_steps(num_steps, config.momentum)
        return float(num_steps)

    def uplink_metadata_floats(self) -> int:
        """FedNova's normalization needs each party's step count ``tau_i``.

        The old closed-form accounting charged FedNova exactly FedAvg's
        model traffic; the normalization metadata its aggregation rule
        consumes was never counted.  One float per party per round fixes
        that in both the closed-form and measured paths.
        """
        return 1

    def round_payload_floats(self) -> tuple[int, int]:
        """Model state both ways plus the uplink step-count metadata."""
        down, up = super().round_payload_floats()
        return down, up + self.uplink_metadata_floats()

    def aggregate(
        self,
        global_state: dict[str, np.ndarray],
        results: list[ClientResult],
        config: FederatedConfig,
    ) -> dict[str, np.ndarray]:
        for result in results:
            if result.num_steps <= 0:
                raise ValueError(
                    f"client {result.client_id} reported no local steps"
                )
        total = sum(r.num_samples for r in results)
        relative = [r.num_samples / total for r in results]
        normalizers = [self._normalizer(r.num_steps, config) for r in results]

        # tau_eff = sum_i p_i * tau_i  (the paper's  sum |D^i| tau_i / n),
        # with tau replaced by ||a_i||_1 under momentum correction.
        tau_eff = float(sum(p * t for p, t in zip(relative, normalizers)))

        # Normalized direction: sum_i p_i * (dw_i / tau_i).
        direction: dict[str, np.ndarray] = {}
        for p, result, normalizer in zip(relative, results, normalizers):
            delta = subtract_states(global_state, result.state, self.param_keys)
            for key, value in delta.items():
                contribution = (p / normalizer) * value
                if key in direction:
                    direction[key] += contribution
                else:
                    direction[key] = contribution

        scaled = {key: tau_eff * value for key, value in direction.items()}
        new_state = apply_update(global_state, scaled, config.server_lr)

        # Buffers (BN statistics) are not gradient-like: average them.
        if self._buffer_keys:
            averaged_buffers = weighted_average_states(
                [r.state for r in results],
                [r.num_samples for r in results],
                keys=self._buffer_keys,
            )
            for key in self._buffer_keys:
                new_state[key] = averaged_buffers[key]
        return new_state
