"""Algorithm interface: how a round's local updates become a global model.

The server drives the loop; an algorithm provides three hooks:

- :meth:`FedAlgorithm.broadcast_payload` — server-side extras shipped to
  every sampled party at the start of a round (SCAFFOLD's global control
  variate; empty for the FedAvg family);
- :meth:`FedAlgorithm.local_update` — run one party's local work given the
  current global state and the broadcast payload, returning a
  :class:`ClientResult`.  **Purity contract** (what makes client rounds
  safe to run in worker processes, see :mod:`repro.federated.executor`):
  the hook must not mutate algorithm instance state or any client other
  than the one it was given; its ``model`` argument is scratch workspace
  only; persistent per-party state changes go into
  ``ClientResult.client_state`` rather than directly into
  ``client.state``.  Reading ``client.state`` and the immutable key
  caches set up by :meth:`prepare` is fine.
- :meth:`FedAlgorithm.aggregate` — fold the round's results into the next
  global state (server side; may mutate server-held algorithm state).

The server applies each result's ``client_state`` via :meth:`commit`, in
participant order, before aggregating.  :meth:`client_round` bundles
``local_update`` + ``commit`` for single-party use (tests, notebooks).

Algorithms may keep server-side state (SCAFFOLD's global control variate,
FedOpt's momentum buffers) as instance attributes, and per-party state in
``client.state``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grad.nn.module import Module
from repro.federated.aggregation import (
    batch_norm_keys,
    buffer_keys,
    merge_states,
    parameter_keys,
)
from repro.federated.client import Client
from repro.federated.config import FederatedConfig


@dataclass
class ClientResult:
    """What one party sends back to the server."""

    client_id: int
    state: dict[str, np.ndarray]
    num_steps: int
    num_samples: int
    mean_loss: float
    payload: dict = field(default_factory=dict)  # algorithm-specific extras
    #: persistent per-party state updates (SCAFFOLD's ``c_i``, retained BN
    #: entries); the server folds these into ``client.state`` via
    #: :meth:`FedAlgorithm.commit` so ``local_update`` stays pure.
    client_state: dict = field(default_factory=dict)
    #: measured uplink bytes for this party's upload (state + payload
    #: extras + metadata), set by the executor's
    #: :class:`~repro.comm.channel.CommChannel` pass; 0 when no channel
    #: processed the result.
    upload_nbytes: int = 0


class FedAlgorithm:
    """Base class wiring the shared bookkeeping (BN policy, key splits)."""

    name = "base"

    def prepare(self, model: Module, clients: list[Client], config: FederatedConfig) -> None:
        """Called once before round 0; caches key structure."""
        self._param_keys = parameter_keys(model)
        self._buffer_keys = buffer_keys(model)
        self._bn_keys = batch_norm_keys(model)
        self._num_parties = len(clients)
        self._param_numel = sum(p.size for p in model.parameters())
        self._buffer_numel = sum(np.asarray(b).size for b in model.buffers())

    def round_payload_floats(self) -> tuple[int, int]:
        """Per-client (downlink, uplink) float counts for one round.

        The FedAvg family ships the model state both ways.  SCAFFOLD
        overrides this: control variates double the parameter traffic
        (paper Section 3.3, "SCAFFOLD doubles the communication size per
        round").
        """
        state = self._param_numel + self._buffer_numel
        return state, state

    def uplink_metadata_floats(self) -> int:
        """Aggregation scalars a party ships beyond its array streams.

        The float32 accounting treats the base protocol (FedAvg's sample
        counts, losses) as free, matching the paper; algorithms whose
        aggregation consumes *extra* per-party metadata — FedNova's
        normalization step count ``tau_i`` — override this so the
        measured byte path (:mod:`repro.comm`) meters it.
        """
        return 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def broadcast_payload(self) -> dict:
        """Server-side extras shipped to every party this round."""
        return {}

    def local_update(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
        payload: dict,
    ) -> ClientResult:
        """One party's local round — pure; see the module docstring."""
        raise NotImplementedError

    def commit(self, client: Client, result: ClientResult) -> None:
        """Fold a result's persistent per-party state into the client."""
        for key, value in result.client_state.items():
            client.state[key] = value

    def client_round(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
    ) -> ClientResult:
        """Convenience: ``local_update`` + ``commit`` for one party."""
        result = self.local_update(
            model, global_state, client, config, self.broadcast_payload()
        )
        self.commit(client, result)
        return result

    def aggregate(
        self,
        global_state: dict[str, np.ndarray],
        results: list[ClientResult],
        config: FederatedConfig,
    ) -> dict[str, np.ndarray]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """Server-side mutable algorithm state a run checkpoint must carry.

        The FedAvg family is stateless server-side; SCAFFOLD (global
        control variate) and FedOpt (optimizer moments) override both
        hooks.  Returned values must be deep copies — checkpoints may
        outlive the run that produced them.
        """
        return {}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state`; called after :meth:`prepare`."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def load_global_into(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
    ) -> None:
        """Load the broadcast state, honouring the BN policy.

        Under ``bn_policy="local"`` (the FedBN-style remedy the paper's
        Section 6.2 sketches), a party keeps its own batch-norm entries —
        learned affine parameters *and* running statistics — across rounds
        instead of receiving the server's averaged ones.  Keeping only the
        running statistics local would be inert: training-mode BN uses
        batch statistics, so the averaged buffers never influence local
        gradients, only evaluation.
        """
        state = global_state
        if config.bn_policy == "local" and self._bn_keys:
            kept = client.state.get("bn_local")
            if kept is not None:
                state = merge_states(global_state, kept, self._bn_keys)
        model.load_state_dict(state)

    def local_bn_state(self, state: dict, config: FederatedConfig) -> dict:
        """Per-party state entries keeping the post-training BN snapshot.

        Returned (not written) so ``local_update`` stays pure; the server
        commits it into ``client.state`` afterwards.
        """
        if config.bn_policy == "local" and self._bn_keys:
            return {
                "bn_local": {
                    key: np.asarray(state[key]).copy() for key in self._bn_keys
                }
            }
        return {}

    @property
    def param_keys(self) -> list[str]:
        return self._param_keys

    @property
    def all_keys(self) -> list[str]:
        return self._param_keys + self._buffer_keys

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
