"""Algorithm interface: how a round's local updates become a global model.

The server drives the loop; an algorithm provides two hooks:

- :meth:`FedAlgorithm.client_round` — run one party's local work given the
  current global state, returning a :class:`ClientResult`;
- :meth:`FedAlgorithm.aggregate` — fold the round's results into the next
  global state.

Algorithms may keep server-side state (SCAFFOLD's global control variate,
FedOpt's momentum buffers) as instance attributes, and per-party state in
``client.state``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grad.nn.module import Module
from repro.federated.aggregation import (
    batch_norm_keys,
    buffer_keys,
    merge_states,
    parameter_keys,
)
from repro.federated.client import Client
from repro.federated.config import FederatedConfig


@dataclass
class ClientResult:
    """What one party sends back to the server."""

    client_id: int
    state: dict[str, np.ndarray]
    num_steps: int
    num_samples: int
    mean_loss: float
    payload: dict = field(default_factory=dict)  # algorithm-specific extras


class FedAlgorithm:
    """Base class wiring the shared bookkeeping (BN policy, key splits)."""

    name = "base"

    def prepare(self, model: Module, clients: list[Client], config: FederatedConfig) -> None:
        """Called once before round 0; caches key structure."""
        self._param_keys = parameter_keys(model)
        self._buffer_keys = buffer_keys(model)
        self._bn_keys = batch_norm_keys(model)
        self._num_parties = len(clients)
        self._param_numel = sum(p.size for p in model.parameters())
        self._buffer_numel = sum(np.asarray(b).size for b in model.buffers())

    def round_payload_floats(self) -> tuple[int, int]:
        """Per-client (downlink, uplink) float counts for one round.

        The FedAvg family ships the model state both ways.  SCAFFOLD
        overrides this: control variates double the parameter traffic
        (paper Section 3.3, "SCAFFOLD doubles the communication size per
        round").
        """
        state = self._param_numel + self._buffer_numel
        return state, state

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def client_round(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
    ) -> ClientResult:
        raise NotImplementedError

    def aggregate(
        self,
        global_state: dict[str, np.ndarray],
        results: list[ClientResult],
        config: FederatedConfig,
    ) -> dict[str, np.ndarray]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def load_global_into(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
    ) -> None:
        """Load the broadcast state, honouring the BN policy.

        Under ``bn_policy="local"`` (the FedBN-style remedy the paper's
        Section 6.2 sketches), a party keeps its own batch-norm entries —
        learned affine parameters *and* running statistics — across rounds
        instead of receiving the server's averaged ones.  Keeping only the
        running statistics local would be inert: training-mode BN uses
        batch statistics, so the averaged buffers never influence local
        gradients, only evaluation.
        """
        state = global_state
        if config.bn_policy == "local" and self._bn_keys:
            kept = client.state.get("bn_local")
            if kept is not None:
                state = merge_states(global_state, kept, self._bn_keys)
        model.load_state_dict(state)

    def stash_local_buffers(self, client: Client, state: dict, config: FederatedConfig) -> None:
        """Remember the party's post-training BN entries if keeping local."""
        if config.bn_policy == "local" and self._bn_keys:
            client.state["bn_local"] = {
                key: np.asarray(state[key]).copy() for key in self._bn_keys
            }

    @property
    def param_keys(self) -> list[str]:
        return self._param_keys

    @property
    def all_keys(self) -> list[str]:
        return self._param_keys + self._buffer_keys

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
