"""FedAvg (Algorithm 1 without the colored lines).

Each sampled party runs E local epochs of SGD; the server replaces the
global model with the data-size-weighted average of the returned local
models.  With ``server_lr = 1`` the delta form of Algorithm 1 line 9,

    w^{t+1} = w^t - eta * sum_i (|D^i| / n) * (w^t - w_i^t),

is exactly weighted model averaging.
"""

from __future__ import annotations

import numpy as np

from repro.grad.nn.module import Module
from repro.federated.aggregation import subtract_states, apply_update, weighted_average_states
from repro.federated.algorithms.base import ClientResult, FedAlgorithm
from repro.federated.client import Client
from repro.federated.config import FederatedConfig
from repro.federated.trainer import run_local_training


class FedAvg(FedAlgorithm):
    """Weighted model averaging (McMahan et al.); see module docstring."""

    name = "fedavg"

    def local_update(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
        payload: dict,
    ) -> ClientResult:
        self.load_global_into(model, global_state, client, config)
        result = run_local_training(model, client, config)
        return ClientResult(
            client_id=client.client_id,
            state=result.state,
            num_steps=result.num_steps,
            num_samples=result.num_samples,
            mean_loss=result.mean_loss,
            client_state=self.local_bn_state(result.state, config),
        )

    def aggregate(
        self,
        global_state: dict[str, np.ndarray],
        results: list[ClientResult],
        config: FederatedConfig,
    ) -> dict[str, np.ndarray]:
        weights = [r.num_samples for r in results]
        averaged = weighted_average_states(
            [r.state for r in results], weights, keys=self.all_keys
        )
        if config.server_lr == 1.0:
            return averaged
        # General form: step from the old global model towards the average.
        delta = subtract_states(global_state, averaged, self.param_keys)
        stepped = apply_update(global_state, delta, config.server_lr)
        # Buffers are not part of the optimization geometry; take the average.
        for key in self._buffer_keys:
            stepped[key] = averaged[key]
        return stepped
