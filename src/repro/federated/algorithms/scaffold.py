"""SCAFFOLD (Algorithm 2).

Control variates estimate the update direction of the server (``c``) and of
each party (``c_i``); their difference approximates the client drift, and
every local SGD step is corrected by ``- c_i + c`` (line 20).

After local training, the party refreshes its control variate (line 23):

- option (i): ``c_i* = ∇L_i(w^t)`` — the full-batch local gradient at the
  *global* model (more stable, one extra pass over the local data);
- option (ii): ``c_i* = c_i - c + (w^t - w_i^t) / (tau_i * eta)`` — reuse
  the already-computed update (cheaper; the NIID-Bench default).

The server then averages the model deltas exactly like FedAvg (line 9) and
moves its control variate by the average of the parties' control-variate
deltas scaled by 1/N — note N is the *total* number of parties, which is
why partial participation starves the estimate (Finding 8).
"""

from __future__ import annotations

import numpy as np

from repro.grad.nn.module import Module
from repro.federated.aggregation import weighted_average_states
from repro.federated.algorithms.base import ClientResult, FedAlgorithm
from repro.federated.client import Client
from repro.federated.config import FederatedConfig
from repro.federated.trainer import full_batch_gradient, run_local_training


class Scaffold(FedAlgorithm):
    """Stochastic controlled averaging with control variates (Algorithm 2)."""

    name = "scaffold"

    def __init__(self, option: int = 2, correction_mode: str = "step"):
        if option not in (1, 2):
            raise ValueError(f"option must be 1 or 2, got {option}")
        if correction_mode not in ("step", "grad"):
            raise ValueError(
                f"correction_mode must be 'step' or 'grad', got {correction_mode!r}"
            )
        self.option = option
        #: "step" applies the drift correction directly to the parameters
        #: after the momentum step (NIID-Bench reference behaviour);
        #: "grad" adds it to the raw gradient (Algorithm 2 literally),
        #: which momentum amplifies by ~1/(1-m) — unstable at small tau.
        self.correction_mode = correction_mode
        self._server_c: list[np.ndarray] | None = None

    def prepare(self, model: Module, clients, config: FederatedConfig) -> None:
        super().prepare(model, clients, config)
        self._server_c = [
            np.zeros(p.data.shape, dtype=np.float64) for p in model.parameters()
        ]

    @property
    def server_control(self) -> list[np.ndarray]:
        if self._server_c is None:
            raise RuntimeError("Scaffold.prepare() was not called")
        return self._server_c

    def broadcast_payload(self) -> dict:
        """Ship the global control variate ``c`` (Algorithm 2, line 17)."""
        return {"server_control": self.server_control}

    def local_update(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
        payload: dict,
    ) -> ClientResult:
        self.load_global_into(model, global_state, client, config)
        c = payload["server_control"]
        # c_i defaults to zero for a party's first participation; the
        # refreshed value is *returned* (client_state), not written here,
        # so this hook stays pure for parallel execution.
        c_i = client.state.get("scaffold_c")
        if c_i is None:
            c_i = [np.zeros_like(cg) for cg in c]
        global_params = [param.data.copy() for param in model.parameters()]

        # Line 20: step on grad - c_i + c, i.e. add (c - c_i) to every grad.
        correction = [
            (cg - cl).astype(np.float32) for cg, cl in zip(c, c_i)
        ]
        result = run_local_training(
            model, client, config,
            correction=correction,
            correction_mode=self.correction_mode,
        )

        # Line 23: refresh the local control variate.
        if self.option == 1:
            # Gradient at the *global* model: reload it, differentiate, then
            # restore the trained weights (the gradient pass also perturbs
            # BN running stats, so we snapshot/restore the full state).
            trained_state = result.state
            model.load_state_dict(global_state)
            c_star = [g.astype(np.float64) for g in full_batch_gradient(model, client, config)]
            model.load_state_dict(trained_state)
        else:
            local_params = [
                np.asarray(result.state[key], dtype=np.float64)
                for key in self.param_keys
            ]
            scale = 1.0 / (result.num_steps * config.lr)
            c_star = [
                ci - cg + scale * (gw.astype(np.float64) - lw)
                for ci, cg, gw, lw in zip(c_i, c, global_params, local_params)
            ]

        delta_c = [new - old for new, old in zip(c_star, c_i)]
        client_state = {"scaffold_c": c_star}
        client_state.update(self.local_bn_state(result.state, config))

        return ClientResult(
            client_id=client.client_id,
            state=result.state,
            num_steps=result.num_steps,
            num_samples=result.num_samples,
            mean_loss=result.mean_loss,
            payload={"delta_c": delta_c},
            client_state=client_state,
        )

    def round_payload_floats(self) -> tuple[int, int]:
        """Model state both ways plus control variates both ways."""
        state = self._param_numel + self._buffer_numel
        return state + self._param_numel, state + self._param_numel

    def aggregate(
        self,
        global_state: dict[str, np.ndarray],
        results: list[ClientResult],
        config: FederatedConfig,
    ) -> dict[str, np.ndarray]:
        # Line 9: weighted model averaging, same as FedAvg.
        averaged = weighted_average_states(
            [r.state for r in results],
            [r.num_samples for r in results],
            keys=self.all_keys,
        )
        new_state = {
            key: np.asarray(value).copy() for key, value in global_state.items()
        }
        for key in self.all_keys:
            new_state[key] = averaged[key]

        # Line 10: c <- c + (1/N) * sum_i delta_c_i  (N = total parties).
        for result in results:
            for slot, delta in zip(self._server_c, result.payload["delta_c"]):
                slot += delta / self._num_parties
        return new_state

    def checkpoint_state(self) -> dict:
        return {"server_c": [c.copy() for c in self.server_control]}

    def restore_state(self, state: dict) -> None:
        self._server_c = [np.asarray(c).copy() for c in state["server_c"]]

    def __repr__(self) -> str:
        return f"Scaffold(option={self.option}, correction_mode={self.correction_mode!r})"
