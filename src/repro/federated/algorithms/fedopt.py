"""FedOpt extension: server-side adaptive optimization (Reddi et al.).

Not one of the paper's four studied algorithms, but cited in its related
work (FedML "provides ... FedOpt") and a natural ablation target for the
``server_lr`` knob: the round's aggregated delta is treated as a
pseudo-gradient and fed to a server optimizer.

Variants:
- ``"sgdm"``  — FedAvgM: server momentum over the pseudo-gradient;
- ``"adam"``  — FedAdam: Adam on the pseudo-gradient.

Client rounds are FedAvg's pure ``local_update`` (parallel-executor safe);
all of FedOpt's mutable state lives server-side in :meth:`aggregate`.
"""

from __future__ import annotations

import numpy as np

from repro.grad.nn.module import Module
from repro.federated.aggregation import subtract_states, weighted_average_states
from repro.federated.algorithms.base import ClientResult
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.config import FederatedConfig


class FedOpt(FedAvg):
    """Server-side optimizer over the round's pseudo-gradient (FedAvgM/FedAdam)."""

    name = "fedopt"

    def __init__(
        self,
        variant: str = "sgdm",
        server_momentum: float = 0.9,
        beta2: float = 0.99,
        eps: float = 1e-3,
        lr: float | None = None,
    ):
        if variant not in ("sgdm", "adam"):
            raise ValueError(f"variant must be 'sgdm' or 'adam', got {variant!r}")
        if lr is not None and lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.variant = variant
        # Adam's effective step is ~lr per round regardless of gradient
        # scale, so the FedAvg-compatible server_lr=1 default is far too
        # big; FedAdam needs its own, much smaller, default.
        self.lr = lr if lr is not None else (0.1 if variant == "adam" else 1.0)
        self.server_momentum = server_momentum
        self.beta2 = beta2
        self.eps = eps
        self._momentum_buf: dict[str, np.ndarray] | None = None
        self._second_moment: dict[str, np.ndarray] | None = None
        self._step = 0

    def prepare(self, model: Module, clients, config: FederatedConfig) -> None:
        super().prepare(model, clients, config)
        self._momentum_buf = None
        self._second_moment = None
        self._step = 0

    def aggregate(
        self,
        global_state: dict[str, np.ndarray],
        results: list[ClientResult],
        config: FederatedConfig,
    ) -> dict[str, np.ndarray]:
        averaged = weighted_average_states(
            [r.state for r in results],
            [r.num_samples for r in results],
            keys=self.all_keys,
        )
        # Pseudo-gradient: the negated average model movement this round.
        pseudo_grad = subtract_states(global_state, averaged, self.param_keys)

        if self._momentum_buf is None:
            self._momentum_buf = {k: np.zeros_like(v) for k, v in pseudo_grad.items()}
        if self.variant == "adam" and self._second_moment is None:
            self._second_moment = {k: np.zeros_like(v) for k, v in pseudo_grad.items()}

        self._step += 1
        new_state = {k: np.asarray(v).copy() for k, v in global_state.items()}
        for key, grad in pseudo_grad.items():
            buf = self._momentum_buf[key]
            if self.variant == "sgdm":
                buf[:] = self.server_momentum * buf + grad.reshape(buf.shape)
                step = self.lr * buf
            else:
                beta1 = self.server_momentum
                buf[:] = beta1 * buf + (1 - beta1) * grad.reshape(buf.shape)
                second = self._second_moment[key]
                second[:] = self.beta2 * second + (1 - self.beta2) * grad.reshape(second.shape) ** 2
                m_hat = buf / (1 - beta1**self._step)
                v_hat = second / (1 - self.beta2**self._step)
                step = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            ref = np.asarray(global_state[key])
            new_state[key] = (ref.astype(np.float64) - step).astype(ref.dtype)

        # Buffers follow the plain average.
        for key in self._buffer_keys:
            new_state[key] = averaged[key]
        return new_state

    def checkpoint_state(self) -> dict:
        def copied(buf):
            return None if buf is None else {k: v.copy() for k, v in buf.items()}

        return {
            "momentum": copied(self._momentum_buf),
            "second_moment": copied(self._second_moment),
            "step": self._step,
        }

    def restore_state(self, state: dict) -> None:
        def copied(buf):
            return None if buf is None else {k: np.asarray(v).copy() for k, v in buf.items()}

        self._momentum_buf = copied(state["momentum"])
        self._second_moment = copied(state["second_moment"])
        self._step = int(state["step"])

    def __repr__(self) -> str:
        return f"FedOpt(variant={self.variant!r}, lr={self.lr}, server_momentum={self.server_momentum})"
