"""The federated optimization algorithms the paper studies."""

from repro.federated.algorithms.base import ClientResult, FedAlgorithm
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.fedprox import FedProx
from repro.federated.algorithms.scaffold import Scaffold
from repro.federated.algorithms.fednova import FedNova
from repro.federated.algorithms.fedopt import FedOpt

ALGORITHM_NAMES = ("fedavg", "fedprox", "scaffold", "fednova", "fedopt")


def make_algorithm(name: str, **kwargs) -> FedAlgorithm:
    """Build an algorithm by name.

    ``kwargs`` are algorithm-specific: ``mu`` for FedProx, ``option`` for
    SCAFFOLD, ``server_momentum``/``variant`` for FedOpt.
    """
    key = name.lower()
    if key == "fedavg":
        return FedAvg(**kwargs)
    if key == "fedprox":
        return FedProx(**kwargs)
    if key == "scaffold":
        return Scaffold(**kwargs)
    if key == "fednova":
        return FedNova(**kwargs)
    if key == "fedopt":
        return FedOpt(**kwargs)
    raise KeyError(f"unknown algorithm {name!r}; available: {ALGORITHM_NAMES}")


__all__ = [
    "FedAlgorithm",
    "ClientResult",
    "FedAvg",
    "FedProx",
    "Scaffold",
    "FedNova",
    "FedOpt",
    "make_algorithm",
    "ALGORITHM_NAMES",
]
