"""The federated optimization algorithms the paper studies."""

from repro.federated.algorithms.base import ClientResult, FedAlgorithm
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.algorithms.fedprox import FedProx
from repro.federated.algorithms.scaffold import Scaffold
from repro.federated.algorithms.fednova import FedNova
from repro.federated.algorithms.fedopt import FedOpt
from repro.registry import Registry

ALGORITHMS = Registry("algorithm")
ALGORITHMS.register("fedavg", FedAvg, summary="weighted model averaging (Algorithm 1)")
ALGORITHMS.register("fedprox", FedProx, summary="FedAvg + proximal term mu")
ALGORITHMS.register("scaffold", Scaffold, summary="control-variate drift correction")
ALGORITHMS.register("fednova", FedNova, summary="normalized averaging over tau_i")
ALGORITHMS.register("fedopt", FedOpt, summary="server-side momentum/adaptive step")

ALGORITHM_NAMES = ALGORITHMS.names()


def make_algorithm(name: str, **kwargs) -> FedAlgorithm:
    """Build an algorithm by name.

    ``kwargs`` are algorithm-specific: ``mu`` for FedProx, ``option`` for
    SCAFFOLD, ``server_momentum``/``variant`` for FedOpt.
    """
    try:
        return ALGORITHMS.build(name, **kwargs)
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {ALGORITHM_NAMES}"
        ) from None


__all__ = [
    "FedAlgorithm",
    "ClientResult",
    "FedAvg",
    "FedProx",
    "Scaffold",
    "FedNova",
    "FedOpt",
    "make_algorithm",
    "ALGORITHMS",
    "ALGORITHM_NAMES",
]
