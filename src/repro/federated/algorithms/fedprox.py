"""FedProx (Algorithm 1 with the red line).

Identical to FedAvg except the local objective gains a proximal term

    L(w) = sum_b l(w; b) + (mu / 2) * ||w - w^t||^2,

implemented as an extra ``mu * (w - w^t)`` on every local gradient (the
optimizer's anchor mechanism).  ``mu = 0`` reduces exactly to FedAvg — a
property the test suite pins down.
"""

from __future__ import annotations

import numpy as np

from repro.grad.nn.module import Module
from repro.federated.algorithms.base import ClientResult
from repro.federated.algorithms.fedavg import FedAvg
from repro.federated.client import Client
from repro.federated.config import FederatedConfig
from repro.federated.trainer import run_local_training


class FedProx(FedAvg):
    """FedAvg plus a proximal term of weight ``mu`` in the local objective."""

    name = "fedprox"

    def __init__(self, mu: float = 0.01):
        if mu < 0:
            raise ValueError(f"mu must be non-negative, got {mu}")
        self.mu = mu

    def local_update(
        self,
        model: Module,
        global_state: dict[str, np.ndarray],
        client: Client,
        config: FederatedConfig,
        payload: dict,
    ) -> ClientResult:
        self.load_global_into(model, global_state, client, config)
        # Anchor at the just-loaded global weights, in parameter order.
        anchor = [param.data.copy() for param in model.parameters()]
        result = run_local_training(
            model, client, config, proximal_mu=self.mu, anchor=anchor
        )
        return ClientResult(
            client_id=client.client_id,
            state=result.state,
            num_steps=result.num_steps,
            num_samples=result.num_samples,
            mean_loss=result.mean_loss,
            client_state=self.local_bn_state(result.state, config),
        )

    def __repr__(self) -> str:
        return f"FedProx(mu={self.mu})"
