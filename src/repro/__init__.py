"""NIID-Bench reproduction: federated learning on non-IID data silos.

Reproduction of Li, Diao, Chen & He, *"Federated Learning on Non-IID Data
Silos: An Experimental Study"* (ICDE 2022), built from scratch on NumPy:

- :mod:`repro.grad` — autodiff/NN substrate (the PyTorch stand-in);
- :mod:`repro.data` — datasets and synthetic stand-ins for the paper's nine;
- :mod:`repro.partition` — the six NIID-Bench partitioning strategies;
- :mod:`repro.models` — the paper's CNN/MLP plus VGG-9 and ResNets;
- :mod:`repro.federated` — FedAvg, FedProx, SCAFFOLD, FedNova (+ FedOpt);
- :mod:`repro.metrics` — accuracy and drift diagnostics;
- :mod:`repro.experiments` — configs, runner, and per-table/figure
  reproduction entry points.

Quickstart::

    from repro import run_federated_experiment

    outcome = run_federated_experiment(
        dataset="mnist", partition="#C=2", algorithm="fedavg",
        num_rounds=10,
    )
    print(outcome.final_accuracy)
"""

from repro.experiments.runner import ExperimentOutcome, run_federated_experiment, run_spec
from repro.spec import RunSpec

__version__ = "0.1.0"

__all__ = [
    "run_federated_experiment",
    "run_spec",
    "RunSpec",
    "ExperimentOutcome",
    "__version__",
]
