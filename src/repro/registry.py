"""The unified component registry behind every "build X by name" surface.

One :class:`Registry` class replaces the repo's previous ad-hoc lookup
tables (dataset generators, model builders, partition-strategy parsers,
the algorithm if/elif chain, the codec factory).  Each component family
instantiates a registry, registers its factories under canonical names,
and exposes the same thin helpers it always did — so call sites keep
working while ``repro.spec`` validates :class:`~repro.spec.RunSpec`
fields and ``repro list`` prints live documentation from one place.

Registries preserve registration order (it is the order names appear in
CLI help and ``repro list``) and normalize lookups, so ``CIFAR-10`` and
``cifar10`` resolve to the same entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


def default_normalize(name: str) -> str:
    """Case-insensitive, dash/underscore-insensitive lookup key."""
    return name.strip().lower().replace("-", "").replace("_", "")


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its canonical name, factory and docs."""

    name: str
    factory: Callable
    summary: str = ""


class Registry:
    """Name -> factory mapping shared by every component family.

    Parameters
    ----------
    kind:
        Human-readable family name used in error messages and listings
        (``"dataset"``, ``"model"``, ``"algorithm"``, ...).
    normalize:
        How lookups (and registrations) map a user-supplied name onto a
        key; defaults to :func:`default_normalize`.
    """

    def __init__(self, kind: str, normalize: Callable[[str], str] | None = None):
        self.kind = kind
        self._normalize = normalize or default_normalize
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self, name: str, factory: Callable | None = None, *, summary: str = ""
    ):
        """Register ``factory`` under ``name`` (usable as a decorator).

        Duplicate registrations are an error: silently replacing a
        component is exactly the class of bug registries exist to catch.
        """

        def _register(factory: Callable) -> Callable:
            key = self._normalize(name)
            if key in self._entries:
                raise ValueError(
                    f"duplicate {self.kind} registration for {name!r}"
                )
            self._entries[key] = RegistryEntry(
                name=name, factory=factory, summary=summary
            )
            return factory

        if factory is None:
            return _register
        return _register(factory)

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``; KeyError lists options."""
        key = self._normalize(name)
        if key not in self._entries:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {list(self.names())}"
            )
        return self._entries[key].factory

    def build(self, name: str, *args, **kwargs):
        """Look up ``name`` and call its factory."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(entry.name for entry in self._entries.values())

    def entries(self) -> tuple[RegistryEntry, ...]:
        """All entries in registration order (for listings)."""
        return tuple(self._entries.values())

    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.names())

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self)} entries)"
