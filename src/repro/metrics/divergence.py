"""Model-space divergence diagnostics.

The paper explains non-IID degradation through *drift*: local models move
towards local optima that disagree (Figure 2).  These helpers quantify that
drift so tests and ablations can assert it, instead of eyeballing curves.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from repro.grad.serialize import state_dict_to_vector


def state_distance(
    a: dict[str, np.ndarray],
    b: dict[str, np.ndarray],
    keys: Sequence[str] | None = None,
) -> float:
    """Euclidean distance between two state dicts over ``keys``."""
    if keys is None:
        keys = sorted(set(a) & set(b))
    va = state_dict_to_vector(a, keys)
    vb = state_dict_to_vector(b, keys)
    return float(np.linalg.norm(va - vb))


def update_norm(
    before: dict[str, np.ndarray],
    after: dict[str, np.ndarray],
    keys: Sequence[str] | None = None,
) -> float:
    """Size of a local update ``||w^t - w_i^t||`` (drift magnitude)."""
    return state_distance(before, after, keys)


def pairwise_weight_divergence(
    states: Sequence[dict[str, np.ndarray]],
    keys: Sequence[str] | None = None,
) -> float:
    """Mean pairwise distance among party models after local training.

    Near zero under IID data (parties agree); grows with label skew —
    the measurable counterpart of the paper's Figure 2 intuition.
    """
    if len(states) < 2:
        return 0.0
    distances = [
        state_distance(a, b, keys) for a, b in combinations(states, 2)
    ]
    return float(np.mean(distances))
