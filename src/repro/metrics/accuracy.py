"""Top-1 accuracy — the paper's benchmark metric."""

from __future__ import annotations

from repro.federated.evaluation import evaluate_accuracy
from repro.grad.nn.module import Module


def top1_accuracy(model: Module, dataset, batch_size: int = 256) -> float:
    """Alias of :func:`repro.federated.evaluation.evaluate_accuracy`."""
    return evaluate_accuracy(model, dataset, batch_size)
