"""Metrics: accuracy plus non-IID profiling utilities.

Partition-level skew metrics live in :mod:`repro.partition.stats`; this
package adds model-space diagnostics used to analyze *why* runs destabilize
(drift norms, weight divergence), supporting the paper's Section 6
discussion of profiling non-IID data.
"""

from repro.metrics.accuracy import top1_accuracy
from repro.metrics.divergence import (
    pairwise_weight_divergence,
    state_distance,
    update_norm,
)

__all__ = [
    "top1_accuracy",
    "state_distance",
    "update_norm",
    "pairwise_weight_divergence",
]
