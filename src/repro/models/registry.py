"""Build models by name, with shapes taken from a :class:`DatasetInfo`."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DatasetInfo
from repro.grad.nn.module import Module
from repro.models.cnn import PaperCNN
from repro.models.mlp import LogisticRegression, TabularMLP
from repro.models.resnet import resnet8, resnet20, resnet50
from repro.models.vgg import vgg9

MODEL_NAMES = ("cnn", "mlp", "logistic", "vgg9", "resnet8", "resnet20", "resnet50")


def default_model_for(info: DatasetInfo) -> str:
    """The paper's model choice: CNN for images, MLP for tabular data."""
    return "cnn" if info.modality == "image" else "mlp"


def build_model(
    name: str,
    info: DatasetInfo,
    seed: int = 0,
    **kwargs,
) -> Module:
    """Construct a model suited to ``info`` with deterministic init.

    Parameters
    ----------
    name:
        One of :data:`MODEL_NAMES`, or ``"default"`` for the paper's
        per-modality choice.
    info:
        Dataset description providing input shape and class count.
    seed:
        Seeds the weight initialization.
    kwargs:
        Forwarded to the model constructor (e.g. ``width`` for vgg9,
        ``base_width`` for resnet50).
    """
    rng = np.random.default_rng(seed)
    key = name.lower()
    if key == "default":
        key = default_model_for(info)

    if key in ("mlp", "logistic"):
        cls = TabularMLP if key == "mlp" else LogisticRegression
        return cls(
            in_features=info.num_features,
            num_classes=info.num_classes,
            rng=rng,
            **kwargs,
        )

    if info.modality != "image":
        raise ValueError(f"model {name!r} needs image input, dataset is {info.modality}")
    channels, height, width = info.input_shape
    if height != width:
        raise ValueError(f"expected square images, got {info.input_shape}")

    if key == "cnn":
        return PaperCNN(
            in_channels=channels,
            image_size=height,
            num_classes=info.num_classes,
            rng=rng,
            **kwargs,
        )
    if key == "vgg9":
        return vgg9(
            in_channels=channels,
            image_size=height,
            num_classes=info.num_classes,
            rng=rng,
            **kwargs,
        )
    if key in ("resnet8", "resnet20", "resnet50"):
        builder = {"resnet8": resnet8, "resnet20": resnet20, "resnet50": resnet50}[key]
        return builder(in_channels=channels, num_classes=info.num_classes, rng=rng, **kwargs)

    raise KeyError(f"unknown model {name!r}; available: {MODEL_NAMES}")
