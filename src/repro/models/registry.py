"""Build models by name, with shapes taken from a :class:`DatasetInfo`.

Model builders live in the unified :class:`repro.registry.Registry`;
each factory takes ``(info, rng, **kwargs)`` and returns a constructed
:class:`~repro.grad.nn.module.Module`.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import DatasetInfo
from repro.grad.nn.module import Module
from repro.models.cnn import PaperCNN
from repro.models.mlp import LogisticRegression, TabularMLP
from repro.models.resnet import resnet8, resnet20, resnet50
from repro.models.vgg import vgg9
from repro.registry import Registry

MODELS = Registry("model")


def _tabular_factory(cls):
    def build(info: DatasetInfo, rng: np.random.Generator, **kwargs) -> Module:
        return cls(
            in_features=info.num_features,
            num_classes=info.num_classes,
            rng=rng,
            **kwargs,
        )

    return build


def _image_factory(name: str, builder, needs_image_size: bool = True):
    def build(info: DatasetInfo, rng: np.random.Generator, **kwargs) -> Module:
        if info.modality != "image":
            raise ValueError(
                f"model {name!r} needs image input, dataset is {info.modality}"
            )
        channels, height, width = info.input_shape
        if height != width:
            raise ValueError(f"expected square images, got {info.input_shape}")
        extra = {"image_size": height} if needs_image_size else {}
        return builder(
            in_channels=channels,
            num_classes=info.num_classes,
            rng=rng,
            **extra,
            **kwargs,
        )

    return build


MODELS.register(
    "cnn", _image_factory("cnn", PaperCNN), summary="the paper's simple CNN (images)"
)
MODELS.register(
    "mlp", _tabular_factory(TabularMLP), summary="the paper's MLP (tabular)"
)
MODELS.register(
    "logistic", _tabular_factory(LogisticRegression), summary="linear baseline (tabular)"
)
MODELS.register("vgg9", _image_factory("vgg9", vgg9), summary="VGG-9 (images)")
MODELS.register(
    "resnet8",
    _image_factory("resnet8", resnet8, needs_image_size=False),
    summary="8-layer ResNet (images)",
)
MODELS.register(
    "resnet20",
    _image_factory("resnet20", resnet20, needs_image_size=False),
    summary="20-layer ResNet (images)",
)
MODELS.register(
    "resnet50",
    _image_factory("resnet50", resnet50, needs_image_size=False),
    summary="50-layer bottleneck ResNet (images)",
)

MODEL_NAMES = MODELS.names()


def default_model_for(info: DatasetInfo) -> str:
    """The paper's model choice: CNN for images, MLP for tabular data."""
    return "cnn" if info.modality == "image" else "mlp"


def build_model(
    name: str,
    info: DatasetInfo,
    seed: int = 0,
    **kwargs,
) -> Module:
    """Construct a model suited to ``info`` with deterministic init.

    Parameters
    ----------
    name:
        One of :data:`MODEL_NAMES`, or ``"default"`` for the paper's
        per-modality choice.
    info:
        Dataset description providing input shape and class count.
    seed:
        Seeds the weight initialization.
    kwargs:
        Forwarded to the model constructor (e.g. ``width`` for vgg9,
        ``base_width`` for resnet50).
    """
    rng = np.random.default_rng(seed)
    key = name.lower()
    if key == "default":
        key = default_model_for(info)
    try:
        factory = MODELS.get(key)
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {MODEL_NAMES}") from None
    return factory(info, rng, **kwargs)
