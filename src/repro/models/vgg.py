"""VGG-9 (Figure 11, "Model Architectures").

The VGG-9 used by the FedNova/NIID-Bench codebases: 6 convolution layers in
three blocks (32-32, 64-64, 128-128) each followed by 2x2 max pooling, then
two hidden fully-connected layers (512, 512) and the classifier — nine
weight layers in total.  No batch normalization, which is exactly why the
paper contrasts it with ResNet: VGG-9 trains stably under non-IID skew
while BN models destabilize.

``width`` scales all channel counts so the architecture stays benchable on
a CPU substrate (``width=1.0`` is the paper's size).
"""

from __future__ import annotations

import numpy as np

from repro.grad import nn
from repro.grad.tensor import Tensor


class VGG(nn.Module):
    """VGG-style network from a block specification."""

    def __init__(
        self,
        blocks: list[list[int]],
        in_channels: int,
        image_size: int,
        num_classes: int,
        hidden: tuple[int, ...] = (512, 512),
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        reduction = 2 ** len(blocks)
        if image_size % reduction != 0:
            raise ValueError(
                f"image_size {image_size} not divisible by {reduction} "
                f"({len(blocks)} pooling stages)"
            )
        layers: list[nn.Module] = []
        channels = in_channels
        for block in blocks:
            for out_channels in block:
                layers.append(
                    nn.Conv2d(channels, out_channels, kernel_size=3, padding=1, rng=rng)
                )
                layers.append(nn.ReLU())
                channels = out_channels
            layers.append(nn.MaxPool2d(2))
        self.features = nn.Sequential(*layers)

        final_side = image_size // reduction
        flat = channels * final_side * final_side
        fc_layers: list[nn.Module] = [nn.Flatten()]
        width_in = flat
        for width_out in hidden:
            fc_layers.append(nn.Linear(width_in, width_out, rng=rng))
            fc_layers.append(nn.ReLU())
            width_in = width_out
        fc_layers.append(nn.Linear(width_in, num_classes, rng=rng))
        self.classifier = nn.Sequential(*fc_layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


def vgg9(
    in_channels: int = 3,
    image_size: int = 16,
    num_classes: int = 10,
    width: float = 1.0,
    rng: np.random.Generator | None = None,
) -> VGG:
    """The paper's VGG-9; ``width`` scales channels/hidden units."""

    def scaled(n: int) -> int:
        return max(1, int(round(n * width)))

    blocks = [
        [scaled(32), scaled(32)],
        [scaled(64), scaled(64)],
        [scaled(128), scaled(128)],
    ]
    hidden = (scaled(512), scaled(512))
    return VGG(blocks, in_channels, image_size, num_classes, hidden, rng)
