"""The paper's MLP for tabular datasets (hidden sizes 32, 16, 8)."""

from __future__ import annotations

import numpy as np

from repro.grad import nn
from repro.grad.tensor import Tensor


class TabularMLP(nn.Module):
    """Three-hidden-layer ReLU MLP, exactly the paper's 32/16/8 layout."""

    def __init__(
        self,
        in_features: int,
        num_classes: int = 2,
        hidden: tuple[int, ...] = (32, 16, 8),
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features <= 0:
            raise ValueError(f"in_features must be positive, got {in_features}")
        if not hidden:
            raise ValueError("need at least one hidden layer")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.num_classes = num_classes
        layers: list[nn.Module] = []
        widths = (in_features, *hidden)
        for w_in, w_out in zip(widths[:-1], widths[1:]):
            layers.append(nn.Linear(w_in, w_out, rng=rng))
            layers.append(nn.ReLU())
        layers.append(nn.Linear(widths[-1], num_classes, rng=rng))
        self.net = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)


class LogisticRegression(nn.Module):
    """Single linear layer — a useful sanity baseline."""

    def __init__(
        self,
        in_features: int,
        num_classes: int = 2,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.linear = nn.Linear(in_features, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.linear(x)
