"""Batch-norm ResNets (Figure 11 and Finding 7).

The paper trains ResNet-50 on CIFAR-10 to show that models with batch
normalization destabilize under non-IID federated averaging.  We implement
the ResNet family faithfully — basic and bottleneck residual blocks with
``BatchNorm2d`` everywhere PyTorch's reference puts them — and expose:

- :func:`resnet50`: the paper's architecture (bottleneck, [3,4,6,3]);
- :func:`resnet20` and :func:`resnet8`: CIFAR-style small variants that
  exercise the identical BN-aggregation code path at a size a NumPy
  substrate can train in benchmark time (documented substitution —
  Finding 7 only needs *a* BN network, not 50 layers).
"""

from __future__ import annotations

import numpy as np

from repro.grad import functional as F
from repro.grad import nn
from repro.grad.tensor import Tensor


def _make_norm(norm: str, channels: int) -> nn.Module:
    """Normalization factory: "batch" (the paper's setting) or "group"
    (the buffer-free alternative used by the BN ablation)."""
    if norm == "batch":
        return nn.BatchNorm2d(channels)
    if norm == "group":
        groups = 1
        for candidate in (8, 4, 2):
            if channels % candidate == 0:
                groups = candidate
                break
        return nn.GroupNorm(groups, channels)
    raise ValueError(f"norm must be 'batch' or 'group', got {norm!r}")


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with BN and an identity/projection shortcut."""

    expansion = 1

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int,
        rng: np.random.Generator,
        norm: str = "batch",
    ):
        super().__init__()
        self.conv1 = nn.Conv2d(
            in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = _make_norm(norm, channels)
        self.conv2 = nn.Conv2d(channels, channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = _make_norm(norm, channels)
        if stride != 1 or in_channels != channels * self.expansion:
            self.shortcut = nn.Sequential(
                nn.Conv2d(
                    in_channels,
                    channels * self.expansion,
                    1,
                    stride=stride,
                    bias=False,
                    rng=rng,
                ),
                _make_norm(norm, channels * self.expansion),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class Bottleneck(nn.Module):
    """1x1 -> 3x3 -> 1x1 bottleneck block (the ResNet-50 building block)."""

    expansion = 4

    def __init__(
        self,
        in_channels: int,
        channels: int,
        stride: int,
        rng: np.random.Generator,
        norm: str = "batch",
    ):
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = _make_norm(norm, channels)
        self.conv2 = nn.Conv2d(
            channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn2 = _make_norm(norm, channels)
        self.conv3 = nn.Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = _make_norm(norm, out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                _make_norm(norm, out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out)).relu()
        out = self.bn3(self.conv3(out))
        return (out + self.shortcut(x)).relu()


class ResNet(nn.Module):
    """CIFAR-style ResNet: 3x3 stem, staged blocks, global average pool."""

    def __init__(
        self,
        block_type,
        stage_blocks: list[int],
        in_channels: int = 3,
        num_classes: int = 10,
        base_width: int = 16,
        rng: np.random.Generator | None = None,
        norm: str = "batch",
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.norm = norm
        self.stem = nn.Conv2d(in_channels, base_width, 3, padding=1, bias=False, rng=rng)
        self.stem_bn = _make_norm(norm, base_width)

        stages: list[nn.Module] = []
        channels = base_width
        width = base_width
        for stage_index, num_blocks in enumerate(stage_blocks):
            stride = 1 if stage_index == 0 else 2
            blocks: list[nn.Module] = []
            for block_index in range(num_blocks):
                blocks.append(
                    block_type(
                        channels, width, stride if block_index == 0 else 1, rng, norm
                    )
                )
                channels = width * block_type.expansion
            stages.append(nn.Sequential(*blocks))
            width *= 2
        self.stages = nn.Sequential(*stages)
        self.head = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem(x)).relu()
        out = self.stages(out)
        out = F.global_avg_pool2d(out)
        return self.head(out)

    def batch_norm_modules(self) -> list[nn.Module]:
        """All BN layers — used by BN-aware aggregation tests/ablations."""
        return [m for m in self.modules() if isinstance(m, nn.BatchNorm2d)]


def resnet8(
    in_channels: int = 3, num_classes: int = 10, norm: str = "batch", rng=None
) -> ResNet:
    """Tiny 3-stage BasicBlock ResNet (1 block per stage)."""
    return ResNet(
        BasicBlock, [1, 1, 1], in_channels, num_classes, base_width=8, rng=rng, norm=norm
    )


def resnet20(
    in_channels: int = 3, num_classes: int = 10, norm: str = "batch", rng=None
) -> ResNet:
    """The classic CIFAR ResNet-20 (3 stages of 3 BasicBlocks)."""
    return ResNet(
        BasicBlock, [3, 3, 3], in_channels, num_classes, base_width=16, rng=rng, norm=norm
    )


def resnet50(
    in_channels: int = 3, num_classes: int = 10, base_width: int = 64, rng=None
) -> ResNet:
    """The paper's ResNet-50 (bottleneck, [3, 4, 6, 3], 64-wide stem).

    At full width this is slow on the NumPy substrate; pass a smaller
    ``base_width`` (or use :func:`resnet20`) for benchmark-time runs.
    """
    return ResNet(
        Bottleneck, [3, 4, 6, 3], in_channels, num_classes, base_width=base_width, rng=rng
    )
