"""Model zoo for the reproduction (paper Section 5, "Experiments").

- :class:`PaperCNN` — the paper's simple CNN for image datasets.
- :class:`TabularMLP` — the paper's 32/16/8 MLP for tabular datasets.
- :func:`vgg9` — the VGG-9 used in Figure 11.
- :func:`resnet20`/:func:`resnet50` — batch-norm ResNets for Figure 11.
- :func:`build_model` — build by name with shapes taken from a DatasetInfo.
"""

from repro.models.cnn import PaperCNN
from repro.models.mlp import LogisticRegression, TabularMLP
from repro.models.vgg import VGG, vgg9
from repro.models.resnet import ResNet, resnet8, resnet20, resnet50
from repro.models.registry import MODEL_NAMES, MODELS, build_model, default_model_for

__all__ = [
    "PaperCNN",
    "TabularMLP",
    "LogisticRegression",
    "VGG",
    "vgg9",
    "ResNet",
    "resnet8",
    "resnet20",
    "resnet50",
    "build_model",
    "default_model_for",
    "MODEL_NAMES",
    "MODELS",
]
