"""The paper's CNN for image datasets.

Section 5: "two 5x5 convolution layers followed by 2x2 max pooling (the
first with 6 channels and the second with 16 channels) and two fully
connected layers with ReLU activation (the first with 120 units and the
second with 84 units)" — i.e. the classic LeNet-5 shape.
"""

from __future__ import annotations

import numpy as np

from repro.grad import nn
from repro.grad.tensor import Tensor


class PaperCNN(nn.Module):
    """LeNet-style CNN, parameterized by input shape and class count.

    Convolutions use padding 2 so the spatial size is halved exactly twice
    by the pools; the input side length must therefore be divisible by 4.
    """

    def __init__(
        self,
        in_channels: int = 1,
        image_size: int = 16,
        num_classes: int = 10,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if image_size % 4 != 0:
            raise ValueError(f"image_size must be divisible by 4, got {image_size}")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.image_size = image_size
        self.num_classes = num_classes
        final_side = image_size // 4
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, 6, kernel_size=5, padding=2, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(6, 16, kernel_size=5, padding=2, rng=rng),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(16 * final_side * final_side, 120, rng=rng),
            nn.ReLU(),
            nn.Linear(120, 84, rng=rng),
            nn.ReLU(),
            nn.Linear(84, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
