"""Weight initialization schemes.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is fully deterministic given a seed — a requirement for
reproducing the paper's multi-trial mean/std protocol.
"""

from __future__ import annotations

import math

import numpy as np


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in, k, k)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"cannot infer fan for shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = math.sqrt(2.0)
) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init, suited to tanh/sigmoid networks."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.01
) -> np.ndarray:
    return (rng.standard_normal(shape) * std).astype(np.float32)


def bias_uniform(fan_in: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: uniform in ``+-1/sqrt(fan_in)``."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=size).astype(np.float32)
