"""The :class:`Tensor` class: a NumPy array with reverse-mode autodiff.

Every differentiable operation produces a new ``Tensor`` whose ``_backward``
closure knows how to push the output gradient to the operation's inputs.
Calling :meth:`Tensor.backward` on a scalar loss topologically sorts the
recorded graph and runs those closures in reverse order.

Gradients are accumulated into ``Tensor.grad`` as plain NumPy arrays (there
is no higher-order differentiation; the paper's experiments do not need it).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True

#: the active capture tape (see :mod:`repro.grad.capture`), or None.  When
#: set, every op additionally appends a (kind, out, parents, meta) record —
#: independent of grad mode, so inference programs can be captured too.
_TAPE = None


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _GRAD_ENABLED


def active_tape():
    """The capture tape currently recording ops, or None."""
    return _TAPE


def _set_tape(tape):
    """Install ``tape`` as the active capture tape; returns the previous one."""
    global _TAPE
    previous = _TAPE
    _TAPE = tape
    return previous


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (e.g. for evaluation)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting.

    Broadcasting may have (a) prepended dimensions and (b) stretched
    size-1 dimensions; both must be summed out so the gradient matches
    the original operand's shape.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were stretched from size 1.
    stretched = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected array-like, got Tensor; unwrap with .data")
    array = np.asarray(value, dtype=dtype)
    if array.dtype == np.float16:
        array = array.astype(np.float32)
    return array


class Tensor:
    """An n-dimensional array that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Integer arrays are allowed (e.g. class labels)
        but cannot require gradients.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_consumed")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(
                f"only floating tensors can require grad, got {self.data.dtype}"
            )
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._consumed = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(array, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    def _attach(
        self, parents: Sequence["Tensor"], backward, kind: str | None = None, meta=None
    ) -> "Tensor":
        """Record ``self`` as the output of an op over ``parents``.

        ``backward`` receives the output gradient and is responsible for
        calling ``parent._accumulate(...)`` on each differentiable parent.
        No-op when grad mode is off or no parent requires grad.

        ``kind``/``meta`` describe the op to an active capture tape (see
        :mod:`repro.grad.capture`); ops without a ``kind`` invalidate the
        tape, which falls back to eager execution.
        """
        if _TAPE is not None:
            _TAPE.record(kind, self, tuple(parents), meta)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            self.requires_grad = True
            self._parents = tuple(parents)
            self._backward = backward
        return self

    def _accumulate(self, grad: np.ndarray, fresh: bool = False) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer.

        ``fresh=True`` promises the caller hands over a newly-allocated
        array it will never touch again; on first accumulation that array
        is adopted directly instead of being copied (the dtype must match
        and the array must be writable — broadcast views are not).
        """
        value = _unbroadcast(np.asarray(grad), self.data.shape)
        if self.grad is None:
            if (
                (fresh or value is not grad)
                and value.dtype == self.data.dtype
                and value.flags.writeable
            ):
                self.grad = value
            else:
                self.grad = value.astype(self.data.dtype, copy=True)
        else:
            self.grad += value

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to 1 for scalar tensors (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("tensor does not require grad")
        if self._consumed:
            raise RuntimeError(
                "backward() was already called on this tensor; the graph is "
                "freed after the first pass — recompute the loss to "
                "differentiate again"
            )
        self._consumed = True
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        self._accumulate(np.asarray(grad, dtype=self.data.dtype))

        ordered: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        for node in reversed(ordered):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # Free intermediate gradients/graph references eagerly;
                # leaves (no parents) keep their grads for the optimizer.
                node._backward = None
                node._parents = ()
                node.grad = None if node is not self else node.grad

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data + other.data)

        def backward(grad):
            # The same grad object goes to both parents: never adopt it.
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return out._attach((self, other), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad, fresh=True)

        return out._attach((self,), backward, "neg")

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data - other.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad, fresh=True)

        return out._attach((self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data * other.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * other.data, fresh=True)
            if other.requires_grad:
                other._accumulate(grad * self.data, fresh=True)

        return out._attach((self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data / other.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / other.data, fresh=True)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2), fresh=True)

        return out._attach((self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        out = Tensor(self.data**exponent)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    grad * exponent * self.data ** (exponent - 1), fresh=True
                )

        return out._attach((self,), backward, "pow", {"exponent": exponent})

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = Tensor(np.exp(self.data))
        out_data = out.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data, fresh=True)

        return out._attach((self,), backward, "exp")

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data, fresh=True)

        return out._attach((self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out = Tensor(np.sqrt(self.data))
        out_data = out.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / (2.0 * out_data), fresh=True)

        return out._attach((self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out = Tensor(np.tanh(self.data))
        out_data = out.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2), fresh=True)

        return out._attach((self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out = Tensor(1.0 / (1.0 + np.exp(-self.data)))
        out_data = out.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data), fresh=True)

        return out._attach((self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(np.where(mask, self.data, 0.0))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask, fresh=True)

        return out._attach((self,), backward, "relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = Tensor(np.abs(self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * sign, fresh=True)

        return out._attach((self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data > low) & (self.data < high)
        out = Tensor(np.clip(self.data, low, high))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask, fresh=True)

        return out._attach((self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = Tensor(self.data.sum(axis=axis, keepdims=keepdims))
        in_shape = self.data.shape

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, in_shape))

        return out._attach((self,), backward, "sum", {"axis": axis, "keepdims": keepdims})

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else _axis_size(self.data.shape, axis)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching batch-norm semantics."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor(out_data)
        in_shape = self.data.shape

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            maxes = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                maxes = np.expand_dims(maxes, axis=axis)
            mask = self.data == maxes
            # Split gradient among ties, matching subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.broadcast_to(g, in_shape) * mask / counts)

        return out._attach((self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(self.data.reshape(shape))
        in_shape = self.data.shape

        def backward(grad):
            # The reshaped view is exclusively ours by now (its owner's
            # grad slot is freed right after this closure runs), so it is
            # safe to adopt.
            if self.requires_grad:
                self._accumulate(grad.reshape(in_shape), fresh=True)

        return out._attach((self,), backward, "reshape", {"shape": out.data.shape})

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out = Tensor(self.data.transpose(axes_tuple))
        inverse = np.argsort(axes_tuple)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse), fresh=True)

        return out._attach(
            (self,), backward, "transpose", {"axes": tuple(int(a) for a in axes_tuple)}
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out = Tensor(self.data[index])
        in_shape = self.data.shape
        in_dtype = self.data.dtype

        def backward(grad):
            if self.requires_grad:
                full = np.zeros(in_shape, dtype=in_dtype)
                np.add.at(full, index, grad)
                self._accumulate(full, fresh=True)

        return out._attach((self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out = Tensor(self.data @ other.data)

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(
                        np.outer(grad, other.data) if grad.ndim else grad * other.data,
                        fresh=True,
                    )
                else:
                    self._accumulate(grad @ _swap_last(other.data), fresh=True)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(
                        np.outer(self.data, grad) if grad.ndim else grad * self.data,
                        fresh=True,
                    )
                else:
                    other._accumulate(_swap_last(self.data) @ grad, fresh=True)

        return out._attach((self, other), backward, "matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Comparison (non-differentiable, returns plain arrays)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def _axis_size(shape: tuple[int, ...], axis) -> int:
    if isinstance(axis, int):
        return shape[axis]
    return int(np.prod([shape[a] for a in axis]))


def _swap_last(array: np.ndarray) -> np.ndarray:
    return np.swapaxes(array, -1, -2)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis))
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return out._attach(tuple(tensors), backward)
