"""Shape-specialized step capture & replay for :mod:`repro.grad`.

Every local SGD step traces an identical ``Tensor`` closure graph: the
same ops in the same order over the same shapes, differing only in the
batch contents and the parameter values.  This module records that trace
once — into a :class:`CapturedStep` — and *replays* it on later steps
against a preallocated buffer arena, skipping per-step Python closure
construction, graph bookkeeping, and most ``np.zeros``/``astype(copy=True)``
allocations.

Bitwise safety
--------------
Replay is bitwise-identical to eager execution because every replay
kernel runs the *same NumPy calls on arrays of the same memory layout*:

* forward output buffers are ``np.empty_like`` copies of the eager
  outputs (layout-preserving), filled with the same ufunc/``matmul``/
  reduction calls via ``out=``;
* composite kernels (conv, pooling, cross-entropy) lazily warm their
  scratch buffers on the first replay by evaluating the literal eager
  expression, then reuse those buffers with ``out=`` — so reductions see
  the same strides and produce the same pairwise-summation bits;
* gradient accumulation mirrors :meth:`Tensor._accumulate`: the first
  write per step copies (or ``np.copyto``-refreshes) the freshly
  computed value, later writes use ``+=`` in the same order as the eager
  reverse-topological pass, which is replicated verbatim at compile
  time.

Program optimizer
-----------------
Between compile and first replay an optimizer pass (on by default)
plans the buffer arena: liveness analysis plus interval-graph coloring
lets compile-time output buffers share storage once their last reader
has run, backward ops whose gradients never reach a trainable
parameter are dropped, and identical small constants are interned
across programs.  Optimized programs run the same kernels in the same
order on identically-laid-out buffers, so replay stays bitwise
identical; ``optimize=False`` reproduces the unplanned programs
exactly.

Fallback
--------
Capture is best-effort.  Ops without a capture kernel (``abs``, ``clip``,
``max``, indexing, ...), dropout (fresh mask per step), or a batch shape
other than the first one seen simply invalidate the tape and the step
runs eagerly — correctness never depends on capture succeeding.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.grad import functional as F
from repro.grad import tensor as tensor_mod
from repro.grad.nn.module import Parameter
from repro.grad.tensor import Tensor, _swap_last, _unbroadcast


class CaptureError(RuntimeError):
    """Raised at compile time when a tape cannot be turned into a program."""


class _OpRecord:
    __slots__ = ("kind", "out", "parents", "meta")

    def __init__(self, kind, out, parents, meta):
        self.kind = kind
        self.out = out
        self.parents = parents
        self.meta = meta


class Tape:
    """Passive recording of one eager forward pass.

    Installed via :func:`repro.grad.tensor._set_tape`; every op appends a
    record (creation order == a valid topological order).  Any op without
    a capture kernel invalidates the whole tape.
    """

    __slots__ = ("entries", "buffer_leaves", "failed")

    def __init__(self):
        self.entries: list = []
        self.buffer_leaves: list = []
        self.failed: str | None = None

    def record(self, kind, out, parents, meta) -> None:
        if self.failed is not None:
            return
        if kind is None:
            self.failed = "op without a capture kernel"
            return
        self.entries.append(("op", _OpRecord(kind, out, parents, meta)))

    def record_bn_update(self, module, mean, var, count) -> None:
        """Batch-norm running-stat side effect (replayed per step)."""
        if self.failed is None:
            self.entries.append(("bn", (module, mean, var, count)))

    def register_buffer_leaf(self, tensor, module, name, shape) -> None:
        """A leaf that must be re-read from ``module`` on every replay."""
        if self.failed is None:
            self.buffer_leaves.append((tensor, module, name, tuple(shape)))

    def invalidate(self, reason: str) -> None:
        if self.failed is None:
            self.failed = reason


class _Cell:
    """Lazily-warmed scratch buffer for one backward product."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None


def _binout(cell: _Cell, fn, x, y):
    """``fn(x, y)`` into a reused buffer; first call allocates eagerly."""
    if cell.value is None:
        cell.value = fn(x, y)
    else:
        fn(x, y, out=cell.value)
    return cell.value


def _unout(cell: _Cell, fn, x):
    if cell.value is None:
        cell.value = fn(x)
    else:
        fn(x, out=cell.value)
    return cell.value


_BINARY_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}
_UNARY_UFUNCS = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "tanh": np.tanh,
}


# ----------------------------------------------------------------------
# Program optimizer: liveness rules, arena planner, constant interning
# ----------------------------------------------------------------------
class _OpRule:
    """Planner contract for one op kind.

    ``may_alias`` asserts the forward kernel never reads any input
    element after writing the corresponding output element, so the
    planner may overlay ``out`` onto an input buffer whose last reader
    is this very op (an exact same-shape/dtype in-place write).
    ``bwd_reads`` lists which arena buffers the backward kernel still
    needs at backward time: ``"in"`` = the parent slots, ``"out"`` = the
    op's own output slot.  ``view`` marks ops whose output is a view of
    the input's storage rather than a buffer of its own.
    """

    __slots__ = ("may_alias", "bwd_reads", "view")

    def __init__(self, *, may_alias, bwd_reads=(), view=False):
        self.may_alias = may_alias
        self.bwd_reads = bwd_reads
        self.view = view


# One liveness rule per op kind the compilers handle; tools/lint.py
# enforces that this table and the kernel tables never drift apart.
OP_RULES = {
    "add": _OpRule(may_alias=True, bwd_reads=()),
    "sub": _OpRule(may_alias=True, bwd_reads=()),
    "mul": _OpRule(may_alias=True, bwd_reads=("in",)),
    "div": _OpRule(may_alias=True, bwd_reads=("in",)),
    "neg": _OpRule(may_alias=True, bwd_reads=()),
    "exp": _OpRule(may_alias=True, bwd_reads=("out",)),
    "log": _OpRule(may_alias=True, bwd_reads=("in",)),
    "sqrt": _OpRule(may_alias=True, bwd_reads=("out",)),
    "tanh": _OpRule(may_alias=True, bwd_reads=("out",)),
    "sigmoid": _OpRule(may_alias=True, bwd_reads=("out",)),
    "relu": _OpRule(may_alias=True, bwd_reads=("in",)),
    "pow": _OpRule(may_alias=False, bwd_reads=("in",)),
    "sum": _OpRule(may_alias=False, bwd_reads=()),
    "reshape": _OpRule(may_alias=False, bwd_reads=(), view=True),
    "transpose": _OpRule(may_alias=False, bwd_reads=(), view=True),
    "matmul": _OpRule(may_alias=False, bwd_reads=("in",)),
    "conv2d": _OpRule(may_alias=False, bwd_reads=("in",)),
    "max_pool2d": _OpRule(may_alias=False, bwd_reads=()),
    "avg_pool2d": _OpRule(may_alias=False, bwd_reads=()),
    "cross_entropy": _OpRule(may_alias=False, bwd_reads=()),
}

# Kinds whose forward kernel allocates its output buffer at compile time
# (the only allocations the planner can color).  Composites bind views of
# private scratch, ``pow`` rebinds per step, views alias their input.
_PLANNED_KINDS = frozenset(
    set(_BINARY_UFUNCS)
    | set(_UNARY_UFUNCS)
    | {"sigmoid", "sum", "matmul", "relu"}
)


class ArenaPlanStats:
    """What the program optimizer did to one compiled program."""

    __slots__ = (
        "peak_bytes",
        "unplanned_bytes",
        "slots_before",
        "slots_after",
        "ops_eliminated",
        "constants_interned",
    )

    def __init__(
        self,
        *,
        peak_bytes,
        unplanned_bytes,
        slots_before,
        slots_after,
        ops_eliminated,
        constants_interned,
    ):
        self.peak_bytes = peak_bytes
        self.unplanned_bytes = unplanned_bytes
        self.slots_before = slots_before
        self.slots_after = slots_after
        self.ops_eliminated = ops_eliminated
        self.constants_interned = constants_interned

    @property
    def reduction(self) -> float:
        """Fraction of colorable arena bytes removed by slot sharing."""
        if not self.unplanned_bytes:
            return 0.0
        return 1.0 - self.peak_bytes / self.unplanned_bytes

    def to_dict(self) -> dict:
        return {
            "peak_bytes": int(self.peak_bytes),
            "unplanned_bytes": int(self.unplanned_bytes),
            "reduction": round(self.reduction, 4),
            "slots_before": int(self.slots_before),
            "slots_after": int(self.slots_after),
            "ops_eliminated": int(self.ops_eliminated),
            "constants_interned": int(self.constants_interned),
        }


def _dense_layout(template: np.ndarray):
    """``template``'s strides when it covers its buffer densely, else None.

    ``np.empty_like`` reproduces permuted-contiguous layouts (e.g. the
    NCHW view of a conv output); such a buffer occupies exactly
    ``nbytes`` of gapless memory, so a carved block can be re-strided to
    an identical layout.  Anything with gaps or negative strides stays
    on a dedicated buffer.
    """
    if template.flags["C_CONTIGUOUS"]:
        return None  # plain reshape covers it
    expected = template.itemsize
    for axis in sorted(range(template.ndim), key=lambda i: template.strides[i]):
        if template.shape[axis] == 1:
            continue
        if template.shape[axis] == 0 or template.strides[axis] != expected:
            return False
        expected *= template.shape[axis]
    return template.strides


class _Alloc:
    """One colorable buffer request with its live interval [birth, last].

    ``strides`` is None for a C-contiguous request, or the exact dense
    strides the carved view must reproduce.
    """

    __slots__ = (
        "shape",
        "dtype",
        "strides",
        "nbytes",
        "birth",
        "last",
        "may_alias",
        "buffer",
    )

    def __init__(self, shape, dtype, strides, birth, may_alias):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.strides = None if strides is None else tuple(strides)
        self.nbytes = int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize
        self.birth = birth
        self.last = birth
        self.may_alias = may_alias
        self.buffer = None


class _ArenaPlanner:
    """Interval-graph slot coloring over one program's buffer requests.

    Liveness events are collected in program order (forward ops, then
    the scheduled backward ops, then the final read of the program
    output); :meth:`plan` then packs every request into the smallest set
    of byte blocks such that no two requests with overlapping live
    ranges share a block.  A request may land on a block whose current
    tenant dies exactly at the request's birth step only when the
    producing kernel declared ``may_alias`` and the overlay is an exact
    same-shape/dtype in-place write — any other overlap would let a
    kernel scribble over bytes a later reader still needs.
    """

    __slots__ = ("allocs", "blocks", "planned", "_by_slot", "_by_key", "_roots")

    def __init__(self):
        self.allocs: list[_Alloc] = []
        self.blocks: list[dict] = []
        self.planned = False
        self._by_slot: dict[int, _Alloc] = {}
        self._by_key: dict[int, _Alloc] = {}
        self._roots: dict[int, int] = {}

    def _root(self, slot: int) -> int:
        while slot in self._roots:
            slot = self._roots[slot]
        return slot

    def define(self, slot, shape, dtype, step, may_alias, strides=None) -> None:
        alloc = _Alloc(shape, dtype, strides, step, may_alias)
        self.allocs.append(alloc)
        self._by_slot[slot] = alloc

    def define_keyed(self, key, shape, dtype, step, may_alias) -> None:
        """A request not bound to a slot (e.g. a relu backward mask)."""
        alloc = _Alloc(shape, dtype, None, step, may_alias)
        self.allocs.append(alloc)
        self._by_key[key] = alloc

    def view(self, slot, of_slot) -> None:
        """Reads of ``slot`` are reads of ``of_slot``'s storage."""
        self._roots[slot] = of_slot

    def alias(self, slot, of_slot, step) -> None:
        """``slot`` is written into ``of_slot``'s storage at ``step``."""
        self._roots[slot] = of_slot
        alloc = self._by_slot.get(self._root(of_slot))
        if alloc is not None and step > alloc.last:
            alloc.last = step

    def read(self, slot, step) -> None:
        alloc = self._by_slot.get(self._root(slot))
        if alloc is not None and step > alloc.last:
            alloc.last = step

    def plan(self) -> None:
        # Requests were appended in program order, so a single pass sees
        # each one after all earlier births; best fit by capacity keeps
        # the big activation blocks available for later reuse.
        blocks: list[dict] = []
        for alloc in self.allocs:
            best = None
            for block in blocks:
                if block["size"] < alloc.nbytes:
                    continue
                top = block["top"]
                free = block["last"] < alloc.birth or (
                    alloc.may_alias
                    and block["last"] == alloc.birth
                    and top.last == alloc.birth
                    and top.shape == alloc.shape
                    and top.dtype == alloc.dtype
                    and top.strides == alloc.strides
                )
                if free and (best is None or block["size"] < best["size"]):
                    best = block
            if best is None:
                blocks.append(
                    {
                        "size": alloc.nbytes,
                        "last": alloc.last,
                        "top": alloc,
                        "tenants": [alloc],
                    }
                )
            else:
                best["last"] = max(best["last"], alloc.last)
                best["top"] = alloc
                best["tenants"].append(alloc)
        for block in blocks:
            # All tenants carve from offset 0 of one aligned byte block:
            # the views have exactly the shape/strides/dtype a dedicated
            # ``np.empty``/``np.empty_like`` would have, so kernels
            # cannot tell the difference.
            base = np.empty((block["size"],), dtype=np.uint8)
            block["base"] = base
            for tenant in block["tenants"]:
                flat = base[: tenant.nbytes].view(tenant.dtype)
                if tenant.strides is None:
                    tenant.buffer = flat.reshape(tenant.shape)
                else:
                    tenant.buffer = as_strided(
                        flat, shape=tenant.shape, strides=tenant.strides
                    )
        self.blocks = blocks
        self.planned = True

    def buffer(self, slot) -> np.ndarray | None:
        alloc = self._by_slot.get(slot)
        return None if alloc is None else alloc.buffer

    def keyed_buffer(self, key) -> np.ndarray | None:
        alloc = self._by_key.get(key)
        return None if alloc is None else alloc.buffer

    @property
    def dedicated_bytes(self) -> int:
        return sum(alloc.nbytes for alloc in self.allocs)

    @property
    def planned_bytes(self) -> int:
        return sum(block["size"] for block in self.blocks)


_CONSTANT_POOL: dict[tuple, np.ndarray] = {}
_CONSTANT_POOL_MAX_NBYTES = 4096


def _intern_constant(value: np.ndarray) -> tuple[np.ndarray, bool]:
    """A shared read-only snapshot of ``value`` (small constants only).

    Captured programs never write constant slots, so identical eps/scale
    arrays can back every program that needs them; the write lock turns
    any future violation of that invariant into a loud error instead of
    silent cross-program corruption.  Returns ``(array, was_shared)``.
    """
    arr = np.array(value, copy=True)
    if arr.nbytes > _CONSTANT_POOL_MAX_NBYTES:
        return arr, False
    key = (arr.dtype.str, arr.shape, arr.tobytes())
    cached = _CONSTANT_POOL.get(key)
    if cached is not None:
        return cached, True
    arr.setflags(write=False)
    _CONSTANT_POOL[key] = arr
    return arr, False


class CapturedStep:
    """A compiled (forward [+ backward]) program over a buffer arena."""

    __slots__ = (
        "arena",
        "forward_ops",
        "backward_ops",
        "param_refresh",
        "buffer_refresh",
        "param_binds",
        "input_slot",
        "labels_slot",
        "out_slot",
        "gbufs",
        "gseen",
        "gseen_false",
        "seed",
        "acc",
        "stats",
    )

    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)

    def replay_forward(self, features: np.ndarray) -> np.ndarray:
        arena = self.arena
        if self.input_slot is not None:
            arena[self.input_slot] = features
        # Parameters/buffers are rebound by the optimizer and state loads,
        # so their slots are refreshed from the live objects every replay.
        for slot, param in self.param_refresh:
            arena[slot] = param.data
        for slot, module, name, shape in self.buffer_refresh:
            arena[slot] = getattr(module, name).reshape(shape)
        for op in self.forward_ops:
            op()
        return arena[self.out_slot]

    def replay_step(self, features: np.ndarray, labels: np.ndarray) -> float:
        if self.labels_slot is not None:
            self.arena[self.labels_slot] = labels
        out = self.replay_forward(features)
        loss = float(np.asarray(out).item())
        self.gseen[:] = self.gseen_false
        self.acc(self.out_slot, self.seed)
        for op in self.backward_ops:
            op()
        gbufs = self.gbufs
        for param, slot in self.param_binds:
            param.grad = gbufs[slot]
        return loss


class _Compiler:
    """Turns a :class:`Tape` into a :class:`CapturedStep`."""

    def __init__(
        self,
        tape: Tape,
        input_tensor: Tensor,
        output: Tensor,
        labels,
        optimize: bool = True,
    ):
        self.tape = tape
        self.input_tensor = input_tensor
        self.output = output
        self.labels = labels
        self.optimize = optimize
        self._planner: _ArenaPlanner | None = None
        self._eliminated = 0
        self._interned = 0
        self._raw_slots = 0
        self._raw_bytes = 0
        self.slots: dict[int, int] = {}
        self.arena: list = []
        self.shapes: list = []
        self.dtypes: list = []
        self.gbufs: list = []
        self.param_refresh: list = []
        self.buffer_refresh: list = []
        self.param_binds: list = []
        self.input_slot: int | None = None
        self.labels_slot: int | None = None
        self._composite_bwd: dict[int, object] = {}
        self._buffer_leaf_map = {
            id(t): (module, name, shape)
            for t, module, name, shape in tape.buffer_leaves
        }
        self._records = [rec for kind, rec in tape.entries if kind == "op"]
        self._outs = {id(rec.out) for rec in self._records}
        self._recmap = {id(rec.out): rec for rec in self._records}
        consumers: dict[int, int] = {}
        for rec in self._records:
            for parent in rec.parents:
                key = id(parent)
                consumers[key] = consumers.get(key, 0) + 1
        self._consumers = consumers
        self.acc = self._make_acc()

    # -- slots ----------------------------------------------------------
    def _new_slot(self, shape, dtype) -> int:
        slot = len(self.arena)
        self.arena.append(None)
        self.shapes.append(shape)
        self.dtypes.append(dtype)
        self.gbufs.append(None)
        return slot

    def slot(self, t: Tensor) -> int:
        return self.slots[id(t)]

    def _ensure_slot(self, t: Tensor, is_out: bool) -> int:
        existing = self.slots.get(id(t))
        if existing is not None:
            return existing
        slot = self._new_slot(t.data.shape, t.data.dtype)
        self.slots[id(t)] = slot
        if not is_out:
            self._classify_leaf(t, slot)
        return slot

    def _classify_leaf(self, t: Tensor, slot: int) -> None:
        if isinstance(t, Parameter):
            self.param_refresh.append((slot, t))
            self.param_binds.append((t, slot))
        elif t is self.input_tensor:
            self.input_slot = slot
        elif id(t) in self._buffer_leaf_map:
            module, name, shape = self._buffer_leaf_map[id(t)]
            self.buffer_refresh.append((slot, module, name, shape))
        else:
            # Constant (coerced scalar, eps, 1/count, ...): snapshot once.
            if self.optimize:
                value, shared = _intern_constant(t.data)
                self._interned += 1 if shared else 0
                self.arena[slot] = value
            else:
                self.arena[slot] = np.array(t.data, copy=True)

    def _make_acc(self):
        shapes, dtypes, gbufs = self.shapes, self.dtypes, self.gbufs
        # Plain-list flags: scalar indexing is measurably cheaper than on
        # an ndarray in this per-gradient hot path.  Sized at compile end.
        seen: list = []

        def acc(slot, value, fresh=False):
            if value.shape != shapes[slot]:
                value = _unbroadcast(np.asarray(value), shapes[slot])
            if seen[slot]:
                gbufs[slot] += value
            else:
                # ``fresh`` marks values the kernel owns outright (a private
                # cell or a per-step allocation, never a view of another
                # slot's gradient): those are bound directly, skipping a
                # full copy pass — same arithmetic, one less memory sweep.
                # Later ``+=`` hits mutate the cell, which the owning kernel
                # fully rewrites on its next execution anyway.
                if (
                    fresh
                    and value.dtype == dtypes[slot]
                    and value.flags.writeable
                ):
                    gbufs[slot] = value
                else:
                    buf = gbufs[slot]
                    if buf is None:
                        gbufs[slot] = value.astype(dtypes[slot], copy=True)
                    else:
                        np.copyto(buf, value)
                seen[slot] = True

        self._acc_seen = seen
        return acc

    # -- compile --------------------------------------------------------
    def compile(self, with_backward: bool) -> CapturedStep:
        if self.labels is not None:
            self.labels_slot = self._new_slot(self.labels.shape, self.labels.dtype)

        # Slot assignment precedes kernel construction so the planner can
        # see the whole program (including the backward schedule) before
        # any kernel closes over a concrete buffer.
        for kind, entry in self.tape.entries:
            if kind == "op":
                for parent in entry.parents:
                    self._ensure_slot(parent, is_out=False)
                self._ensure_slot(entry.out, is_out=True)

        if id(self.output) not in self.slots:
            raise CaptureError("model output is not an op of the tape")

        sched: list = []
        seed = None
        if with_backward:
            if not self.output.requires_grad:
                raise CaptureError("output does not require grad")
            if self.output.data.size != 1:
                raise CaptureError("backward capture needs a scalar loss")
            seed = np.ones_like(self.output.data)
            sched = self._schedule_backward()

        if self.optimize:
            self._plan_arena(sched)

        forward_ops: list = []
        for kind, entry in self.tape.entries:
            if kind == "op":
                forward_ops.append(self._forward_op(entry))
            else:
                forward_ops.append(self._bn_op(entry))

        backward_ops: list = []
        for rec in sched:
            kernel = self._backward_op(rec)
            if kernel is not None:
                backward_ops.append(kernel)

        self._acc_seen.extend([False] * len(self.arena))
        gseen = self._acc_seen
        return CapturedStep(
            arena=self.arena,
            forward_ops=forward_ops,
            backward_ops=backward_ops,
            param_refresh=self.param_refresh,
            buffer_refresh=self.buffer_refresh,
            param_binds=self.param_binds,
            input_slot=self.input_slot,
            labels_slot=self.labels_slot,
            out_slot=self.slot(self.output),
            gbufs=self.gbufs,
            gseen=gseen,
            gseen_false=[False] * len(self.arena),
            seed=seed,
            acc=self.acc,
            stats=self._plan_stats(),
        )

    # -- optimizer passes ------------------------------------------------
    def _schedule_backward(self) -> list:
        """The backward records in execution order, minus dead ops.

        The order replicates the eager reverse-topological pass exactly;
        with the optimizer on, ops whose gradients never transitively
        reach a trainable Parameter (input-gradient chains, probes
        through constants) are dropped before any buffer is planned.
        Dropping them is bitwise-safe: the live/dead split is closed
        under consumption — every consumer of a live node is itself live
        — so no surviving accumulation loses a contributor.
        """
        matters = self._grad_consumers() if self.optimize else None
        sched: list = []
        for node in reversed(self._toposort()):
            if node._backward is None:
                continue
            rec = self._recmap.get(id(node))
            if rec is None:
                raise CaptureError("graph node missing from the tape")
            if matters is not None and not matters.get(id(rec.out), False):
                self._eliminated += 1
                continue
            sched.append(rec)
        return sched

    def _grad_consumers(self) -> dict[int, bool]:
        """``id(out) -> does this op's gradient reach a trainable param``.

        Computed in forward topological order: an op's gradient matters
        iff some parent both requires grad and either is a trainable
        Parameter or is an earlier op whose gradient matters.  Gradients
        of non-parameter leaves are never surfaced by a replay, so
        chains that only feed them are dead weight.
        """
        matters: dict[int, bool] = {}
        for rec in self._records:
            m = False
            for p in rec.parents:
                if not p.requires_grad:
                    continue
                if id(p) in self._outs:
                    if matters.get(id(p)):
                        m = True
                        break
                elif isinstance(p, Parameter):
                    m = True
                    break
            matters[id(rec.out)] = m
        return matters

    def _plan_arena(self, sched: list) -> None:
        """Collect liveness events in program order and color the arena."""
        planner = _ArenaPlanner()
        step = 0
        for kind, entry in self.tape.entries:
            if kind == "op":
                rec = entry
                for p in rec.parents:
                    planner.read(self.slot(p), step)
                o = self.slot(rec.out)
                rule = OP_RULES.get(rec.kind)
                if rule is not None and rule.view:
                    planner.view(o, self.slot(rec.parents[0]))
                elif self._peephole_src(rec) is not None:
                    planner.alias(o, self.slot(rec.parents[0]), step)
                else:
                    spec = self._managed_spec(rec)
                    if spec is not None and rule is not None:
                        shape, dtype, strides = spec
                        planner.define(
                            o, shape, dtype, step, rule.may_alias, strides=strides
                        )
            else:
                _, mean_t, var_t, _ = entry
                sm = self.slots.get(id(mean_t))
                sv = self.slots.get(id(var_t))
                if sm is not None:
                    planner.read(sm, step)
                if sv is not None:
                    planner.read(sv, step)
            step += 1
        for rec in sched:
            rule = OP_RULES.get(rec.kind)
            reads = rule.bwd_reads if rule is not None else ("in", "out")
            if "out" in reads:
                planner.read(self.slot(rec.out), step)
            if "in" in reads:
                for p in rec.parents:
                    planner.read(self.slot(p), step)
            if rec.kind == "relu":
                # The bool mask lives only inside the backward kernel.
                planner.define_keyed(
                    id(rec), self._mask_shape(rec), bool, step, may_alias=False
                )
            step += 1
        # The program output is handed to the caller after replay (the
        # loss read, inference logits, stacked per-client losses), so its
        # storage must survive the whole program.
        planner.read(self.slot(self.output), step)
        planner.plan()
        self._planner = planner

    def _peephole_src(self, rec: _OpRecord):
        """The matmul record whose buffer a bias-add overwrites, or None.

        Decided on static facts only (record kinds, consumer counts,
        eager shapes), so the planner and the kernel builder always
        agree on whether the peephole fires.
        """
        if rec.kind != "add":
            return None
        src_rec = self._recmap.get(id(rec.parents[0]))
        if (
            src_rec is not None
            and src_rec.kind == "matmul"
            and self._consumers.get(id(rec.parents[0])) == 1
            and rec.parents[0] is not self.output
            and src_rec.out.data.shape == rec.out.data.shape
            and src_rec.out.data.dtype == rec.out.data.dtype
        ):
            return src_rec
        return None

    def _managed_spec(self, rec: _OpRecord):
        """(shape, dtype, strides) of a colorable output buffer, or None.

        The carved block view must be byte-for-byte the layout a
        dedicated ``np.empty_like`` would produce: C-contiguous outputs
        reshape straight out of the block (strides None), dense permuted
        layouts (e.g. the NCHW view of a conv output flowing through
        relu) are re-strided to the probed ``np.empty_like`` strides,
        and anything non-dense stays unmanaged.
        """
        if rec.kind not in _PLANNED_KINDS:
            return None
        out = rec.out.data
        if out.flags["C_CONTIGUOUS"]:
            return out.shape, out.dtype, None
        strides = _dense_layout(np.empty_like(out))
        if strides is False:
            return None
        return out.shape, out.dtype, strides

    def _mask_shape(self, rec: _OpRecord) -> tuple:
        return rec.parents[0].data.shape

    def _fresh_buf(self, rec: _OpRecord) -> np.ndarray:
        return np.empty_like(rec.out.data)

    def _out_buf(self, rec: _OpRecord) -> np.ndarray:
        planner = self._planner
        if planner is not None:
            buf = planner.buffer(self.slot(rec.out))
            if buf is not None:
                return buf
        buf = self._fresh_buf(rec)
        if planner is None and self._managed_spec(rec) is not None:
            self._raw_slots += 1
            self._raw_bytes += buf.nbytes
        return buf

    def _mask_buf(self, rec: _OpRecord) -> np.ndarray:
        planner = self._planner
        if planner is not None:
            buf = planner.keyed_buffer(id(rec))
            if buf is not None:
                return buf
        mask = np.empty(self._mask_shape(rec), dtype=bool)
        if planner is None:
            self._raw_slots += 1
            self._raw_bytes += mask.nbytes
        return mask

    def _plan_stats(self) -> ArenaPlanStats:
        planner = self._planner
        if planner is None:
            return ArenaPlanStats(
                peak_bytes=self._raw_bytes,
                unplanned_bytes=self._raw_bytes,
                slots_before=self._raw_slots,
                slots_after=self._raw_slots,
                ops_eliminated=0,
                constants_interned=self._interned,
            )
        return ArenaPlanStats(
            peak_bytes=planner.planned_bytes,
            unplanned_bytes=planner.dedicated_bytes,
            slots_before=len(planner.allocs),
            slots_after=len(planner.blocks),
            ops_eliminated=self._eliminated,
            constants_interned=self._interned,
        )

    def _toposort(self) -> list[Tensor]:
        # Replicates Tensor.backward's DFS exactly, so the replayed
        # accumulation order matches the eager one bit for bit.
        ordered: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self.output, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                ordered.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        return ordered

    # -- forward kernels ------------------------------------------------
    def _forward_op(self, rec: _OpRecord):
        kind = rec.kind
        arena = self.arena
        o = self.slot(rec.out)
        srcs = [self.slot(p) for p in rec.parents]

        if kind in _BINARY_UFUNCS:
            fn = _BINARY_UFUNCS[kind]
            a, b = srcs
            buf = None
            if kind == "add" and self._peephole_src(rec) is not None:
                # Bias-add peephole: when the left operand is a matmul
                # whose only reader is this add, the sum is written back
                # into the matmul's buffer (the cachelines are still hot,
                # and no backward kernel reads the pre-add values).  The
                # matmul kernel was built earlier in program order, so
                # its buffer is already bound.
                buf = arena[a]
            if buf is None:
                buf = self._out_buf(rec)
            arena[o] = buf

            def run():
                fn(arena[a], arena[b], out=buf)

            return run

        if kind in _UNARY_UFUNCS:
            fn = _UNARY_UFUNCS[kind]
            buf = self._out_buf(rec)
            arena[o] = buf
            (a,) = srcs

            def run():
                fn(arena[a], out=buf)

            return run

        if kind == "relu":
            return self._relu(rec)

        if kind == "sigmoid":
            buf = self._out_buf(rec)
            arena[o] = buf
            (a,) = srcs
            st: dict = {}

            def run():
                xv = arena[a]
                t = st.get("t")
                if t is None:
                    t = np.exp(-xv)
                    st["t"] = t
                else:
                    np.negative(xv, out=t)
                    np.exp(t, out=t)
                np.add(1.0, t, out=t)
                np.divide(1.0, t, out=buf)

            return run

        if kind == "pow":
            exponent = rec.meta["exponent"]
            (a,) = srcs

            def run():
                # `x ** e` has ufunc fast paths `np.power` lacks; rerun
                # the literal expression so the bits can never differ.
                arena[o] = arena[a] ** exponent

            return run

        if kind == "sum":
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            buf = self._out_buf(rec)
            arena[o] = buf
            (a,) = srcs

            def run():
                arena[a].sum(axis=axis, keepdims=keepdims, out=buf)

            return run

        if kind == "reshape":
            shape = rec.meta["shape"]
            (a,) = srcs

            def run():
                arena[o] = arena[a].reshape(shape)

            return run

        if kind == "transpose":
            axes = rec.meta["axes"]
            (a,) = srcs

            def run():
                arena[o] = arena[a].transpose(axes)

            return run

        if kind == "matmul":
            buf = self._out_buf(rec)
            arena[o] = buf
            a, b = srcs

            def run():
                np.matmul(arena[a], arena[b], out=buf)

            return run

        if kind == "conv2d":
            return self._conv2d(rec)
        if kind == "max_pool2d":
            return self._max_pool2d(rec)
        if kind == "avg_pool2d":
            return self._avg_pool2d(rec)
        if kind == "cross_entropy":
            return self._cross_entropy(rec)

        raise CaptureError(f"no forward kernel for op kind {kind!r}")

    def _bn_op(self, entry):
        module, mean_t, var_t, count = entry
        if id(mean_t) not in self.slots or id(var_t) not in self.slots:
            raise CaptureError("batch-norm stats missing from the tape")
        sm = self.slot(mean_t)
        sv = self.slot(var_t)
        arena = self.arena

        def run():
            m = module.momentum
            mean_arr = arena[sm]
            var_arr = arena[sv]
            unbiased = var_arr * (count / max(count - 1, 1))
            module._set_buffer(
                "running_mean",
                (1 - m) * module.running_mean + m * mean_arr.reshape(-1),
            )
            module._set_buffer(
                "running_var",
                (1 - m) * module.running_var + m * unbiased.reshape(-1),
            )
            module._set_buffer(
                "num_batches_tracked",
                np.asarray(int(module.num_batches_tracked) + 1),
            )

        return run

    # -- composite kernels ----------------------------------------------
    def _register_bwd(self, rec, bwd, grad_needed: bool):
        self._composite_bwd[id(rec)] = bwd if grad_needed else None

    def _relu(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        x_t = rec.parents[0]
        a = self.slot(x_t)
        o = self.slot(rec.out)
        buf = self._out_buf(rec)
        arena[o] = buf
        mask = self._mask_buf(rec)
        cell = _Cell()

        def fwd():
            # Bit-identical to np.where(x > 0, x, 0.0): for x <= 0 both
            # pick the +0.0 operand, and positives pass through untouched.
            np.maximum(arena[a], 0.0, out=buf)

        def bwd():
            # The input buffer is still intact at backward time, so the
            # mask is derived here and skipped entirely in inference runs.
            np.greater(arena[a], 0, out=mask)
            acc(a, _binout(cell, np.multiply, gbufs[o], mask), fresh=True)

        self._register_bwd(rec, bwd, x_t.requires_grad)
        return fwd

    def _conv2d(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        meta = rec.meta
        n, c, h, w = meta["image_shape"]
        _, oc, oh, ow = meta["out_shape"]
        kernel, stride, padding = meta["kernel"], meta["stride"], meta["padding"]
        has_bias = meta["has_bias"]
        x_t, w_t = rec.parents[0], rec.parents[1]
        b_t = rec.parents[2] if has_bias else None
        sx, sw = self.slot(x_t), self.slot(w_t)
        sb = self.slot(b_t) if has_bias else None
        o = self.slot(rec.out)
        weight_shape = w_t.data.shape
        st: dict = {}
        gw_cell, gc_cell = _Cell(), _Cell()

        def fwd():
            x = arena[sx]
            flat_weight = arena[sw].reshape(oc, -1)
            img = x
            if padding > 0:
                padded = st.get("padded")
                if padded is None:
                    padded = np.zeros(
                        (n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype
                    )
                    st["padded"] = padded
                padded[:, :, padding : padding + h, padding : padding + w] = x
                img = padded
            strides = img.strides
            windows = as_strided(
                img,
                shape=(n, c, oh, ow, kernel, kernel),
                strides=(
                    strides[0],
                    strides[1],
                    strides[2] * stride,
                    strides[3] * stride,
                    strides[2],
                    strides[3],
                ),
                writeable=False,
            )
            cols6 = st.get("cols6")
            if cols6 is None:
                cols6 = np.empty((n, oh, ow, c, kernel, kernel), dtype=x.dtype)
                st["cols6"] = cols6
                st["cols2"] = cols6.reshape(n * oh * ow, c * kernel * kernel)
            np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
            cols2 = st["cols2"]
            mm = st.get("mm")
            if mm is None:
                mm = cols2 @ flat_weight.T
                st["mm"] = mm
            else:
                np.matmul(cols2, flat_weight.T, out=mm)
            out_flat = mm
            if has_bias:
                bout = st.get("bout")
                if bout is None:
                    bout = out_flat + arena[sb]
                    st["bout"] = bout
                else:
                    np.add(out_flat, arena[sb], out=bout)
                out_flat = bout
            arena[o] = out_flat.reshape(n, oh, ow, oc).transpose(0, 3, 1, 2)

        x_req = x_t.requires_grad
        w_req = w_t.requires_grad
        b_req = has_bias and b_t.requires_grad

        def col2im_replay(gc):
            # Same slice-add sequence as F.col2im, but the columns are first
            # rearranged into a (k, k, n, c, oh, ow)-contiguous scratch so
            # each of the k*k adds streams over contiguous memory instead of
            # stride-k*k gathers.  Contribution order per output element is
            # unchanged, so the result is bit-identical.
            gcT = st.get("gcT")
            if gcT is None:
                gcT = np.empty((kernel, kernel, n, c, oh, ow), dtype=gc.dtype)
                st["gcT"] = gcT
                st["gpad"] = np.zeros(
                    (n, c, h + 2 * padding, w + 2 * padding), dtype=gc.dtype
                )
            np.copyto(
                gcT,
                gc.reshape(n, oh, ow, c, kernel, kernel).transpose(
                    4, 5, 0, 3, 1, 2
                ),
            )
            gpad = st["gpad"]
            gpad.fill(0.0)
            for ki in range(kernel):
                h_stop = ki + stride * oh
                for kj in range(kernel):
                    w_stop = kj + stride * ow
                    gpad[:, :, ki:h_stop:stride, kj:w_stop:stride] += gcT[ki, kj]
            if padding > 0:
                return gpad[:, :, padding:-padding, padding:-padding]
            return gpad

        def bwd():
            g = gbufs[o]
            grad_flat = g.transpose(0, 2, 3, 1).reshape(-1, oc)
            cols2 = st["cols2"]
            flat_weight = arena[sw].reshape(oc, -1)
            if w_req:
                gw = _binout(gw_cell, np.matmul, grad_flat.T, cols2)
                acc(sw, gw.reshape(weight_shape), fresh=True)
            if b_req:
                acc(sb, grad_flat.sum(axis=0), fresh=True)
            if x_req:
                gc = _binout(gc_cell, np.matmul, grad_flat, flat_weight)
                acc(sx, col2im_replay(gc), fresh=True)

        self._register_bwd(rec, bwd, x_req or w_req or b_req)
        return fwd

    def _max_pool2d(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        meta = rec.meta
        kernel, stride = meta["kernel"], meta["stride"]
        n, c, h, w = meta["image_shape"]
        _, _, oh, ow = meta["out_shape"]
        nc = n * c
        x_t = rec.parents[0]
        sx = self.slot(x_t)
        o = self.slot(rec.out)
        window = kernel * kernel
        count = nc * oh * ow
        rows = np.arange(count)
        # Flat base of each patch row, and a static map from column-flat
        # index to image-flat index (both depend only on the geometry).
        flat_base = rows * window
        ki, kj = np.divmod(np.arange(window), kernel)
        b, rem = np.divmod(rows, oh * ow)
        a_h, a_w = np.divmod(rem, ow)
        col_to_img = (
            b[:, None] * (h * w)
            + (a_h[:, None] * stride + ki[None, :]) * w
            + (a_w[:, None] * stride + kj[None, :])
        ).ravel()
        nonoverlap = stride >= kernel
        st: dict = {}

        def fwd():
            as_batch = arena[sx].reshape(nc, 1, h, w)
            strides = as_batch.strides
            windows = as_strided(
                as_batch,
                shape=(nc, 1, oh, ow, kernel, kernel),
                strides=(
                    strides[0],
                    strides[1],
                    strides[2] * stride,
                    strides[3] * stride,
                    strides[2],
                    strides[3],
                ),
                writeable=False,
            )
            cols6 = st.get("cols6")
            if cols6 is None:
                cols6 = np.empty((nc, oh, ow, 1, kernel, kernel), dtype=as_batch.dtype)
                st["cols6"] = cols6
                st["cols2"] = cols6.reshape(count, window)
                st["arg"] = np.empty(count, dtype=np.intp)
                st["idx"] = np.empty(count, dtype=np.intp)
                st["out"] = np.empty((n, c, oh, ow), dtype=as_batch.dtype)
            np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
            cols2 = st["cols2"]
            arg = np.argmax(cols2, axis=1, out=st["arg"])
            # Single flat take instead of a two-array fancy gather.
            idx = np.add(flat_base, arg, out=st["idx"])
            out = st["out"]
            np.take(cols2.reshape(-1), idx, out=out.reshape(-1))
            arena[o] = out

        def bwd():
            g = gbufs[o]
            if nonoverlap:
                # Windows are disjoint, so col2im's scatter-add places each
                # gradient exactly once: route it straight into the image.
                # The explicit `+ 0.0` mirrors the `0.0 + v` of the add,
                # which flushes a -0.0 gradient to +0.0.
                gimg = st.get("gimg")
                if gimg is None:
                    gimg = np.empty(nc * h * w, dtype=g.dtype)
                    st["gimg"] = gimg
                    st["imgidx"] = np.empty(count, dtype=np.intp)
                    st["gtmp"] = np.empty(count, dtype=g.dtype)
                gimg.fill(0.0)
                imgidx = np.take(col_to_img, st["idx"], out=st["imgidx"])
                gtmp = np.add(g.reshape(-1), 0.0, out=st["gtmp"])
                gimg[imgidx] = gtmp
                acc(sx, gimg.reshape(n, c, h, w), fresh=True)
                return
            cols2 = st["cols2"]
            gc = st.get("gc")
            if gc is None:
                gc = np.zeros_like(cols2)
                st["gc"] = gc
            else:
                gc.fill(0.0)
            gc[rows, st["arg"]] = g.reshape(-1)
            grad_images = F.col2im(gc, (nc, 1, h, w), kernel, stride, 0)
            acc(sx, grad_images.reshape(n, c, h, w), fresh=True)

        self._register_bwd(rec, bwd, x_t.requires_grad)
        return fwd

    def _avg_pool2d(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        meta = rec.meta
        kernel, stride = meta["kernel"], meta["stride"]
        n, c, h, w = meta["image_shape"]
        _, _, oh, ow = meta["out_shape"]
        nc = n * c
        window = kernel * kernel
        x_t = rec.parents[0]
        sx = self.slot(x_t)
        o = self.slot(rec.out)
        st: dict = {}

        def fwd():
            as_batch = arena[sx].reshape(nc, 1, h, w)
            strides = as_batch.strides
            windows = as_strided(
                as_batch,
                shape=(nc, 1, oh, ow, kernel, kernel),
                strides=(
                    strides[0],
                    strides[1],
                    strides[2] * stride,
                    strides[3] * stride,
                    strides[2],
                    strides[3],
                ),
                writeable=False,
            )
            cols6 = st.get("cols6")
            if cols6 is None:
                cols6 = np.empty((nc, oh, ow, 1, kernel, kernel), dtype=as_batch.dtype)
                st["cols6"] = cols6
                st["cols2"] = cols6.reshape(nc * oh * ow, window)
            np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
            cols2 = st["cols2"]
            mean = st.get("mean")
            if mean is None:
                mean = cols2.mean(axis=1)
                st["mean"] = mean
            else:
                cols2.mean(axis=1, out=mean)
            arena[o] = mean.reshape(n, c, oh, ow)

        def bwd():
            g = gbufs[o]
            grad_cols = np.repeat(g.reshape(-1, 1), window, axis=1) / window
            grad_images = F.col2im(grad_cols, (nc, 1, h, w), kernel, stride, 0)
            acc(sx, grad_images.reshape(n, c, h, w), fresh=True)

        self._register_bwd(rec, bwd, x_t.requires_grad)
        return fwd

    def _cross_entropy(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        reduction = rec.meta["reduction"]
        targets = rec.meta["targets"]
        if self.labels is None or targets is not self.labels:
            raise CaptureError("cross_entropy targets are not the step labels")
        logits_t = rec.parents[0]
        n = logits_t.data.shape[0]
        sl = self.slot(logits_t)
        lt = self.labels_slot
        o = self.slot(rec.out)
        rows = np.arange(n)
        st: dict = {}
        gl_cell = _Cell()

        def fwd():
            logits = arena[sl]
            tgt = arena[lt]
            if "max" not in st:
                st["max"] = logits.max(axis=1, keepdims=True)
                st["shifted"] = logits - st["max"]
                st["exp"] = np.exp(st["shifted"])
                st["sumexp"] = st["exp"].sum(axis=1, keepdims=True)
                st["ln"] = np.log(st["sumexp"][:, 0])
                losses = st["ln"] - st["shifted"][rows, tgt]
                st["losses"] = losses
            else:
                logits.max(axis=1, keepdims=True, out=st["max"])
                np.subtract(logits, st["max"], out=st["shifted"])
                np.exp(st["shifted"], out=st["exp"])
                st["exp"].sum(axis=1, keepdims=True, out=st["sumexp"])
                np.log(st["sumexp"][:, 0], out=st["ln"])
                np.subtract(st["ln"], st["shifted"][rows, tgt], out=st["losses"])
                losses = st["losses"]
            if reduction == "none":
                arena[o] = losses
            elif reduction == "sum":
                arena[o] = losses.sum()
            else:
                arena[o] = losses.mean()

        def bwd():
            g = gbufs[o]
            tgt = arena[lt]
            if reduction == "none":
                scale = np.asarray(g).reshape(n, 1)
            elif reduction == "mean":
                scale = np.asarray(g) / n
            else:
                scale = np.asarray(g)
            # exp is rewritten by the next forward replay, so the in-place
            # softmax matches the eager closure exactly.
            softmax = np.divide(st["exp"], st["sumexp"], out=st["exp"])
            gl = _binout(gl_cell, np.multiply, softmax, scale)
            if reduction == "none":
                gl[rows, tgt] -= scale[:, 0]
            else:
                gl[rows, tgt] -= scale
            acc(sl, gl, fresh=True)

        self._register_bwd(rec, bwd, logits_t.requires_grad)
        return fwd

    # -- backward kernels ------------------------------------------------
    def _backward_op(self, rec: _OpRecord):
        if id(rec) in self._composite_bwd:
            return self._composite_bwd[id(rec)]
        kind = rec.kind
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        o = self.slot(rec.out)
        srcs = [self.slot(p) for p in rec.parents]
        reqs = [p.requires_grad for p in rec.parents]

        if kind == "add":
            a, b = srcs
            ra, rb = reqs

            def run():
                g = gbufs[o]
                if ra:
                    acc(a, g)
                if rb:
                    acc(b, g)

            return run

        if kind == "neg":
            (a,) = srcs
            cell = _Cell()

            def run():
                acc(a, _unout(cell, np.negative, gbufs[o]), fresh=True)

            return run

        if kind == "sub":
            a, b = srcs
            ra, rb = reqs
            cell = _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    acc(a, g)
                if rb:
                    acc(b, _unout(cell, np.negative, g), fresh=True)

            return run

        if kind == "mul":
            a, b = srcs
            ra, rb = reqs
            cell_a, cell_b = _Cell(), _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    acc(a, _binout(cell_a, np.multiply, g, arena[b]), fresh=True)
                if rb:
                    acc(b, _binout(cell_b, np.multiply, g, arena[a]), fresh=True)

            return run

        if kind == "div":
            a, b = srcs
            ra, rb = reqs
            cell = _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    acc(a, _binout(cell, np.divide, g, arena[b]), fresh=True)
                if rb:
                    acc(b, -g * arena[a] / (arena[b] ** 2), fresh=True)

            return run

        if kind == "pow":
            exponent = rec.meta["exponent"]
            (a,) = srcs

            def run():
                acc(a, gbufs[o] * exponent * arena[a] ** (exponent - 1), fresh=True)

            return run

        if kind == "exp":
            (a,) = srcs
            cell = _Cell()

            def run():
                acc(a, _binout(cell, np.multiply, gbufs[o], arena[o]), fresh=True)

            return run

        if kind == "log":
            (a,) = srcs
            cell = _Cell()

            def run():
                acc(a, _binout(cell, np.divide, gbufs[o], arena[a]), fresh=True)

            return run

        if kind == "sqrt":
            (a,) = srcs

            def run():
                acc(a, gbufs[o] / (2.0 * arena[o]), fresh=True)

            return run

        if kind == "tanh":
            (a,) = srcs

            def run():
                acc(a, gbufs[o] * (1.0 - arena[o] ** 2), fresh=True)

            return run

        if kind == "sigmoid":
            (a,) = srcs

            def run():
                out = arena[o]
                acc(a, gbufs[o] * out * (1.0 - out), fresh=True)

            return run

        if kind == "sum":
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            in_shape = rec.parents[0].data.shape
            (a,) = srcs

            def run():
                g = gbufs[o]
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis=axis)
                acc(a, np.broadcast_to(g, in_shape))

            return run

        if kind == "reshape":
            in_shape = rec.parents[0].data.shape
            (a,) = srcs

            def run():
                acc(a, gbufs[o].reshape(in_shape))

            return run

        if kind == "transpose":
            inverse = np.argsort(rec.meta["axes"])
            (a,) = srcs

            def run():
                acc(a, gbufs[o].transpose(inverse))

            return run

        if kind == "matmul":
            a, b = srcs
            ra, rb = reqs
            a_nd = rec.parents[0].data.ndim
            b_nd = rec.parents[1].data.ndim
            cell_a, cell_b = _Cell(), _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    if b_nd == 1:
                        acc(
                            a,
                            np.outer(g, arena[b]) if g.ndim else g * arena[b],
                            fresh=True,
                        )
                    else:
                        acc(
                            a,
                            _binout(cell_a, np.matmul, g, _swap_last(arena[b])),
                            fresh=True,
                        )
                if rb:
                    if a_nd == 1:
                        acc(
                            b,
                            np.outer(arena[a], g) if g.ndim else g * arena[a],
                            fresh=True,
                        )
                    else:
                        acc(
                            b,
                            _binout(cell_b, np.matmul, _swap_last(arena[a]), g),
                            fresh=True,
                        )

            return run

        raise CaptureError(f"no backward kernel for op kind {kind!r}")


# ----------------------------------------------------------------------
# Stacked-client replay
# ----------------------------------------------------------------------
def _stacked_unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` to the stacked target ``shape`` = (K,) + base.

    The client axis is *leading*, so broadcast dimensions live between it
    and the base shape; this mirrors :func:`repro.grad.tensor._unbroadcast`
    with every reduction shifted one axis right, which keeps the per-slice
    summation pattern identical to the eager single-client pass.
    """
    if grad.shape == shape:
        return grad
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(1, 1 + extra_dims)))
    stretched = tuple(
        axis
        for axis in range(1, len(shape))
        if shape[axis] == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


_STACKED_EXACT: bool | None = None


def stacked_matmul_is_exact() -> bool:
    """Whether this host's batched 3-D matmul is bitwise per-slice exact.

    The stacked kernels turn every 2-D GEMM into one slice of a 3-D
    batched GEMM.  Most BLAS builds dispatch each batch slice to the same
    2-D kernel (exact); some reassociate the reduction for small shapes.
    This probes the actual library once with the three matmul layouts the
    replay uses (forward, dX, dW) so tests and the drift check can pick
    bitwise or tolerance assertions to match reality.
    """
    global _STACKED_EXACT
    if _STACKED_EXACT is None:
        rng = np.random.default_rng(0xC11E27)
        exact = True
        for m, n, p in ((32, 784, 64), (32, 64, 10), (64, 400, 120)):
            x = rng.standard_normal((4, m, n)).astype(np.float32)
            w = rng.standard_normal((4, p, n)).astype(np.float32)
            fwd = x @ w.transpose(0, 2, 1)
            gw = fwd.transpose(0, 2, 1) @ x
            gx = fwd @ w
            for k in range(4):
                exact = (
                    exact
                    and np.array_equal(fwd[k], x[k] @ w[k].T)
                    and np.array_equal(gw[k], fwd[k].T @ x[k])
                    and np.array_equal(gx[k], fwd[k] @ w[k])
                )
        _STACKED_EXACT = bool(exact)
    return _STACKED_EXACT


class StackedStep:
    """A compiled training step batched over a leading client axis.

    Every stacked slot holds a ``(K,) + base`` array.  Parameters live in
    arena buffers *owned by the program*: the caller copies each client's
    weights in (:meth:`param_stack`), an optimizer mutates them in place
    between steps, and the trained values are read back out of the same
    buffers — rebinding them would break the compiled views.
    """

    __slots__ = (
        "arena",
        "forward_ops",
        "backward_ops",
        "param_slots",
        "input_slot",
        "labels_slot",
        "out_slot",
        "gbufs",
        "gseen",
        "gseen_false",
        "seed",
        "acc",
        "stack",
        "stats",
    )

    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)

    @property
    def features(self) -> np.ndarray:
        """The ``(K, batch, ...)`` input buffer; fill one row per client."""
        return self.arena[self.input_slot]

    @property
    def labels(self) -> np.ndarray:
        """The ``(K, batch)`` target buffer; fill one row per client."""
        return self.arena[self.labels_slot]

    def param_stack(self, index: int) -> np.ndarray | None:
        """The ``(K,) + shape`` buffer of parameter ``index`` (in
        ``model.parameters()`` order), or None when the traced step never
        touched that parameter."""
        slot = self.param_slots[index]
        return None if slot is None else self.arena[slot]

    def step(self) -> np.ndarray:
        """One batched SGD step's forward+backward; returns (K,) losses.

        Gradients are left in :meth:`grads`; the returned array is an
        arena buffer overwritten by the next call.
        """
        for op in self.forward_ops:
            op()
        self.gseen[:] = self.gseen_false
        self.acc(self.out_slot, self.seed)
        for op in self.backward_ops:
            op()
        return self.arena[self.out_slot]

    def grads(self) -> list:
        """Per-parameter ``(K,) + shape`` gradients, aligned with
        ``model.parameters()``; None entries received no gradient."""
        gbufs = self.gbufs
        return [
            None if slot is None else gbufs[slot] for slot in self.param_slots
        ]


class _StackedCompiler(_Compiler):
    """Compiles a tape into a :class:`StackedStep` over K clients.

    Slot layout: op outputs, parameters, the input batch and the labels
    become ``(K,) + base`` buffers; non-parameter constants stay unstacked
    and broadcast (NumPy's right-alignment handles them untouched).  A
    stacked operand whose base rank is *below* the output's base rank
    must be viewed as ``(K, 1, ..., base)`` before any broadcasting op —
    naive right-alignment would smear the client axis across a data
    dimension — which is what :meth:`_reader` provides.
    """

    def __init__(
        self, tape, input_tensor, output, labels, stack, params, optimize=True
    ):
        self.stack = stack
        self._stacked: set[int] = set()
        self._param_index = {id(p): i for i, p in enumerate(params)}
        self.param_slots: list[int | None] = [None] * len(params)
        super().__init__(tape, input_tensor, output, labels, optimize=optimize)

    # -- slots ----------------------------------------------------------
    def _ensure_slot(self, t: Tensor, is_out: bool) -> int:
        existing = self.slots.get(id(t))
        if existing is not None:
            return existing
        stack = self.stack
        base_shape = t.data.shape
        dtype = t.data.dtype
        if is_out:
            slot = self._new_slot((stack,) + base_shape, dtype)
            self.slots[id(t)] = slot
            self._stacked.add(slot)
            return slot
        if isinstance(t, Parameter):
            index = self._param_index.get(id(t))
            if index is None:
                raise CaptureError(
                    "traced parameter is not in the model's parameter list"
                )
            slot = self._new_slot((stack,) + base_shape, dtype)
            self.slots[id(t)] = slot
            self._stacked.add(slot)
            self.arena[slot] = np.empty((stack,) + base_shape, dtype)
            self.param_slots[index] = slot
            return slot
        if t is self.input_tensor:
            slot = self._new_slot((stack,) + base_shape, dtype)
            self.slots[id(t)] = slot
            self._stacked.add(slot)
            self.arena[slot] = np.empty((stack,) + base_shape, dtype)
            self.input_slot = slot
            return slot
        if id(t) in self._buffer_leaf_map:
            raise CaptureError(
                "stacked replay does not support module buffers (batch norm)"
            )
        if t.requires_grad:
            raise CaptureError(
                "stacked replay cannot bind a gradient-bearing non-parameter leaf"
            )
        # Constant (coerced scalar, eps, ...): shared by all clients.
        slot = self._new_slot(base_shape, dtype)
        self.slots[id(t)] = slot
        if self.optimize:
            value, shared = _intern_constant(t.data)
            self._interned += 1 if shared else 0
            self.arena[slot] = value
        else:
            self.arena[slot] = np.array(t.data, copy=True)
        return slot

    def _make_acc(self):
        shapes, dtypes, gbufs = self.shapes, self.dtypes, self.gbufs
        seen: list = []

        def acc(slot, value, fresh=False):
            if value.shape != shapes[slot]:
                value = _stacked_unbroadcast(np.asarray(value), shapes[slot])
            if seen[slot]:
                gbufs[slot] += value
            else:
                if (
                    fresh
                    and value.dtype == dtypes[slot]
                    and value.flags.writeable
                ):
                    gbufs[slot] = value
                else:
                    buf = gbufs[slot]
                    if buf is None:
                        gbufs[slot] = value.astype(dtypes[slot], copy=True)
                    else:
                        np.copyto(buf, value)
                seen[slot] = True

        self._acc_seen = seen
        return acc

    def _reader(self, t: Tensor, out_base_ndim: int):
        """A zero-arg closure yielding ``t``'s buffer, viewed so its
        base dims align right against a stacked output of that rank."""
        slot = self.slot(t)
        arena = self.arena
        if slot not in self._stacked:
            return lambda: arena[slot]
        base = self.shapes[slot][1:]
        if len(base) >= out_base_ndim:
            return lambda: arena[slot]
        view_shape = (
            (self.stack,) + (1,) * (out_base_ndim - len(base)) + base
        )
        return lambda: arena[slot].reshape(view_shape)

    # -- optimizer hooks -------------------------------------------------
    def _managed_spec(self, rec: _OpRecord):
        # Stacked compile-time buffers are always freshly-built
        # C-contiguous ``(K,) + base`` arrays, so every planned kind is
        # colorable regardless of the eager trace's layout.
        if rec.kind not in _PLANNED_KINDS:
            return None
        return (self.stack,) + rec.out.data.shape, rec.out.data.dtype, None

    def _mask_shape(self, rec: _OpRecord) -> tuple:
        return (self.stack,) + rec.parents[0].data.shape

    def _fresh_buf(self, rec: _OpRecord) -> np.ndarray:
        return np.empty((self.stack,) + rec.out.data.shape, rec.out.data.dtype)

    # -- compile --------------------------------------------------------
    def compile_stacked(self) -> StackedStep:
        stack = self.stack
        self.labels_slot = self._new_slot(
            (stack,) + self.labels.shape, self.labels.dtype
        )
        self.arena[self.labels_slot] = np.empty(
            (stack,) + self.labels.shape, self.labels.dtype
        )
        self._stacked.add(self.labels_slot)

        for kind, entry in self.tape.entries:
            if kind != "op":
                raise CaptureError(
                    "stacked replay does not support batch-norm updates"
                )
            for parent in entry.parents:
                self._ensure_slot(parent, is_out=False)
            self._ensure_slot(entry.out, is_out=True)

        if id(self.output) not in self.slots:
            raise CaptureError("model output is not an op of the tape")
        if not self.output.requires_grad:
            raise CaptureError("output does not require grad")
        if self.output.data.size != 1:
            raise CaptureError("backward capture needs a scalar loss")
        if self.input_slot is None:
            raise CaptureError("model output does not depend on the input batch")
        seed = np.ones(
            (stack,) + self.output.data.shape, dtype=self.output.data.dtype
        )

        sched = self._schedule_backward()
        if self.optimize:
            self._plan_arena(sched)

        forward_ops: list = []
        for kind, entry in self.tape.entries:
            forward_ops.append(self._forward_op(entry))

        backward_ops: list = []
        for rec in sched:
            kernel = self._backward_op(rec)
            if kernel is not None:
                backward_ops.append(kernel)

        self._acc_seen.extend([False] * len(self.arena))
        return StackedStep(
            arena=self.arena,
            forward_ops=forward_ops,
            backward_ops=backward_ops,
            param_slots=self.param_slots,
            input_slot=self.input_slot,
            labels_slot=self.labels_slot,
            out_slot=self.slot(self.output),
            gbufs=self.gbufs,
            gseen=self._acc_seen,
            gseen_false=[False] * len(self.arena),
            seed=seed,
            acc=self.acc,
            stack=stack,
            stats=self._plan_stats(),
        )

    # -- forward kernels ------------------------------------------------
    def _forward_op(self, rec: _OpRecord):
        kind = rec.kind
        arena = self.arena
        stack = self.stack
        o = self.slot(rec.out)
        srcs = [self.slot(p) for p in rec.parents]
        out_base = rec.out.data.shape

        if kind in _BINARY_UFUNCS:
            fn = _BINARY_UFUNCS[kind]
            a, b = srcs
            ra = self._reader(rec.parents[0], len(out_base))
            rb = self._reader(rec.parents[1], len(out_base))
            buf = None
            if kind == "add" and self._peephole_src(rec) is not None:
                # Same bias-add peephole as the serial compiler, against
                # the stacked matmul buffer.
                buf = arena[a]
            if buf is None:
                buf = self._out_buf(rec)
            arena[o] = buf

            def run():
                fn(ra(), rb(), out=buf)

            return run

        if kind in _UNARY_UFUNCS:
            fn = _UNARY_UFUNCS[kind]
            buf = self._out_buf(rec)
            arena[o] = buf
            (a,) = srcs

            def run():
                fn(arena[a], out=buf)

            return run

        if kind == "relu":
            return self._relu(rec)

        if kind == "sigmoid":
            buf = self._out_buf(rec)
            arena[o] = buf
            (a,) = srcs
            st: dict = {}

            def run():
                xv = arena[a]
                t = st.get("t")
                if t is None:
                    t = np.exp(-xv)
                    st["t"] = t
                else:
                    np.negative(xv, out=t)
                    np.exp(t, out=t)
                np.add(1.0, t, out=t)
                np.divide(1.0, t, out=buf)

            return run

        if kind == "pow":
            exponent = rec.meta["exponent"]
            (a,) = srcs

            def run():
                arena[o] = arena[a] ** exponent

            return run

        if kind == "sum":
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            (a,) = srcs
            buf = self._out_buf(rec)
            arena[o] = buf
            if axis is None:
                # Full reduce becomes a per-client reduce over the
                # flattened base; C-order flattening matches the eager
                # element sequence slice for slice.
                flat_out = buf.reshape(stack)

                def run():
                    arena[a].reshape(stack, -1).sum(axis=1, out=flat_out)

                return run
            saxis = (
                tuple(ax + 1 if ax >= 0 else ax for ax in axis)
                if isinstance(axis, tuple)
                else (axis + 1 if axis >= 0 else axis)
            )

            def run():
                arena[a].sum(axis=saxis, keepdims=keepdims, out=buf)

            return run

        if kind == "reshape":
            shape = (stack,) + tuple(rec.meta["shape"])
            (a,) = srcs

            def run():
                arena[o] = arena[a].reshape(shape)

            return run

        if kind == "transpose":
            in_ndim = rec.parents[0].data.ndim
            axes = tuple(ax % in_ndim for ax in rec.meta["axes"])
            saxes = (0,) + tuple(ax + 1 for ax in axes)
            (a,) = srcs

            def run():
                arena[o] = arena[a].transpose(saxes)

            return run

        if kind == "matmul":
            if rec.parents[0].data.ndim < 2 or rec.parents[1].data.ndim < 2:
                raise CaptureError("stacked matmul needs >= 2-D operands")
            ra = self._reader(rec.parents[0], len(out_base))
            rb = self._reader(rec.parents[1], len(out_base))
            buf = self._out_buf(rec)
            arena[o] = buf

            def run():
                np.matmul(ra(), rb(), out=buf)

            return run

        if kind == "conv2d":
            return self._conv2d(rec)
        if kind == "max_pool2d":
            return self._max_pool2d(rec)
        if kind == "avg_pool2d":
            return self._avg_pool2d(rec)
        if kind == "cross_entropy":
            return self._cross_entropy(rec)

        raise CaptureError(f"no stacked forward kernel for op kind {kind!r}")

    def _bn_op(self, entry):
        raise CaptureError("stacked replay does not support batch-norm updates")

    # -- composite kernels ----------------------------------------------
    def _relu(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        stack = self.stack
        x_t = rec.parents[0]
        a = self.slot(x_t)
        o = self.slot(rec.out)
        buf = self._out_buf(rec)
        arena[o] = buf
        mask = self._mask_buf(rec)
        cell = _Cell()

        def fwd():
            np.maximum(arena[a], 0.0, out=buf)

        def bwd():
            np.greater(arena[a], 0, out=mask)
            acc(a, _binout(cell, np.multiply, gbufs[o], mask), fresh=True)

        self._register_bwd(rec, bwd, x_t.requires_grad)
        return fwd

    def _conv2d(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        stack = self.stack
        meta = rec.meta
        n, c, h, w = meta["image_shape"]
        _, oc, oh, ow = meta["out_shape"]
        kernel, stride, padding = meta["kernel"], meta["stride"], meta["padding"]
        has_bias = meta["has_bias"]
        x_t, w_t = rec.parents[0], rec.parents[1]
        b_t = rec.parents[2] if has_bias else None
        sx, sw = self.slot(x_t), self.slot(w_t)
        sb = self.slot(b_t) if has_bias else None
        o = self.slot(rec.out)
        ckk = c * kernel * kernel
        m = n * oh * ow
        weight_stack_shape = (stack,) + w_t.data.shape
        w_stacked = sw in self._stacked
        b_stacked = has_bias and sb in self._stacked
        st: dict = {}
        gw_cell, gc_cell = _Cell(), _Cell()

        def flat_weight_view():
            wt = arena[sw]
            return wt.reshape(stack, oc, ckk) if w_stacked else wt.reshape(oc, ckk)

        def fwd():
            x = arena[sx]
            flat_weight = flat_weight_view()
            img = x
            if padding > 0:
                padded = st.get("padded")
                if padded is None:
                    padded = np.zeros(
                        (stack, n, c, h + 2 * padding, w + 2 * padding),
                        dtype=x.dtype,
                    )
                    st["padded"] = padded
                padded[:, :, :, padding : padding + h, padding : padding + w] = x
                img = padded
            strides = img.strides
            windows = as_strided(
                img,
                shape=(stack, n, c, oh, ow, kernel, kernel),
                strides=(
                    strides[0],
                    strides[1],
                    strides[2],
                    strides[3] * stride,
                    strides[4] * stride,
                    strides[3],
                    strides[4],
                ),
                writeable=False,
            )
            cols7 = st.get("cols7")
            if cols7 is None:
                cols7 = np.empty(
                    (stack, n, oh, ow, c, kernel, kernel), dtype=x.dtype
                )
                st["cols7"] = cols7
                st["cols3"] = cols7.reshape(stack, m, ckk)
            np.copyto(cols7, windows.transpose(0, 1, 3, 4, 2, 5, 6))
            cols3 = st["cols3"]
            fwT = (
                flat_weight.transpose(0, 2, 1) if w_stacked else flat_weight.T
            )
            mm = st.get("mm")
            if mm is None:
                mm = cols3 @ fwT
                st["mm"] = mm
            else:
                np.matmul(cols3, fwT, out=mm)
            out_flat = mm
            if has_bias:
                bias = arena[sb]
                bview = bias.reshape(stack, 1, oc) if b_stacked else bias
                bout = st.get("bout")
                if bout is None:
                    bout = out_flat + bview
                    st["bout"] = bout
                else:
                    np.add(out_flat, bview, out=bout)
                out_flat = bout
            arena[o] = out_flat.reshape(stack, n, oh, ow, oc).transpose(
                0, 1, 4, 2, 3
            )

        x_req = x_t.requires_grad
        w_req = w_t.requires_grad
        b_req = has_bias and b_t.requires_grad

        def col2im_replay(gc):
            # The stacked analogue of the serial compiler's col2im replay:
            # one extra leading axis on every buffer, the same (ki, kj)
            # slice-add order per client slice.
            gcT = st.get("gcT")
            if gcT is None:
                gcT = np.empty(
                    (kernel, kernel, stack, n, c, oh, ow), dtype=gc.dtype
                )
                st["gcT"] = gcT
                st["gpad"] = np.zeros(
                    (stack, n, c, h + 2 * padding, w + 2 * padding),
                    dtype=gc.dtype,
                )
            np.copyto(
                gcT,
                gc.reshape(stack, n, oh, ow, c, kernel, kernel).transpose(
                    5, 6, 0, 1, 4, 2, 3
                ),
            )
            gpad = st["gpad"]
            gpad.fill(0.0)
            for ki in range(kernel):
                h_stop = ki + stride * oh
                for kj in range(kernel):
                    w_stop = kj + stride * ow
                    gpad[:, :, :, ki:h_stop:stride, kj:w_stop:stride] += gcT[
                        ki, kj
                    ]
            if padding > 0:
                return gpad[:, :, :, padding:-padding, padding:-padding]
            return gpad

        def bwd():
            g = gbufs[o]
            grad_flat = g.transpose(0, 1, 3, 4, 2).reshape(stack, m, oc)
            cols3 = st["cols3"]
            flat_weight = flat_weight_view()
            if w_req:
                gw = _binout(
                    gw_cell, np.matmul, grad_flat.transpose(0, 2, 1), cols3
                )
                acc(sw, gw.reshape(weight_stack_shape), fresh=True)
            if b_req:
                acc(sb, grad_flat.sum(axis=1), fresh=True)
            if x_req:
                gc = _binout(gc_cell, np.matmul, grad_flat, flat_weight)
                acc(sx, col2im_replay(gc), fresh=True)

        self._register_bwd(rec, bwd, x_req or w_req or b_req)
        return fwd

    def _max_pool2d(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        stack = self.stack
        meta = rec.meta
        kernel, stride = meta["kernel"], meta["stride"]
        n, c, h, w = meta["image_shape"]
        _, _, oh, ow = meta["out_shape"]
        # K*n*c image planes form one flat batch: pooling never mixes
        # planes, so the serial kernel's geometry applies verbatim.
        nc = stack * n * c
        x_t = rec.parents[0]
        sx = self.slot(x_t)
        o = self.slot(rec.out)
        window = kernel * kernel
        count = nc * oh * ow
        rows = np.arange(count)
        flat_base = rows * window
        ki, kj = np.divmod(np.arange(window), kernel)
        b, rem = np.divmod(rows, oh * ow)
        a_h, a_w = np.divmod(rem, ow)
        col_to_img = (
            b[:, None] * (h * w)
            + (a_h[:, None] * stride + ki[None, :]) * w
            + (a_w[:, None] * stride + kj[None, :])
        ).ravel()
        nonoverlap = stride >= kernel
        st: dict = {}

        def fwd():
            as_batch = arena[sx].reshape(nc, 1, h, w)
            strides = as_batch.strides
            windows = as_strided(
                as_batch,
                shape=(nc, 1, oh, ow, kernel, kernel),
                strides=(
                    strides[0],
                    strides[1],
                    strides[2] * stride,
                    strides[3] * stride,
                    strides[2],
                    strides[3],
                ),
                writeable=False,
            )
            cols6 = st.get("cols6")
            if cols6 is None:
                cols6 = np.empty(
                    (nc, oh, ow, 1, kernel, kernel), dtype=as_batch.dtype
                )
                st["cols6"] = cols6
                st["cols2"] = cols6.reshape(count, window)
                st["arg"] = np.empty(count, dtype=np.intp)
                st["idx"] = np.empty(count, dtype=np.intp)
                st["out"] = np.empty(
                    (stack, n, c, oh, ow), dtype=as_batch.dtype
                )
            np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
            cols2 = st["cols2"]
            arg = np.argmax(cols2, axis=1, out=st["arg"])
            idx = np.add(flat_base, arg, out=st["idx"])
            out = st["out"]
            np.take(cols2.reshape(-1), idx, out=out.reshape(-1))
            arena[o] = out

        def bwd():
            g = gbufs[o]
            if nonoverlap:
                gimg = st.get("gimg")
                if gimg is None:
                    gimg = np.empty(nc * h * w, dtype=g.dtype)
                    st["gimg"] = gimg
                    st["imgidx"] = np.empty(count, dtype=np.intp)
                    st["gtmp"] = np.empty(count, dtype=g.dtype)
                gimg.fill(0.0)
                imgidx = np.take(col_to_img, st["idx"], out=st["imgidx"])
                gtmp = np.add(g.reshape(-1), 0.0, out=st["gtmp"])
                gimg[imgidx] = gtmp
                acc(sx, gimg.reshape(stack, n, c, h, w), fresh=True)
                return
            cols2 = st["cols2"]
            gc = st.get("gc")
            if gc is None:
                gc = np.zeros_like(cols2)
                st["gc"] = gc
            else:
                gc.fill(0.0)
            gc[rows, st["arg"]] = g.reshape(-1)
            grad_images = F.col2im(gc, (nc, 1, h, w), kernel, stride, 0)
            acc(sx, grad_images.reshape(stack, n, c, h, w), fresh=True)

        self._register_bwd(rec, bwd, x_t.requires_grad)
        return fwd

    def _avg_pool2d(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        stack = self.stack
        meta = rec.meta
        kernel, stride = meta["kernel"], meta["stride"]
        n, c, h, w = meta["image_shape"]
        _, _, oh, ow = meta["out_shape"]
        nc = stack * n * c
        window = kernel * kernel
        x_t = rec.parents[0]
        sx = self.slot(x_t)
        o = self.slot(rec.out)
        st: dict = {}

        def fwd():
            as_batch = arena[sx].reshape(nc, 1, h, w)
            strides = as_batch.strides
            windows = as_strided(
                as_batch,
                shape=(nc, 1, oh, ow, kernel, kernel),
                strides=(
                    strides[0],
                    strides[1],
                    strides[2] * stride,
                    strides[3] * stride,
                    strides[2],
                    strides[3],
                ),
                writeable=False,
            )
            cols6 = st.get("cols6")
            if cols6 is None:
                cols6 = np.empty(
                    (nc, oh, ow, 1, kernel, kernel), dtype=as_batch.dtype
                )
                st["cols6"] = cols6
                st["cols2"] = cols6.reshape(nc * oh * ow, window)
            np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
            cols2 = st["cols2"]
            mean = st.get("mean")
            if mean is None:
                mean = cols2.mean(axis=1)
                st["mean"] = mean
            else:
                cols2.mean(axis=1, out=mean)
            arena[o] = mean.reshape(stack, n, c, oh, ow)

        def bwd():
            g = gbufs[o]
            grad_cols = np.repeat(g.reshape(-1, 1), window, axis=1) / window
            grad_images = F.col2im(grad_cols, (nc, 1, h, w), kernel, stride, 0)
            acc(sx, grad_images.reshape(stack, n, c, h, w), fresh=True)

        self._register_bwd(rec, bwd, x_t.requires_grad)
        return fwd

    def _cross_entropy(self, rec: _OpRecord):
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        stack = self.stack
        reduction = rec.meta["reduction"]
        targets = rec.meta["targets"]
        if self.labels is None or targets is not self.labels:
            raise CaptureError("cross_entropy targets are not the step labels")
        logits_t = rec.parents[0]
        n = logits_t.data.shape[0]
        sl = self.slot(logits_t)
        lt = self.labels_slot
        o = self.slot(rec.out)
        kgrid = np.arange(stack)[:, None]
        rows = np.arange(n)[None, :]
        st: dict = {}
        gl_cell = _Cell()

        def fwd():
            logits = arena[sl]
            tgt = arena[lt]
            if "max" not in st:
                st["max"] = logits.max(axis=2, keepdims=True)
                st["shifted"] = logits - st["max"]
                st["exp"] = np.exp(st["shifted"])
                st["sumexp"] = st["exp"].sum(axis=2, keepdims=True)
                st["ln"] = np.log(st["sumexp"][:, :, 0])
                st["losses"] = st["ln"] - st["shifted"][kgrid, rows, tgt]
            else:
                logits.max(axis=2, keepdims=True, out=st["max"])
                np.subtract(logits, st["max"], out=st["shifted"])
                np.exp(st["shifted"], out=st["exp"])
                st["exp"].sum(axis=2, keepdims=True, out=st["sumexp"])
                np.log(st["sumexp"][:, :, 0], out=st["ln"])
                np.subtract(
                    st["ln"], st["shifted"][kgrid, rows, tgt], out=st["losses"]
                )
            losses = st["losses"]
            if reduction == "none":
                arena[o] = losses
                return
            red = st.get("red")
            if red is None:
                red = (
                    losses.sum(axis=1)
                    if reduction == "sum"
                    else losses.mean(axis=1)
                )
                st["red"] = red
            elif reduction == "sum":
                losses.sum(axis=1, out=red)
            else:
                losses.mean(axis=1, out=red)
            arena[o] = red

        def bwd():
            g = gbufs[o]
            tgt = arena[lt]
            if reduction == "none":
                scale = np.asarray(g).reshape(stack, n, 1)
            elif reduction == "mean":
                scale = (np.asarray(g) / n).reshape(stack, 1, 1)
            else:
                scale = np.asarray(g).reshape(stack, 1, 1)
            softmax = np.divide(st["exp"], st["sumexp"], out=st["exp"])
            gl = _binout(gl_cell, np.multiply, softmax, scale)
            gl[kgrid, rows, tgt] -= scale[:, :, 0]
            acc(sl, gl, fresh=True)

        self._register_bwd(rec, bwd, logits_t.requires_grad)
        return fwd

    # -- backward kernels -----------------------------------------------
    def _backward_op(self, rec: _OpRecord):
        if id(rec) in self._composite_bwd:
            return self._composite_bwd[id(rec)]
        kind = rec.kind
        arena, acc, gbufs = self.arena, self.acc, self.gbufs
        stack = self.stack
        o = self.slot(rec.out)
        srcs = [self.slot(p) for p in rec.parents]
        reqs = [p.requires_grad for p in rec.parents]
        out_ndim = rec.out.data.ndim

        if kind == "mul":
            a, b = srcs
            ra, rb = reqs
            read_a = self._reader(rec.parents[0], out_ndim)
            read_b = self._reader(rec.parents[1], out_ndim)
            cell_a, cell_b = _Cell(), _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    acc(a, _binout(cell_a, np.multiply, g, read_b()), fresh=True)
                if rb:
                    acc(b, _binout(cell_b, np.multiply, g, read_a()), fresh=True)

            return run

        if kind == "div":
            a, b = srcs
            ra, rb = reqs
            read_a = self._reader(rec.parents[0], out_ndim)
            read_b = self._reader(rec.parents[1], out_ndim)
            cell = _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    acc(a, _binout(cell, np.divide, g, read_b()), fresh=True)
                if rb:
                    acc(b, -g * read_a() / (read_b() ** 2), fresh=True)

            return run

        if kind == "sum":
            axis = rec.meta["axis"]
            keepdims = rec.meta["keepdims"]
            in_base = rec.parents[0].data.shape
            in_shape = (stack,) + in_base
            (a,) = srcs
            if axis is None:
                gview = (stack,) + (1,) * len(in_base)

                def run():
                    g = gbufs[o]
                    acc(a, np.broadcast_to(g.reshape(gview), in_shape))

                return run
            saxis = (
                tuple(ax + 1 if ax >= 0 else ax for ax in axis)
                if isinstance(axis, tuple)
                else (axis + 1 if axis >= 0 else axis)
            )

            def run():
                g = gbufs[o]
                if not keepdims:
                    g = np.expand_dims(g, axis=saxis)
                acc(a, np.broadcast_to(g, in_shape))

            return run

        if kind == "reshape":
            in_shape = (stack,) + rec.parents[0].data.shape
            (a,) = srcs

            def run():
                acc(a, gbufs[o].reshape(in_shape))

            return run

        if kind == "transpose":
            in_ndim = rec.parents[0].data.ndim
            axes = tuple(ax % in_ndim for ax in rec.meta["axes"])
            inverse = (0,) + tuple(int(ax) + 1 for ax in np.argsort(axes))
            (a,) = srcs

            def run():
                acc(a, gbufs[o].transpose(inverse))

            return run

        if kind == "matmul":
            a, b = srcs
            ra, rb = reqs
            read_a = self._reader(rec.parents[0], out_ndim)
            read_b = self._reader(rec.parents[1], out_ndim)
            cell_a, cell_b = _Cell(), _Cell()

            def run():
                g = gbufs[o]
                if ra:
                    acc(
                        a,
                        _binout(cell_a, np.matmul, g, _swap_last(read_b())),
                        fresh=True,
                    )
                if rb:
                    acc(
                        b,
                        _binout(cell_b, np.matmul, _swap_last(read_a()), g),
                        fresh=True,
                    )

            return run

        # add/neg/sub and the unary chain rules are rank-preserving, so
        # the serial kernels (with this class's stacked ``acc``) apply.
        return super()._backward_op(rec)


def compile_stacked_step(
    model, stack: int, features, labels, optimize: bool = True
) -> StackedStep:
    """Compile a K-client batched SGD training step for ``model``.

    ``features``/``labels`` are shape/dtype templates for *one* client's
    full-size batch; values are ignored.  The trace runs on synthetic
    zeros (consuming no randomness) and the model state is restored
    afterwards, so calling this is observably side-effect free.  Raises
    :class:`CaptureError` when the model records ops the stacked
    compiler cannot batch (e.g. batch norm, dropout).
    """
    snapshot = model.state_dict()
    model.train()
    synth_x = np.zeros_like(np.asarray(features))
    synth_y = np.zeros_like(np.asarray(labels))
    tape = Tape()
    x = Tensor(synth_x)
    previous = tensor_mod._set_tape(tape)
    try:
        logits = model(x)
        loss = F.cross_entropy(logits, synth_y)
    finally:
        tensor_mod._set_tape(previous)
    try:
        if tape.failed is not None:
            raise CaptureError(tape.failed)
        compiler = _StackedCompiler(
            tape, x, loss, synth_y, stack, model.parameters(), optimize=optimize
        )
        return compiler.compile_stacked()
    finally:
        # The trace may have advanced buffer state (batch-norm running
        # stats) before failing; roll everything back.
        model.load_state_dict(snapshot)


class StackedEngine:
    """Per-(K, batch-shape) stacked programs for one model.

    Mirrors :class:`_Engine`'s failure memoization: a (stack, shapes)
    key whose compile was rejected raises the same :class:`CaptureError`
    immediately on later requests, so executors can probe cheaply.
    """

    def __init__(self, model, optimize: bool = True):
        self.model = model
        self.optimize = optimize
        self.programs: dict = {}
        self.failures: dict = {}

    def program(self, stack: int, features, labels) -> StackedStep:
        key = (
            stack,
            features.shape,
            str(features.dtype),
            labels.shape,
            str(labels.dtype),
        )
        program = self.programs.get(key)
        if program is not None:
            return program
        reason = self.failures.get(key)
        if reason is not None:
            raise CaptureError(reason)
        try:
            program = compile_stacked_step(
                self.model, stack, features, labels, optimize=self.optimize
            )
        except CaptureError as error:
            self.failures[key] = str(error)
            raise
        self.programs[key] = program
        return program


# ----------------------------------------------------------------------
# Engines
# ----------------------------------------------------------------------
class _Engine:
    """Shared capture bookkeeping: one program per batch-shape key.

    Only the *first* shape seen is captured; every other shape (the
    ragged last batch of a loader, odd evaluation tails) reports a
    fallback and runs eagerly.  ``captures``/``replays``/``fallbacks``
    count what actually happened, and ``failures`` maps a shape key to
    the reason its capture was rejected.
    """

    def __init__(self, model, optimize: bool = True):
        self.model = model
        self.optimize = optimize
        self.programs: dict = {}
        self.failures: dict = {}
        self.captures = 0
        self.replays = 0
        self.fallbacks = 0
        # Last program hit, keyed by raw shapes/dtypes: building the
        # string-keyed dict key costs tens of microseconds per step,
        # which is real money against a sub-millisecond replay.
        self._hot: tuple | None = None

    def _should_capture(self, key) -> bool:
        return not self.programs and key not in self.failures


class TrainingEngine(_Engine):
    """Captured forward+backward training step (loss and param grads)."""

    def step(self, features: np.ndarray, labels: np.ndarray) -> float | None:
        """Loss for one step, with grads left in ``param.grad``.

        Returns None when this batch shape must run eagerly.
        """
        hot = self._hot
        if (
            hot is not None
            and hot[0] == features.shape
            and hot[1] is features.dtype
            and hot[2] == labels.shape
            and hot[3] is labels.dtype
        ):
            self.replays += 1
            return hot[4].replay_step(features, labels)
        key = (
            features.shape,
            str(features.dtype),
            labels.shape,
            str(labels.dtype),
        )
        program = self.programs.get(key)
        if program is not None:
            # Builtin dtypes are interned, so the identity probe above
            # will hit from now on; exotic dtypes just stay on this path.
            self._hot = (
                features.shape, features.dtype, labels.shape, labels.dtype,
                program,
            )
            self.replays += 1
            return program.replay_step(features, labels)
        if not self._should_capture(key):
            self.fallbacks += 1
            return None
        return self._capture(key, features, labels)

    def _capture(self, key, features, labels) -> float:
        tape = Tape()
        x = Tensor(features)
        previous = tensor_mod._set_tape(tape)
        try:
            logits = self.model(x)
            loss = F.cross_entropy(logits, labels)
        finally:
            tensor_mod._set_tape(previous)
        if tape.failed is not None:
            self.failures[key] = tape.failed
        else:
            try:
                # Compile BEFORE backward: backward() frees the graph.
                program = _Compiler(
                    tape, x, loss, labels, optimize=self.optimize
                ).compile(with_backward=True)
                self.programs[key] = program
                self.captures += 1
            except CaptureError as error:
                self.failures[key] = str(error)
        loss.backward()
        return loss.item()


class InferenceEngine(_Engine):
    """Captured forward pass for evaluation (logits only, no grads)."""

    def forward(self, features: np.ndarray) -> np.ndarray | None:
        """Logits for one batch, or None when it must run eagerly.

        The returned array is an arena buffer overwritten by the next
        replay — consume it before calling again.
        """
        hot = self._hot
        if (
            hot is not None
            and hot[0] == features.shape
            and hot[1] is features.dtype
        ):
            self.replays += 1
            return hot[2].replay_forward(features)
        key = (features.shape, str(features.dtype))
        program = self.programs.get(key)
        if program is not None:
            self._hot = (features.shape, features.dtype, program)
            self.replays += 1
            return program.replay_forward(features)
        if not self._should_capture(key):
            self.fallbacks += 1
            return None
        tape = Tape()
        x = Tensor(features)
        previous = tensor_mod._set_tape(tape)
        try:
            out = self.model(x)
        finally:
            tensor_mod._set_tape(previous)
        if tape.failed is not None:
            self.failures[key] = tape.failed
            return out.data
        try:
            program = _Compiler(
                tape, x, out, None, optimize=self.optimize
            ).compile(with_backward=False)
            self.programs[key] = program
            self.captures += 1
        except CaptureError as error:
            self.failures[key] = str(error)
        return out.data


def _engine_cache(model) -> dict:
    cache = getattr(model, "_capture_engines", None)
    if cache is None:
        # A plain attribute: Module.__setattr__ keeps it out of the
        # parameter/module registries, so it never reaches state_dict()
        # or a checkpoint (the model object itself is never pickled).
        cache = {}
        model._capture_engines = cache
    return cache


def training_engine(model, optimize: bool = True) -> TrainingEngine:
    """The model's cached :class:`TrainingEngine` (created on first use).

    ``optimize=False`` compiles programs without the arena planner and
    dead-op elimination (the ``--no-optimize`` escape hatch); optimized
    and raw engines are cached independently.
    """
    cache = _engine_cache(model)
    key = "train" if optimize else "train-raw"
    engine = cache.get(key)
    if engine is None:
        engine = TrainingEngine(model, optimize=optimize)
        cache[key] = engine
    return engine


def inference_engine(model, optimize: bool = True) -> InferenceEngine:
    """The model's cached :class:`InferenceEngine` (created on first use)."""
    cache = _engine_cache(model)
    key = "eval" if optimize else "eval-raw"
    engine = cache.get(key)
    if engine is None:
        engine = InferenceEngine(model, optimize=optimize)
        cache[key] = engine
    return engine


def stacked_engine(model, optimize: bool = True) -> StackedEngine:
    """The model's cached :class:`StackedEngine` (created on first use)."""
    cache = _engine_cache(model)
    key = "stacked" if optimize else "stacked-raw"
    engine = cache.get(key)
    if engine is None:
        engine = StackedEngine(model, optimize=optimize)
        cache[key] = engine
    return engine
