"""Flattening helpers: parameters/state dicts <-> single vectors.

The federated algorithms reason about models as points in parameter space
(deltas, control variates, norms), and the parallel executor ships the
global model to workers as one flat array.  These helpers convert between
the structured representation and flat vectors.

The default transport dtype is ``float32`` — the dtype every model
parameter and batch-norm buffer already uses — so a flatten/unflatten
round-trip is lossless *and* allocation-half-price compared to the old
``float64`` up/down-casts.  Callers doing high-precision vector arithmetic
(divergence metrics over many terms, control-variate algebra) can request
``dtype=np.float64`` explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.grad.nn.module import Parameter

#: dtype used to ship model state between server and workers; float32
#: round-trips model states exactly and matches the paper's float32
#: communication-cost accounting.
TRANSPORT_DTYPE = np.float32


def parameters_to_vector(params, dtype=TRANSPORT_DTYPE) -> np.ndarray:
    """Concatenate parameter arrays into one flat vector."""
    arrays = [np.asarray(p.data if isinstance(p, Parameter) else p) for p in params]
    if not arrays:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([a.reshape(-1).astype(dtype, copy=False) for a in arrays])


def vector_to_parameters(vector: np.ndarray, params) -> None:
    """Write a flat vector back into parameter arrays (in place)."""
    vector = np.asarray(vector)
    offset = 0
    params = list(params)
    total = sum(int(np.asarray(p.data).size) for p in params)
    if vector.size != total:
        raise ValueError(f"vector has {vector.size} entries, parameters need {total}")
    for param in params:
        size = param.data.size
        chunk = vector[offset : offset + size].reshape(param.data.shape)
        param.data = chunk.astype(param.data.dtype)
        offset += size


def state_dict_to_vector(
    state: dict[str, np.ndarray], keys=None, dtype=TRANSPORT_DTYPE
) -> np.ndarray:
    """Flatten selected ``state`` entries (all keys by default, sorted)."""
    if keys is None:
        keys = sorted(state)
    return np.concatenate(
        [np.asarray(state[k]).reshape(-1).astype(dtype, copy=False) for k in keys]
    )


def vector_to_state_dict(
    vector: np.ndarray, template: dict[str, np.ndarray], keys=None
) -> dict[str, np.ndarray]:
    """Unflatten a vector using ``template`` for shapes/dtypes.

    Entries not listed in ``keys`` are copied through from the template.
    """
    if keys is None:
        keys = sorted(template)
    vector = np.asarray(vector)
    out: dict[str, np.ndarray] = {
        k: np.asarray(v).copy() for k, v in template.items()
    }
    offset = 0
    for key in keys:
        ref = np.asarray(template[key])
        chunk = vector[offset : offset + ref.size]
        out[key] = chunk.reshape(ref.shape).astype(ref.dtype)
        offset += ref.size
    if offset != vector.size:
        raise ValueError(f"vector has {vector.size} entries, template needs {offset}")
    return out
