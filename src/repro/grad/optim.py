"""Optimizers for local training.

``SGD`` carries two extensions used by the federated algorithms:

- ``proximal_mu`` / :meth:`SGD.set_anchor`: adds ``mu * (w - w_anchor)`` to
  each gradient before the update, implementing the FedProx local objective
  (Algorithm 1, line 14 of the paper) without touching the loss graph.
- :meth:`SGD.set_correction`: adds a fixed per-parameter correction to each
  gradient, implementing SCAFFOLD's ``- c_i + c`` drift correction
  (Algorithm 2, line 20 of the paper).

Both follow the paper's formulation where the extra terms act on the raw
gradient *before* momentum is applied.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.grad.functional import reset_im2col_workspace
from repro.grad.nn.module import Parameter


class Optimizer:
    """Base optimizer: holds parameters and clears their gradients."""

    def __init__(self, params: Iterable[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        # A zero_grad marks a training-step boundary: the previous step's
        # graph is dead, so pooled im2col buffers may be recycled.
        reset_im2col_workspace()
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with momentum, weight decay, proximal term and corrections.

    Parameters
    ----------
    params:
        Parameters to optimize.
    lr:
        Learning rate (the paper uses 0.01, or 0.1 for rcv1).
    momentum:
        Momentum factor (the paper uses 0.9).
    weight_decay:
        L2 penalty added to the gradient.
    proximal_mu:
        FedProx ``mu``.  When positive, :meth:`set_anchor` must be called
        with the round's global weights before training.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        proximal_mu: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.proximal_mu = proximal_mu
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)
        self._anchor: list[np.ndarray] | None = None
        self._correction: list[np.ndarray] | None = None
        self._correction_mode = "step"

    def set_anchor(self, anchor: Sequence[np.ndarray] | None) -> None:
        """Fix the proximal anchor (the global model of the current round)."""
        if anchor is None:
            self._anchor = None
            return
        anchor = [np.asarray(a) for a in anchor]
        self._check_shapes(anchor, "anchor")
        self._anchor = anchor

    def set_correction(
        self, correction: Sequence[np.ndarray] | None, mode: str = "step"
    ) -> None:
        """Fix the additive correction (SCAFFOLD's ``c - c_i``).

        ``mode`` decides where it enters the update:

        - ``"step"`` (default): applied directly to the parameters after
          the (possibly momentum-smoothed) gradient step —
          ``w -= lr * correction`` — matching the NIID-Bench reference
          implementation.  Momentum never sees the correction, which keeps
          SCAFFOLD stable when local steps are few.
        - ``"grad"``: added to the raw gradient before momentum, the
          literal reading of Algorithm 2 line 20.  With momentum ``m`` the
          correction is asymptotically amplified by ``1/(1-m)``, which can
          destabilize training at small local-step counts.
        """
        if mode not in ("step", "grad"):
            raise ValueError(f"mode must be 'step' or 'grad', got {mode!r}")
        if correction is None:
            self._correction = None
            return
        correction = [np.asarray(c) for c in correction]
        self._check_shapes(correction, "correction")
        self._correction = correction
        self._correction_mode = mode

    def _check_shapes(self, arrays: Sequence[np.ndarray], label: str) -> None:
        if len(arrays) != len(self.params):
            raise ValueError(
                f"{label} has {len(arrays)} entries for {len(self.params)} params"
            )
        for array, param in zip(arrays, self.params):
            if array.shape != param.data.shape:
                raise ValueError(
                    f"{label} shape {array.shape} does not match "
                    f"parameter shape {param.data.shape}"
                )

    def step(self) -> None:
        """Apply one update; parameters without gradients are skipped."""
        if self.proximal_mu > 0 and self._anchor is None:
            raise RuntimeError("proximal_mu > 0 but no anchor set; call set_anchor()")
        momentum = self.momentum
        weight_decay = self.weight_decay
        proximal_mu = self.proximal_mu
        correction = self._correction
        velocities = self._velocity
        neg_lr = -self.lr
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if weight_decay:
                grad = grad + weight_decay * param.data
            if proximal_mu > 0:
                grad = grad + proximal_mu * (param.data - self._anchor[index])
            if correction is not None and self._correction_mode == "grad":
                grad = grad + correction[index]
            if momentum:
                velocity = velocities[index]
                if velocity is None:
                    velocity = np.array(grad, copy=True)
                    velocities[index] = velocity
                else:
                    # In place, same rounding as `m * v + g`: scale then add.
                    np.multiply(velocity, momentum, out=velocity)
                    velocity += grad
                grad = velocity
            if correction is not None and self._correction_mode == "step":
                grad = grad + correction[index]
            # One temporary instead of two; (-lr) * g + w rounds exactly
            # like w - lr * g, so the update stays bit-identical.  The
            # explicit ``out=`` keeps the parameter's memory layout: linear
            # weight grads are transposed views (F-contiguous), and letting
            # ``np.multiply`` inherit that layout flips the weights to
            # F-order after one step, which routes later GEMMs down a
            # different BLAS path and breaks bitwise parity with replayed
            # executions whose arenas are C-contiguous.
            update = np.multiply(grad, neg_lr, out=np.empty_like(param.data))
            update += param.data
            param.data = update

    def reset_state(self) -> None:
        """Drop momentum buffers (used when a party starts a new round)."""
        self._velocity = [None] * len(self.params)


class StackedSGD:
    """SGD over ``(K, ...)`` parameter stacks for stacked-client replay.

    The elementwise mirror of :meth:`SGD.step`: every expression is the
    same NumPy ufunc in the same order, just with a leading client axis,
    so each slice updates bit-identically to a serial :class:`SGD` run.
    The final write is an in-place ``np.copyto`` rather than a rebind —
    the stacks are arena buffers a compiled :class:`~repro.grad.capture.
    StackedStep` holds views into, and rebinding would orphan them.

    ``stacks`` aligns with ``model.parameters()``; None entries (and None
    gradients) are skipped exactly like parameters without gradients.
    Anchors and corrections are per-client, i.e. ``(K,) + shape`` arrays.
    """

    def __init__(
        self,
        stacks: Sequence[np.ndarray | None],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        proximal_mu: float = 0.0,
    ):
        self.stacks = list(stacks)
        if not self.stacks:
            raise ValueError("optimizer got an empty parameter-stack list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.proximal_mu = proximal_mu
        self._velocity: list[np.ndarray | None] = [None] * len(self.stacks)
        self._anchor: list[np.ndarray | None] | None = None
        self._correction: list[np.ndarray | None] | None = None
        self._correction_mode = "step"

    def _check_stacked(self, arrays, label: str) -> list[np.ndarray | None]:
        arrays = [None if a is None else np.asarray(a) for a in arrays]
        if len(arrays) != len(self.stacks):
            raise ValueError(
                f"{label} has {len(arrays)} entries for {len(self.stacks)} stacks"
            )
        for array, stack in zip(arrays, self.stacks):
            if array is None or stack is None:
                continue
            if array.shape != stack.shape:
                raise ValueError(
                    f"{label} shape {array.shape} does not match "
                    f"stack shape {stack.shape}"
                )
        return arrays

    def set_anchor(self, anchor: Sequence[np.ndarray | None] | None) -> None:
        """Fix the stacked proximal anchor (each client's round-start weights)."""
        if anchor is None:
            self._anchor = None
            return
        self._anchor = self._check_stacked(anchor, "anchor")

    def set_correction(
        self, correction: Sequence[np.ndarray | None] | None, mode: str = "step"
    ) -> None:
        """Fix the stacked additive correction (see :meth:`SGD.set_correction`)."""
        if mode not in ("step", "grad"):
            raise ValueError(f"mode must be 'step' or 'grad', got {mode!r}")
        if correction is None:
            self._correction = None
            return
        self._correction = self._check_stacked(correction, "correction")
        self._correction_mode = mode

    def step(self, grads: Sequence[np.ndarray | None]) -> None:
        """Apply one update from ``grads`` (aligned with the stacks)."""
        if self.proximal_mu > 0 and self._anchor is None:
            raise RuntimeError("proximal_mu > 0 but no anchor set; call set_anchor()")
        momentum = self.momentum
        weight_decay = self.weight_decay
        proximal_mu = self.proximal_mu
        correction = self._correction
        velocities = self._velocity
        neg_lr = -self.lr
        for index, stack in enumerate(self.stacks):
            grad = grads[index]
            if stack is None or grad is None:
                continue
            if weight_decay:
                grad = grad + weight_decay * stack
            if proximal_mu > 0:
                grad = grad + proximal_mu * (stack - self._anchor[index])
            if correction is not None and self._correction_mode == "grad":
                grad = grad + correction[index]
            if momentum:
                velocity = velocities[index]
                if velocity is None:
                    velocity = np.array(grad, copy=True)
                    velocities[index] = velocity
                else:
                    np.multiply(velocity, momentum, out=velocity)
                    velocity += grad
                grad = velocity
            if correction is not None and self._correction_mode == "step":
                grad = grad + correction[index]
            update = np.multiply(grad, neg_lr)
            update += stack
            np.copyto(stack, update)

    def reset_state(self) -> None:
        """Drop momentum buffers (each group starts a fresh optimizer)."""
        self._velocity = [None] * len(self.stacks)


class Adam(Optimizer):
    """Adam / AMSGrad for local training.

    The NIID-Bench reference exposes ``--optimizer sgd|adam|amsgrad``;
    this is the counterpart.  Supports the same proximal anchor as
    :class:`SGD` so FedProx composes with adaptive local optimizers.
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        amsgrad: bool = False,
        proximal_mu: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative, got {proximal_mu}")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.amsgrad = amsgrad
        self.proximal_mu = proximal_mu
        self._m = [np.zeros(p.data.shape, dtype=np.float64) for p in self.params]
        self._v = [np.zeros(p.data.shape, dtype=np.float64) for p in self.params]
        self._v_max = (
            [np.zeros(p.data.shape, dtype=np.float64) for p in self.params]
            if amsgrad
            else None
        )
        self._step_count = 0
        self._anchor: list[np.ndarray] | None = None

    def set_anchor(self, anchor) -> None:
        """Fix the FedProx proximal anchor (see :meth:`SGD.set_anchor`)."""
        if anchor is None:
            self._anchor = None
            return
        anchor = [np.asarray(a) for a in anchor]
        if len(anchor) != len(self.params):
            raise ValueError(
                f"anchor has {len(anchor)} entries for {len(self.params)} params"
            )
        self._anchor = anchor

    def step(self) -> None:
        if self.proximal_mu > 0 and self._anchor is None:
            raise RuntimeError("proximal_mu > 0 but no anchor set; call set_anchor()")
        self._step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad.astype(np.float64)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.proximal_mu > 0:
                grad = grad + self.proximal_mu * (param.data - self._anchor[index])
            m = self._m[index]
            v = self._v[index]
            m[:] = beta1 * m + (1 - beta1) * grad
            v[:] = beta2 * v + (1 - beta2) * grad**2
            if self.amsgrad:
                v_max = self._v_max[index]
                np.maximum(v_max, v, out=v_max)
                denom = np.sqrt(v_max / bias2) + self.eps
            else:
                denom = np.sqrt(v / bias2) + self.eps
            update = (m / bias1) / denom
            param.data = (param.data - self.lr * update).astype(param.data.dtype)

    def reset_state(self) -> None:
        """Drop moment buffers (fresh optimizer semantics per round)."""
        for buf in self._m:
            buf[:] = 0
        for buf in self._v:
            buf[:] = 0
        if self._v_max is not None:
            for buf in self._v_max:
                buf[:] = 0
        self._step_count = 0
