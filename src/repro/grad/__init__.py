"""A from-scratch reverse-mode automatic differentiation engine on NumPy.

This package is the substrate that replaces PyTorch in this reproduction
(see DESIGN.md, substitution 1).  It provides:

- :class:`~repro.grad.tensor.Tensor`: an n-dimensional array that records
  the operations applied to it and can backpropagate gradients.
- :mod:`repro.grad.nn`: neural-network building blocks (``Module``,
  ``Linear``, ``Conv2d``, ``BatchNorm2d``, losses, ...).
- :mod:`repro.grad.optim`: SGD with momentum, weight decay, a proximal
  term (FedProx) and additive gradient corrections (SCAFFOLD).
- :mod:`repro.grad.init`: weight initialization schemes.

The engine supports full NumPy-style broadcasting for elementwise ops and
implements convolution/pooling with im2col so CPU training of the paper's
CNNs is practical at reduced scale.
"""

from repro.grad.tensor import Tensor, no_grad, is_grad_enabled
from repro.grad import functional
from repro.grad import init
from repro.grad import nn
from repro.grad import optim
from repro.grad.serialize import (
    parameters_to_vector,
    vector_to_parameters,
    state_dict_to_vector,
    vector_to_state_dict,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "nn",
    "optim",
    "parameters_to_vector",
    "vector_to_parameters",
    "state_dict_to_vector",
    "vector_to_state_dict",
]
