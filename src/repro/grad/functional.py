"""Efficient compound operations: convolution, pooling, softmax losses.

Convolution and pooling are implemented with im2col/col2im so the heavy
lifting happens inside a single BLAS ``matmul`` per layer, which keeps CPU
training of the paper's CNNs practical.
"""

from __future__ import annotations

import numpy as np

from repro.grad.tensor import Tensor, active_tape, is_grad_enabled


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


#: Max pooled buffers per (shape, kernel, stride, padding) key; beyond
#: this, untracked fresh arrays are allocated (protects code that trains
#: without ever calling ``zero_grad``, which would otherwise grow the pool
#: without bound).
_POOL_CAP = 32

#: Reusable im2col column buffers, keyed by the full geometry of the call.
#: Training batches have fixed shapes, so after the first step every im2col
#: on the hot path writes into an existing buffer instead of allocating the
#: largest temporary of the whole forward pass.  Buffers are recycled per
#: *slot*: each call in grad mode claims the next slot for its key (the
#: backward closure holds the columns until the backward pass runs), and
#: :func:`reset_im2col_workspace` — wired into ``Optimizer.zero_grad`` /
#: ``Module.zero_grad``, i.e. the training-step boundary — rewinds the
#: cursors once the previous step's graph is dead.
_COLUMN_POOL: dict[tuple, list[np.ndarray]] = {}
_COLUMN_CURSOR: dict[tuple, int] = {}
#: Zero-padded input scratch, reusable immediately (only read during the
#: copy into columns, never captured by a backward closure).  The zero
#: border is written once; only the interior is refreshed per call.
_PADDED_SCRATCH: dict[tuple, np.ndarray] = {}


def reset_im2col_workspace() -> None:
    """Mark pooled im2col buffers reusable (called at step boundaries)."""
    _COLUMN_CURSOR.clear()


def _column_buffer(key: tuple, shape: tuple, dtype) -> np.ndarray:
    if is_grad_enabled():
        # The buffer stays live until backward: give every call since the
        # last reset its own slot.
        pool = _COLUMN_POOL.setdefault(key, [])
        index = _COLUMN_CURSOR.get(key, 0)
        _COLUMN_CURSOR[key] = index + 1
        if index >= _POOL_CAP:
            return np.empty(shape, dtype=dtype)
        if index == len(pool):
            pool.append(np.empty(shape, dtype=dtype))
        return pool[index]
    # No-grad (evaluation): nothing outlives the call, one scratch
    # suffices.  Kept under a distinct key so a pending training graph can
    # never alias with evaluation run mid-step.
    scratch_key = key + ("nograd",)
    pool = _COLUMN_POOL.setdefault(scratch_key, [])
    if not pool:
        pool.append(np.empty(shape, dtype=dtype))
    return pool[0]


def im2col(
    images: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Rearrange sliding ``kernel x kernel`` patches into columns.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N * out_h * out_w, C * kernel * kernel)``.
    """
    n, c, h, w = images.shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    if padding > 0:
        pad_key = (n, c, h, w, padding, np.dtype(images.dtype).str)
        padded = _PADDED_SCRATCH.get(pad_key)
        if padded is None:
            padded = np.zeros(
                (n, c, h + 2 * padding, w + 2 * padding), dtype=images.dtype
            )
            _PADDED_SCRATCH[pad_key] = padded
        padded[:, :, padding : padding + h, padding : padding + w] = images
        images = padded
    strides = images.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    windows = np.lib.stride_tricks.as_strided(
        images,
        shape=shape,
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    # (N, out_h, out_w, C, k, k) patches, materialized contiguously into a
    # pooled buffer; the final reshape to patch rows is then a view.
    key = (n, c, h, w, kernel, stride, padding, np.dtype(images.dtype).str)
    columns = _column_buffer(key, (n, out_h, out_w, c, kernel, kernel), images.dtype)
    np.copyto(columns, windows.transpose(0, 2, 3, 1, 4, 5))
    return columns.reshape(n * out_h * out_w, c * kernel * kernel)


def col2im(
    columns: np.ndarray,
    image_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into images."""
    n, c, h, w = image_shape
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=columns.dtype)
    cols = columns.reshape(n, out_h, out_w, c, kernel, kernel).transpose(
        0, 3, 1, 2, 4, 5
    )
    for ki in range(kernel):
        h_stop = ki + stride * out_h
        for kj in range(kernel):
            w_stop = kj + stride * out_w
            padded[:, :, ki:h_stop:stride, kj:w_stop:stride] += cols[:, :, :, :, ki, kj]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ----------------------------------------------------------------------
# Convolution
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2D convolution (cross-correlation) over ``(N, C, H, W)`` inputs.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``; ``bias``
    has shape ``(out_channels,)``.
    """
    n, c, h, w = x.shape
    out_channels, in_channels, kernel, kernel2 = weight.shape
    if kernel != kernel2:
        raise ValueError("only square kernels are supported")
    if in_channels != c:
        raise ValueError(f"input has {c} channels, weight expects {in_channels}")
    out_h = _out_size(h, kernel, stride, padding)
    out_w = _out_size(w, kernel, stride, padding)

    columns = im2col(x.data, kernel, stride, padding)
    flat_weight = weight.data.reshape(out_channels, -1)
    out_flat = columns @ flat_weight.T
    if bias is not None:
        out_flat = out_flat + bias.data
    out_data = (
        out_flat.reshape(n, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    )
    out = Tensor(out_data)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_flat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        if weight.requires_grad:
            grad_weight = grad_flat.T @ columns
            weight._accumulate(grad_weight.reshape(weight.shape), fresh=True)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_flat.sum(axis=0), fresh=True)
        if x.requires_grad:
            grad_columns = grad_flat @ flat_weight
            x._accumulate(
                col2im(grad_columns, (n, c, h, w), kernel, stride, padding), fresh=True
            )

    meta = {
        "stride": stride,
        "padding": padding,
        "kernel": kernel,
        "image_shape": (n, c, h, w),
        "out_shape": (n, out_channels, out_h, out_w),
        "has_bias": bias is not None,
    }
    return out._attach(parents, backward, "conv2d", meta)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (by default) windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)

    # Treat channels as batch so each patch row is a single channel window.
    as_batch = x.data.reshape(n * c, 1, h, w)
    columns = im2col(as_batch, kernel, stride, 0)  # (n*c*oh*ow, k*k)
    arg = columns.argmax(axis=1)
    out_flat = columns[np.arange(columns.shape[0]), arg]
    out = Tensor(out_flat.reshape(n, c, out_h, out_w))

    def backward(grad):
        if not x.requires_grad:
            return
        grad_cols = np.zeros_like(columns)
        grad_cols[np.arange(columns.shape[0]), arg] = grad.reshape(-1)
        grad_images = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(grad_images.reshape(n, c, h, w), fresh=True)

    meta = {
        "kernel": kernel,
        "stride": stride,
        "image_shape": (n, c, h, w),
        "out_shape": (n, c, out_h, out_w),
    }
    return out._attach((x,), backward, "max_pool2d", meta)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over windows."""
    if stride is None:
        stride = kernel
    n, c, h, w = x.shape
    out_h = _out_size(h, kernel, stride, 0)
    out_w = _out_size(w, kernel, stride, 0)
    as_batch = x.data.reshape(n * c, 1, h, w)
    columns = im2col(as_batch, kernel, stride, 0)
    out = Tensor(columns.mean(axis=1).reshape(n, c, out_h, out_w))
    window = kernel * kernel

    def backward(grad):
        if not x.requires_grad:
            return
        grad_cols = np.repeat(grad.reshape(-1, 1), window, axis=1) / window
        grad_images = col2im(grad_cols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(grad_images.reshape(n, c, h, w), fresh=True)

    meta = {
        "kernel": kernel,
        "stride": stride,
        "image_shape": (n, c, h, w),
        "out_shape": (n, c, out_h, out_w),
    }
    return out._attach((x,), backward, "avg_pool2d", meta)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(N, C)``."""
    n, c, h, w = x.shape
    return x.reshape(n, c, h * w).mean(axis=2)


# ----------------------------------------------------------------------
# Softmax / losses
# ----------------------------------------------------------------------
def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits.data - logits.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = Tensor(shifted - log_norm)
    softmax = np.exp(out.data)

    def backward(grad):
        if logits.requires_grad:
            logits._accumulate(
                grad - softmax * grad.sum(axis=axis, keepdims=True), fresh=True
            )

    return out._attach((logits,), backward)


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(logits, axis=axis).exp()


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer class targets.

    Forward and backward are fused into a single graph node: the loss is
    computed from the log-sum-exp directly and the backward pass uses the
    closed form ``softmax - onehot`` — no intermediate log-softmax tensor
    or advanced-indexing node is materialized, which removes two ``(N, C)``
    allocations per training step on the local-training hot path.

    Parameters
    ----------
    logits:
        ``(N, num_classes)`` unnormalized scores.
    targets:
        ``(N,)`` integer class indices (a plain array or an int Tensor).
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    if isinstance(targets, Tensor):
        targets = targets.data
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be 1-D class indices, got shape {targets.shape}")
    n = logits.shape[0]
    if targets.shape[0] != n:
        raise ValueError("logits and targets disagree on batch size")
    if reduction not in ("none", "sum", "mean"):
        raise ValueError(f"unknown reduction {reduction!r}")

    rows = np.arange(n)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    sumexp = exp.sum(axis=1, keepdims=True)
    # -log p_target = log-sum-exp - shifted logit at the target class.
    losses = np.log(sumexp[:, 0]) - shifted[rows, targets]
    if reduction == "none":
        out = Tensor(losses)
    elif reduction == "sum":
        out = Tensor(losses.sum())
    else:
        out = Tensor(losses.mean())

    def backward(grad):
        if not logits.requires_grad:
            return
        # d loss_i / d logits_i = softmax_i - onehot(target_i), scaled by
        # the incoming gradient (per-sample for "none", scalar otherwise).
        if reduction == "none":
            scale = np.asarray(grad).reshape(n, 1)
        elif reduction == "mean":
            scale = np.asarray(grad) / n
        else:
            scale = np.asarray(grad)
        # exp is ours alone and dead after this single-use backward pass,
        # so the softmax can be formed in place.
        softmax = np.divide(exp, sumexp, out=exp)
        grad_logits = softmax * scale
        if reduction == "none":
            grad_logits[rows, targets] -= scale[:, 0]
        else:
            grad_logits[rows, targets] -= scale
        logits._accumulate(grad_logits, fresh=True)

    return out._attach(
        (logits,), backward, "cross_entropy", {"reduction": reduction, "targets": targets}
    )


def mse_loss(pred: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error loss."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=pred.dtype))
    diff = pred - target
    squared = diff * diff
    if reduction == "none":
        return squared
    if reduction == "sum":
        return squared.sum()
    if reduction == "mean":
        return squared.mean()
    raise ValueError(f"unknown reduction {reduction!r}")


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` (PyTorch weight layout)."""
    out = x.matmul(weight.T)
    if bias is not None:
        out = out + bias
    return out


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    if not training or p <= 0.0:
        return x
    tape = active_tape()
    if tape is not None:
        # The mask is drawn fresh every step; capturing it as a constant
        # would silently replay one fixed mask forever.
        tape.invalidate("dropout draws a fresh mask per step")
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    return x * Tensor(mask)
