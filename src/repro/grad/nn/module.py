"""The ``Module`` base class: parameter/buffer registry and state dicts.

State dicts are plain ``dict[str, numpy.ndarray]`` (always copies), which is
what the federated layer ships between server and parties.  Buffers hold
non-trained state such as batch-norm running statistics — the distinction
matters for reproducing the paper's Finding 7 (BN aggregation instability)
and the FedBN-style ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.grad.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; registered automatically on attribute assignment."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and child modules as attributes; the registry
    machinery here makes them discoverable for optimizers, state dicts and
    train/eval mode switching.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trained state (e.g. BN running mean/var)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of the registry entry."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for module_name, module in self.named_modules(prefix):
            for name, param in module._parameters.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, param

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for module_name, module in self.named_modules(prefix):
            for name, buffer in module._buffers.items():
                full = f"{module_name}.{name}" if module_name else name
                yield full, buffer

    def buffers(self) -> list[np.ndarray]:
        return [buffer for _, buffer in self.named_buffers()]

    # ------------------------------------------------------------------
    # Mode / gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        # Step boundary: recycle pooled im2col buffers (see functional).
        from repro.grad import functional

        functional.reset_im2col_workspace()
        for param in self.parameters():
            param.grad = None

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # State dict
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot of parameters and buffers (copies, safe to mutate)."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch — silent partial loads hide real bugs in FL aggregation.
        """
        param_index = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        expected = set(param_index) | set(buffer_owners)
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in param_index.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()
        for name, (module, local_name) in buffer_owners.items():
            current = module._buffers[local_name]
            value = np.asarray(state[name], dtype=np.asarray(current).dtype)
            if value.shape != np.asarray(current).shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: "
                    f"{value.shape} vs {np.asarray(current).shape}"
                )
            module._set_buffer(local_name, value.copy())

    def _buffer_owners(self) -> dict[str, tuple["Module", str]]:
        owners: dict[str, tuple[Module, str]] = {}
        for module_name, module in self.named_modules():
            for name in module._buffers:
                full = f"{module_name}.{name}" if module_name else name
                owners[full] = (module, name)
        return owners

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        body = "\n".join(child_lines)
        if body:
            return f"{type(self).__name__}(\n{body}\n)"
        return f"{type(self).__name__}()"
