"""Layers: linear, convolution, pooling, batch normalization, activations.

Batch normalization deserves a note: the paper's Finding 7 is that naively
averaging BN layers across parties destabilizes federated training, and its
Section 6.2 sketches the FedBN-style fix of averaging only the learned
affine parameters while keeping running statistics local.  To support both,
``BatchNorm1d/2d`` keep their learned ``weight``/``bias`` as parameters and
their ``running_mean``/``running_var`` as buffers, and the federated
aggregation layer chooses what to average (see
``repro.federated.aggregation``).
"""

from __future__ import annotations

import numpy as np

from repro.grad import functional as F
from repro.grad import init
from repro.grad.nn.module import Module, Parameter
from repro.grad.tensor import Tensor, active_tape


def _default_rng(rng: np.random.Generator | None) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


class Linear(Module):
    """Affine layer ``y = x @ W.T + b`` with PyTorch weight layout."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = _default_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            self.bias = Parameter(init.bias_uniform(in_features, out_features, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2D convolution over ``(N, C, H, W)`` inputs with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = _default_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng))
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            self.bias = Parameter(init.bias_uniform(fan_in, out_channels, rng))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )


class MaxPool2d(Module):
    """Max pooling over square windows (stride defaults to the window)."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class _BatchNorm(Module):
    """Shared batch-norm logic; subclasses fix the reduction axes."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.asarray(0, dtype=np.int64))

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        raise NotImplementedError

    def forward(self, x: Tensor) -> Tensor:
        axes = self._axes(x)
        stat_shape = self._shape(x)
        tape = active_tape()
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            count = int(np.prod([x.shape[a] for a in axes]))
            # Running stats use the unbiased variance, matching PyTorch.
            unbiased = var.data * (count / max(count - 1, 1))
            m = self.momentum
            self._set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(-1),
            )
            self._set_buffer(
                "running_var",
                (1 - m) * self.running_var + m * unbiased.reshape(-1),
            )
            self._set_buffer(
                "num_batches_tracked", np.asarray(int(self.num_batches_tracked) + 1)
            )
            if tape is not None:
                # Replays must reproduce the running-stat update too.
                tape.record_bn_update(self, mean, var, count)
        else:
            mean = Tensor(self.running_mean.reshape(stat_shape))
            var = Tensor(self.running_var.reshape(stat_shape))
            if tape is not None:
                # The buffers are rebound after aggregation/state loads, so
                # replays must re-read them from the module each time.
                tape.register_buffer_leaf(mean, self, "running_mean", stat_shape)
                tape.register_buffer_leaf(var, self, "running_var", stat_shape)
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        weight = self.weight.reshape(*stat_shape)
        bias = self.bias.reshape(*stat_shape)
        return normalized * weight + bias

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features}, eps={self.eps})"


class BatchNorm1d(_BatchNorm):
    """Batch norm over ``(N, C)`` inputs."""

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, C) input, got {x.shape}")
        return (0,)

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        return (1, self.num_features)


class BatchNorm2d(_BatchNorm):
    """Batch norm over ``(N, C, H, W)`` inputs, per channel."""

    def _axes(self, x: Tensor) -> tuple[int, ...]:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W) input, got {x.shape}")
        return (0, 2, 3)

    def _shape(self, x: Tensor) -> tuple[int, ...]:
        return (1, self.num_features, 1, 1)


class GroupNorm(Module):
    """Group normalization over ``(N, C, H, W)`` inputs.

    Normalizes within groups of channels *per sample*, so it carries no
    dataset statistics at all — the standard remedy for the federated
    batch-norm pathology the paper's Finding 7 describes (no running
    buffers means nothing distribution-dependent gets averaged).
    """

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels {num_channels} not divisible by "
                f"num_groups {num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"GroupNorm expects (N, C, H, W) input, got {x.shape}")
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        grouped = x.reshape(n, self.num_groups, c // self.num_groups * h * w)
        mean = grouped.mean(axis=2, keepdims=True)
        var = grouped.var(axis=2, keepdims=True)
        normalized = (grouped - mean) / ((var + self.eps) ** 0.5)
        out = normalized.reshape(n, c, h, w)
        weight = self.weight.reshape(1, c, 1, 1)
        bias = self.bias.reshape(1, c, 1, 1)
        return out * weight + bias

    def __repr__(self) -> str:
        return f"GroupNorm({self.num_groups}, {self.num_channels}, eps={self.eps})"


class ReLU(Module):
    """Rectified linear activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"


class Identity(Module):
    """Pass-through module (used as a no-op shortcut)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = _default_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self._rng)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Chain of modules applied in order; supports indexing and iteration."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)
