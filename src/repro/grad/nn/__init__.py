"""Neural-network building blocks on top of :mod:`repro.grad`."""

from repro.grad.nn.module import Module, Parameter
from repro.grad.nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    GroupNorm,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.grad.nn.losses import CrossEntropyLoss, MSELoss

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Flatten",
    "Identity",
    "Dropout",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
]
