"""Loss modules wrapping :mod:`repro.grad.functional`."""

from __future__ import annotations

import numpy as np

from repro.grad import functional as F
from repro.grad.nn.module import Module
from repro.grad.tensor import Tensor


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)

    def __repr__(self) -> str:
        return f"CrossEntropyLoss(reduction={self.reduction!r})"


class MSELoss(Module):
    """Mean squared error loss."""

    def __init__(self, reduction: str = "mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target, reduction=self.reduction)
