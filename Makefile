PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench

test:
	$(PYTHON) -m pytest -x -q

# Skip the fork-based parallel-executor tests (slowest part of the suite).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not parallel"

bench:
	$(PYTHON) -m repro.experiments.bench --output BENCH_core.json
