PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast test-stacked test-async test-concurrent test-capture lint bench bench-smoke

test: lint
	$(PYTHON) -m pytest -x -q

# Skip the fork-based parallel-executor tests (slowest part of the suite).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not parallel"

# Just the stacked-client replay executor and its compiler.
test-stacked:
	$(PYTHON) -m pytest -x -q -m stacked

# Just the virtual-clock async engine and lazy-population layer.
test-async:
	$(PYTHON) -m pytest -x -q -m async

# Just the crash-safety suite: racing saves, SIGKILLed workers, stale
# claims, parallel-vs-serial store identity.
test-concurrent:
	$(PYTHON) -m pytest -x -q -m concurrent

# Just the capture-engine optimizer: arena planner, dead-op elimination,
# optimizer-on/off bitwise differentials, and the build cache.
test-capture:
	$(PYTHON) -m pytest -x -q -m capture

# Uses ruff or pyflakes when installed; otherwise a stdlib AST fallback.
lint:
	$(PYTHON) tools/lint.py src tests

bench:
	$(PYTHON) -m repro.experiments.bench --output BENCH_core.json

# Seconds-scale sanity pass over every bench section; deliberately not
# part of `make test` — it proves the benchmarks run, not the numbers.
# Also guards the hot-path wall times against the committed baseline.
bench-smoke:
	$(PYTHON) -m repro.experiments.bench --smoke --output BENCH_smoke.json --check-baseline BENCH_core.json
