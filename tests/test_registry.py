"""Tests for the unified component registry."""

import pytest

from repro.registry import Registry


class TestRegistry:
    def make(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: "a", summary="first")
        reg.register("beta", lambda: "b", summary="second")
        return reg

    def test_register_and_get(self):
        reg = self.make()
        assert reg.get("alpha")() == "a"
        assert reg.build("beta") == "b"

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("gamma", summary="decorated")
        def factory():
            return "g"

        assert reg.build("gamma") == "g"
        assert factory() == "g"  # the decorator returns the factory

    def test_duplicate_rejected(self):
        reg = self.make()
        with pytest.raises(ValueError, match="duplicate widget registration"):
            reg.register("alpha", lambda: "a2")

    def test_unknown_lists_available(self):
        reg = self.make()
        with pytest.raises(KeyError, match="alpha"):
            reg.get("nope")

    def test_names_keep_registration_order(self):
        assert self.make().names() == ("alpha", "beta")

    def test_entries_carry_summaries(self):
        entries = self.make().entries()
        assert [e.summary for e in entries] == ["first", "second"]

    def test_container_protocol(self):
        reg = self.make()
        assert "alpha" in reg
        assert "nope" not in reg
        assert len(reg) == 2
        assert list(reg) == ["alpha", "beta"]

    def test_default_normalize_folds_case_and_separators(self):
        reg = self.make()
        assert reg.get("ALPHA") is reg.get("alpha")
        reg.register("cifar10", lambda: "c")
        assert reg.build("CIFAR-10") == "c"
        assert reg.build("cifar_10") == "c"

    def test_custom_normalize(self):
        reg = Registry("case-sensitive", normalize=lambda name: name)
        reg.register("Exact", lambda: 1)
        assert "Exact" in reg
        assert "exact" not in reg


class TestLiveRegistries:
    """The real component registries built on the unified class."""

    def test_datasets(self):
        from repro.data import DATASETS

        assert set(DATASETS.names()) >= {"mnist", "cifar10", "adult", "rcv1"}
        assert all(entry.summary for entry in DATASETS.entries())

    def test_models(self):
        from repro.models import MODELS

        assert set(MODELS.names()) >= {"cnn", "mlp", "logistic", "resnet20"}

    def test_algorithms(self):
        from repro.federated.algorithms import ALGORITHMS

        assert ALGORITHMS.names()[:4] == ("fedavg", "fedprox", "scaffold", "fednova")

    def test_codecs(self):
        from repro.comm import CODECS

        assert set(CODECS.names()) >= {"identity", "float16", "qsgd", "topk"}

    def test_partitions_parse(self):
        from repro.partition import PARTITIONS, parse_strategy

        assert len(PARTITIONS) > 0
        assert parse_strategy("dir(0.5)").beta == 0.5
