"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "mnist", "--partition", "#C=2", "--alg", "fedavg"]
        )
        assert args.command == "run"
        assert args.dataset == "mnist"
        assert args.mu == 0.01

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "imagenet", "--partition", "iid", "--alg", "fedavg"]
            )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "mnist", "--partition", "iid", "--alg", "fedsgd"]
            )


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "mnist" in out
        assert "covtype" in out

    def test_recommend(self, capsys):
        assert main(["recommend", "--partition", "gau(0.1)"]) == 0
        assert capsys.readouterr().out.strip() == "scaffold"

    def test_partition_report(self, capsys):
        code = main(
            [
                "partition-report",
                "--dataset", "mnist",
                "--partition", "dir(0.5)",
                "--n-train", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "label-skew" in out
        assert "party" in out

    def test_run_smoke(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "communication" in out

    def test_trials_smoke(self, capsys):
        code = main(
            [
                "trials",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
                "-n", "2",
            ]
        )
        assert code == 0
        assert "+-" in capsys.readouterr().out


class TestNewCommands:
    def test_run_plot_flag(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
                "--plot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "o=fedavg" in out  # the ASCII chart legend

    def test_table3_slice(self, capsys):
        code = main(
            [
                "table3",
                "--datasets", "adult",
                "--partitions", "iid",
                "--algs", "fedavg",
                "--preset", "smoke",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wins:" in out

    def test_table3_save(self, capsys, tmp_path):
        target = tmp_path / "board.json"
        code = main(
            [
                "table3",
                "--datasets", "adult",
                "--partitions", "iid",
                "--algs", "fedavg",
                "--preset", "smoke",
                "--save", str(target),
            ]
        )
        assert code == 0
        assert target.exists()
