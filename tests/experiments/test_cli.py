"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "--dataset", "mnist", "--partition", "#C=2", "--alg", "fedavg"]
        )
        assert args.command == "run"
        assert args.dataset == "mnist"
        assert args.mu == 0.01

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "imagenet", "--partition", "iid", "--alg", "fedavg"]
            )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "mnist", "--partition", "iid", "--alg", "fedsgd"]
            )


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "mnist" in out
        assert "covtype" in out

    def test_recommend(self, capsys):
        assert main(["recommend", "--partition", "gau(0.1)"]) == 0
        assert capsys.readouterr().out.strip() == "scaffold"

    def test_partition_report(self, capsys):
        code = main(
            [
                "partition-report",
                "--dataset", "mnist",
                "--partition", "dir(0.5)",
                "--n-train", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "label-skew" in out
        assert "party" in out

    def test_run_smoke(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "communication" in out

    def test_trials_smoke(self, capsys):
        code = main(
            [
                "trials",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
                "-n", "2",
            ]
        )
        assert code == 0
        assert "+-" in capsys.readouterr().out


class TestNewCommands:
    def test_run_plot_flag(self, capsys):
        code = main(
            [
                "run",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
                "--plot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "o=fedavg" in out  # the ASCII chart legend

    def test_table3_slice(self, capsys):
        code = main(
            [
                "table3",
                "--datasets", "adult",
                "--partitions", "iid",
                "--algs", "fedavg",
                "--preset", "smoke",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wins:" in out

    def test_list_prints_all_registries(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "dir(", "cnn", "fedavg", "qsgd"):
            assert name in out

    def test_print_spec_emits_resolved_json(self, capsys):
        import json

        code = main(
            [
                "run",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--print-spec",
            ]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["data"]["name"] == "adult"
        assert data["train"]["num_rounds"] > 0  # preset resolved, not None

    def test_run_from_spec_file(self, capsys, tmp_path):
        import json

        main(
            [
                "run",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "--comm-round", "2",
                "--print-spec",
            ]
        )
        spec_file = tmp_path / "cell.json"
        spec_file.write_text(capsys.readouterr().out)
        code = main(["run", "--spec", str(spec_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "final accuracy" in out
        assert "run id:" in out
        assert json.loads(spec_file.read_text())["data"]["name"] == "adult"

    def test_spec_flags_missing_is_an_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "smoke"])

    def test_trials_store_resume(self, capsys, tmp_path):
        argv = [
            "trials",
            "--dataset", "adult",
            "--partition", "iid",
            "--alg", "fedavg",
            "--preset", "smoke",
            "--comm-round", "2",
            "-n", "2",
            "--store", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.json"))) == 2
        # Second invocation reloads both trials from the store.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_table3_save(self, capsys, tmp_path):
        target = tmp_path / "board.json"
        code = main(
            [
                "table3",
                "--datasets", "adult",
                "--partitions", "iid",
                "--algs", "fedavg",
                "--preset", "smoke",
                "--save", str(target),
            ]
        )
        assert code == 0
        assert target.exists()


@pytest.mark.concurrent
class TestJobsFlag:
    def test_table3_jobs_without_store_uses_scratch(self, capsys):
        code = main(
            [
                "table3",
                "--datasets", "adult",
                "--partitions", "iid",
                "--algs", "fedavg",
                "--preset", "smoke",
                "--jobs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adult / iid / fedavg:" in out
        assert "wins:" in out

    def test_table3_jobs_store_resume_after_kill_shape(self, capsys, tmp_path):
        """Invoke, then re-invoke against the same store: the second pass
        reads everything back (the CLI shape of resume-after-kill)."""
        args = [
            "table3",
            "--datasets", "adult",
            "--partitions", "iid",
            "--algs", "fedavg", "fedprox",
            "--preset", "smoke",
            "--store", str(tmp_path / "runs"),
            "--jobs", "2",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        import pathlib

        files = {
            p.name: p.read_bytes()
            for p in pathlib.Path(tmp_path / "runs").glob("*.json")
        }
        assert len(files) == 2
        assert main(args) == 0
        second = capsys.readouterr().out
        assert {
            p.name: p.read_bytes()
            for p in pathlib.Path(tmp_path / "runs").glob("*.json")
        } == files
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_trials_jobs(self, capsys, tmp_path):
        code = main(
            [
                "trials",
                "--dataset", "adult",
                "--partition", "iid",
                "--alg", "fedavg",
                "--preset", "smoke",
                "-n", "2",
                "--jobs", "2",
                "--store", str(tmp_path / "runs"),
            ]
        )
        assert code == 0
        assert "adult / iid / fedavg:" in capsys.readouterr().out
