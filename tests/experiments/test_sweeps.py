"""Tests for the hyper-parameter sweep API."""

import numpy as np
import pytest

from repro.experiments.scale import ScalePreset
from repro.experiments.sweeps import SweepResult, sweep

TINY = ScalePreset(
    name="sweep-test", n_train=200, n_test=100, num_rounds=2, local_epochs=1, batch_size=32
)


class TestSweepResult:
    def make(self):
        result = SweepResult(parameter="lr")
        result.curves[0.1] = np.array([0.4, 0.6])
        result.curves[0.01] = np.array([0.3, 0.5])
        return result

    def test_finals(self):
        assert self.make().finals() == {0.1: 0.6, 0.01: 0.5}

    def test_best_value(self):
        assert self.make().best_value() == 0.1

    def test_best_value_tie_breaks_to_smallest_value(self):
        # Insertion order used to decide ties, so two sweeps over the
        # same values in different orders could name different winners.
        result = SweepResult(parameter="lr")
        result.curves[0.1] = np.array([0.2, 0.6])
        result.curves[0.01] = np.array([0.3, 0.6])
        assert result.best_value() == 0.01
        reordered = SweepResult(parameter="lr")
        reordered.curves[0.01] = np.array([0.3, 0.6])
        reordered.curves[0.1] = np.array([0.2, 0.6])
        assert reordered.best_value() == 0.01

    def test_best_value_tie_with_unorderable_values_keeps_order(self):
        result = SweepResult(parameter="codec")
        result.curves["topk"] = np.array([0.6])
        result.curves[8] = np.array([0.6])
        assert result.best_value() == "topk"

    def test_spread(self):
        assert self.make().spread() == pytest.approx(0.1)

    def test_to_text(self):
        text = self.make().to_text()
        assert "sweep over lr" in text
        assert "lr=0.1" in text


class TestSweep:
    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            sweep("dropout", [0.1], "adult", "iid")

    def test_mu_requires_fedprox(self):
        with pytest.raises(ValueError):
            sweep("mu", [0.1], "adult", "iid", algorithm="fedavg")

    def test_epochs_sweep_runs(self):
        result = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1
        )
        assert set(result.curves) == {1, 2}
        for curve in result.curves.values():
            assert len(curve) == TINY.num_rounds

    def test_mu_sweep_runs(self):
        result = sweep(
            "mu", [0.0, 0.1], "adult", "iid", algorithm="fedprox", preset=TINY, seed=1
        )
        assert set(result.curves) == {0.0, 0.1}

    def test_batch_size_sweep_changes_trajectories(self):
        result = sweep("batch_size", [8, 64], "adult", "dir(0.5)", preset=TINY, seed=1)
        assert not np.allclose(result.curves[8], result.curves[64])

    def test_dotted_path_parameter(self):
        result = sweep("train.local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1)
        assert set(result.curves) == {1, 2}

    def test_unknown_parameter_lists_alternatives(self):
        with pytest.raises(KeyError, match="dropout_prob"):
            sweep("dropout", [0.1], "adult", "iid", preset=TINY)


class TestSweepResume:
    def test_rerun_executes_zero_new_cells(self, tmp_path, monkeypatch):
        from repro.experiments import sweeps as sweeps_module
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        first = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1, store=store
        )
        assert len(store) == 2

        def _boom(spec, resume=None):
            raise AssertionError("stored sweep point re-ran")

        monkeypatch.setattr(sweeps_module, "run_spec", _boom)
        again = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1, store=store
        )
        for value in (1, 2):
            assert np.array_equal(again.curves[value], first.curves[value])

    def test_partial_store_runs_only_missing_points(self, tmp_path):
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        sweep("local_epochs", [1], "adult", "iid", preset=TINY, seed=1, store=store)
        assert len(store) == 1
        sweep("local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1, store=store)
        assert len(store) == 2


class TestSweepSpecs:
    def test_enumeration_runs_nothing(self, monkeypatch):
        from repro.experiments import sweeps as sweeps_module
        from repro.experiments.sweeps import sweep_specs

        def _boom(spec, resume=None):
            raise AssertionError("sweep_specs executed a cell")

        monkeypatch.setattr(sweeps_module, "run_spec", _boom)
        points = sweep_specs("local_epochs", [1, 2], "adult", "iid", preset=TINY)
        assert [p.train.local_epochs for p in points.values()] == [1, 2]
        assert len({p.run_id() for p in points.values()}) == 2

    def test_typo_fails_before_any_compute(self):
        from repro.experiments.sweeps import sweep_specs

        with pytest.raises(KeyError, match="dropout_prob"):
            sweep_specs("dropout", [0.1], "adult", "iid", preset=TINY)


@pytest.mark.concurrent
class TestScheduledSweeps:
    def test_parallel_sweep_matches_serial(self, tmp_path):
        from repro.experiments.scheduler import fork_available
        from repro.experiments.store import ResultStore

        if not fork_available():
            pytest.skip("requires fork")
        serial = sweep("local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1)
        parallel = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1,
            store=ResultStore(tmp_path), jobs=2,
        )
        for value in (1, 2):
            assert np.array_equal(serial.curves[value], parallel.curves[value])

    def test_parallel_async_tradeoff_matches_serial(self, tmp_path):
        from repro.experiments.scheduler import fork_available
        from repro.experiments.sweeps import async_tradeoff

        if not fork_available():
            pytest.skip("requires fork")
        kwargs = dict(
            buffer_sizes=(1, 2), sample_per_round=4, preset=TINY, seed=1
        )
        serial = async_tradeoff("adult", "iid", **kwargs)
        parallel = async_tradeoff("adult", "iid", jobs=2, **kwargs)
        assert np.array_equal(serial["sync"], parallel["sync"])
        for buffer in (1, 2):
            assert np.array_equal(
                serial["async"][buffer]["accuracies"],
                parallel["async"][buffer]["accuracies"],
            )
