"""Tests for the hyper-parameter sweep API."""

import numpy as np
import pytest

from repro.experiments.scale import ScalePreset
from repro.experiments.sweeps import SweepResult, sweep

TINY = ScalePreset(
    name="sweep-test", n_train=200, n_test=100, num_rounds=2, local_epochs=1, batch_size=32
)


class TestSweepResult:
    def make(self):
        result = SweepResult(parameter="lr")
        result.curves[0.1] = np.array([0.4, 0.6])
        result.curves[0.01] = np.array([0.3, 0.5])
        return result

    def test_finals(self):
        assert self.make().finals() == {0.1: 0.6, 0.01: 0.5}

    def test_best_value(self):
        assert self.make().best_value() == 0.1

    def test_spread(self):
        assert self.make().spread() == pytest.approx(0.1)

    def test_to_text(self):
        text = self.make().to_text()
        assert "sweep over lr" in text
        assert "lr=0.1" in text


class TestSweep:
    def test_unknown_parameter(self):
        with pytest.raises(KeyError):
            sweep("dropout", [0.1], "adult", "iid")

    def test_mu_requires_fedprox(self):
        with pytest.raises(ValueError):
            sweep("mu", [0.1], "adult", "iid", algorithm="fedavg")

    def test_epochs_sweep_runs(self):
        result = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1
        )
        assert set(result.curves) == {1, 2}
        for curve in result.curves.values():
            assert len(curve) == TINY.num_rounds

    def test_mu_sweep_runs(self):
        result = sweep(
            "mu", [0.0, 0.1], "adult", "iid", algorithm="fedprox", preset=TINY, seed=1
        )
        assert set(result.curves) == {0.0, 0.1}

    def test_batch_size_sweep_changes_trajectories(self):
        result = sweep("batch_size", [8, 64], "adult", "dir(0.5)", preset=TINY, seed=1)
        assert not np.allclose(result.curves[8], result.curves[64])

    def test_dotted_path_parameter(self):
        result = sweep("train.local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1)
        assert set(result.curves) == {1, 2}

    def test_unknown_parameter_lists_alternatives(self):
        with pytest.raises(KeyError, match="dropout_prob"):
            sweep("dropout", [0.1], "adult", "iid", preset=TINY)


class TestSweepResume:
    def test_rerun_executes_zero_new_cells(self, tmp_path, monkeypatch):
        from repro.experiments import sweeps as sweeps_module
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        first = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1, store=store
        )
        assert len(store) == 2

        def _boom(spec, resume=None):
            raise AssertionError("stored sweep point re-ran")

        monkeypatch.setattr(sweeps_module, "run_spec", _boom)
        again = sweep(
            "local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1, store=store
        )
        for value in (1, 2):
            assert np.array_equal(again.curves[value], first.curves[value])

    def test_partial_store_runs_only_missing_points(self, tmp_path):
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        sweep("local_epochs", [1], "adult", "iid", preset=TINY, seed=1, store=store)
        assert len(store) == 1
        sweep("local_epochs", [1, 2], "adult", "iid", preset=TINY, seed=1, store=store)
        assert len(store) == 2
