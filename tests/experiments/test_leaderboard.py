"""Tests for the leaderboard (per-setting algorithm ranking)."""

import pytest

from repro.experiments.leaderboard import Leaderboard
from repro.experiments.runner import TrialSummary


def summary(dataset, partition, algorithm, accs):
    return TrialSummary(dataset, partition, algorithm, accuracies=list(accs))


@pytest.fixture
def board():
    b = Leaderboard()
    b.add(summary("mnist", "#C=1", "fedavg", [0.30, 0.32]))
    b.add(summary("mnist", "#C=1", "fedprox", [0.40, 0.42]))
    b.add(summary("mnist", "#C=1", "scaffold", [0.10, 0.12]))
    b.add(summary("mnist", "iid", "fedavg", [0.99]))
    b.add(summary("mnist", "iid", "fedprox", [0.98]))
    return b


class TestLeaderboard:
    def test_settings_listed(self, board):
        assert board.settings == [("mnist", "#C=1"), ("mnist", "iid")]

    def test_algorithms_union(self, board):
        assert board.algorithms() == ["fedavg", "fedprox", "scaffold"]

    def test_ranking_order(self, board):
        ranking = board.ranking("mnist", "#C=1")
        assert [name for name, _ in ranking] == ["fedprox", "fedavg", "scaffold"]

    def test_best(self, board):
        assert board.best("mnist", "#C=1") == "fedprox"
        assert board.best("mnist", "iid") == "fedavg"

    def test_win_counts(self, board):
        assert board.win_counts() == {"fedprox": 1, "fedavg": 1}

    def test_unknown_setting(self, board):
        with pytest.raises(KeyError):
            board.ranking("cifar10", "iid")

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            Leaderboard().add(summary("d", "p", "a", []))

    def test_replacement(self, board):
        board.add(summary("mnist", "iid", "fedavg", [0.10]))
        assert board.best("mnist", "iid") == "fedprox"

    def test_render_marks_winner(self, board):
        text = board.render()
        assert "*" in text
        assert "wins:" in text
        assert "fedprox" in text

    def test_render_empty(self):
        assert "(empty" in Leaderboard().render()

    def test_missing_cell_rendered_as_dash(self, board):
        # scaffold has no iid entry.
        lines = [l for l in board.render().splitlines() if "iid" in l]
        assert "-" in lines[0]

    def test_roundtrip_json(self, board, tmp_path):
        path = tmp_path / "board.json"
        board.save(path)
        loaded = Leaderboard.load(path)
        assert loaded.settings == board.settings
        assert loaded.best("mnist", "#C=1") == "fedprox"
        assert loaded.win_counts() == board.win_counts()
