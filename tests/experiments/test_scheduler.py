"""Crash-safety tests for the parallel sweep scheduler and the store.

Everything here forks, kills, or races real processes, so the whole
module carries the ``concurrent`` marker (``make test-concurrent``).
The matrices are tiny — the point is the claim protocol, not the
training.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import threading
import time

import pytest

from repro.spec import RunSpec
from repro.experiments.runner import run_spec
from repro.experiments.scale import ScalePreset
from repro.experiments.scheduler import (
    CLAIMS_DIR,
    _claim_path,
    _try_claim,
    fork_available,
    run_cells,
)
from repro.experiments.store import ResultStore

pytestmark = pytest.mark.concurrent

TINY = ScalePreset(
    name="sched-test", n_train=200, n_test=100, num_rounds=2, local_epochs=1,
    batch_size=32,
)

#: slow enough that a kill lands mid-cell, fast enough for the suite.
SLOW = ScalePreset(
    name="sched-slow", n_train=600, n_test=150, num_rounds=60, local_epochs=2,
    batch_size=32,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="requires fork-based multiprocessing"
)


def tiny_specs(count: int, preset: ScalePreset = TINY) -> list[RunSpec]:
    base = RunSpec.build("adult", "iid", "fedavg", preset=preset)
    return base.trial_specs(count)


class TestRunCells:
    def test_inline_runs_and_reports(self, tmp_path):
        store = ResultStore(tmp_path)
        specs = tiny_specs(2)
        events = []
        report = run_cells(specs, store=store, jobs=1, progress=events.append)
        report.raise_on_failure()
        assert sorted(report.ran) == sorted(s.run_id() for s in specs)
        assert report.cached == [] and report.incomplete == []
        assert [e.kind for e in events] == ["done", "done"]
        assert all(store.completed(s) for s in specs)

    def test_reinvoke_runs_zero_new_cells(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path)
        specs = tiny_specs(2)
        run_cells(specs, store=store, jobs=1)

        import repro.experiments.scheduler as scheduler_module

        def boom(spec, resume=None):
            raise AssertionError("completed cell re-ran")

        monkeypatch.setattr(scheduler_module, "run_spec", boom)
        report = run_cells(specs, store=store, jobs=1)
        assert sorted(report.cached) == sorted(s.run_id() for s in specs)
        assert report.ran == []

    def test_duplicate_specs_collapse(self, tmp_path):
        store = ResultStore(tmp_path)
        (spec,) = tiny_specs(1)
        report = run_cells([spec, spec], store=store, jobs=1)
        assert report.ran == [spec.run_id()]

    def test_failed_cell_reported_and_retried_next_invocation(self, tmp_path):
        store = ResultStore(tmp_path)
        good, bad = tiny_specs(2)
        bad = bad.with_overrides(model="resnet9")  # image model on tabular
        report = run_cells([bad, good], store=store, jobs=1)
        assert report.failed and bad.run_id() in report.failed
        assert report.ran == [good.run_id()]
        with pytest.raises(RuntimeError, match="re-invoke"):
            report.raise_on_failure()
        # The failure marker is per-invocation: a re-invoke tries again.
        report = run_cells([bad, good], store=store, jobs=1)
        assert bad.run_id() in report.failed
        assert report.cached == [good.run_id()]

    @needs_fork
    def test_parallel_store_is_byte_identical_to_serial(self, tmp_path):
        serial, parallel = ResultStore(tmp_path / "s"), ResultStore(tmp_path / "p")
        specs = tiny_specs(3)
        run_cells(specs, store=serial, jobs=1).raise_on_failure()
        run_cells(specs, store=parallel, jobs=3).raise_on_failure()
        serial_files = {
            p.name: p.read_bytes() for p in serial.root.glob("*.json")
        }
        parallel_files = {
            p.name: p.read_bytes() for p in parallel.root.glob("*.json")
        }
        assert serial_files == parallel_files
        assert len(serial_files) == 3


class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        store = ResultStore(tmp_path)
        assert _try_claim(store, "cell", stale_after=60.0)
        assert not _try_claim(store, "cell", stale_after=60.0)

    def test_dead_pid_claim_is_stolen_immediately(self, tmp_path):
        store = ResultStore(tmp_path)
        (spec,) = tiny_specs(1)
        run_id = spec.run_id()
        # Forge a claim held by a process that no longer exists, with a
        # fresh heartbeat — pid liveness must beat the timestamp.
        import multiprocessing

        probe = multiprocessing.get_context("fork").Process(target=lambda: None)
        probe.start()
        probe.join()
        dead_pid = probe.pid
        claims = tmp_path / CLAIMS_DIR
        claims.mkdir(exist_ok=True)
        (claims / f"{run_id}.claim").write_text(
            json.dumps(
                {
                    "pid": dead_pid,
                    "host": socket.gethostname(),
                    "heartbeat": time.time(),
                }
            )
        )
        report = run_cells(
            [spec], store=store, jobs=1, stale_after=3600.0
        ).raise_on_failure()
        assert report.ran == [run_id]
        assert not (claims / f"{run_id}.claim").exists()

    def test_live_foreign_claim_blocks_until_released(self, tmp_path):
        store = ResultStore(tmp_path)
        (spec,) = tiny_specs(1)
        run_id = spec.run_id()
        assert _try_claim(store, run_id, stale_after=60.0)  # "foreign": us

        def release_later():
            time.sleep(0.5)
            os.unlink(_claim_path(store, run_id))

        thread = threading.Thread(target=release_later)
        thread.start()
        started = time.time()
        report = run_cells(
            [spec], store=store, jobs=1, stale_after=3600.0,
            poll_interval=0.05,
        )
        thread.join()
        assert report.ran == [run_id]
        assert time.time() - started >= 0.5  # actually waited


@needs_fork
class TestCrashRecovery:
    def test_racing_saves_end_with_one_valid_record(self, tmp_path):
        """Two processes hammering save on the same run_id: one intact file."""
        import multiprocessing

        (spec,) = tiny_specs(1)
        outcome = run_spec(spec)
        store = ResultStore(tmp_path)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)

        def hammer():
            barrier.wait()
            for _ in range(50):
                store.save(outcome)

        workers = [ctx.Process(target=hammer) for _ in range(2)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert all(w.exitcode == 0 for w in workers)
        records = store.records()  # raises nothing, parses everything
        assert len(records) == 1
        assert records[0]["run_id"] == spec.run_id()

    def test_sigkill_mid_save_leaves_loadable_store(self, tmp_path):
        """A writer killed at a random moment cannot corrupt the store."""
        import multiprocessing

        (spec,) = tiny_specs(1)
        outcome = run_spec(spec)
        store = ResultStore(tmp_path)
        ctx = multiprocessing.get_context("fork")

        def save_forever():
            while True:
                store.save(outcome)

        victim = ctx.Process(target=save_forever)
        victim.start()
        time.sleep(0.3)  # let it cycle through many writes
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        records = store.records()
        assert len(records) == 1
        assert records[0]["final_accuracy"] == outcome.final_accuracy
        # Any orphaned temp file is invisible to every read path.
        assert all(p.suffix == ".json" for p in store.root.glob("*.json"))

    def test_killed_worker_matrix_still_completes(self, tmp_path):
        """kill -9 a claimed worker: a survivor steals the cell and the
        same invocation completes the matrix with zero duplicate or
        corrupt records."""
        store = ResultStore(tmp_path)
        specs = tiny_specs(3, preset=SLOW)
        claims = tmp_path / CLAIMS_DIR
        killed = []

        def assassin():
            deadline = time.time() + 30.0
            while time.time() < deadline and not killed:
                for claim in claims.glob("*.claim"):
                    try:
                        pid = json.loads(claim.read_text())["pid"]
                        os.kill(int(pid), signal.SIGKILL)
                        killed.append(int(pid))
                        return
                    except (OSError, ValueError, KeyError):
                        continue
                time.sleep(0.01)

        thread = threading.Thread(target=assassin)
        thread.start()
        report = run_cells(
            specs, store=store, jobs=2, poll_interval=0.05,
        )
        thread.join()
        assert killed, "assassin never found a claimed worker"
        report.raise_on_failure()
        records = store.records()
        assert len(records) == 3
        assert sorted(r["run_id"] for r in records) == sorted(
            s.run_id() for s in specs
        )
        # Byte-identical to an undisturbed serial run of the same cells.
        clean = ResultStore(tmp_path / "clean")
        run_cells(specs, store=clean, jobs=1).raise_on_failure()
        assert {
            p.name: p.read_bytes() for p in store.root.glob("*.json")
        } == {p.name: p.read_bytes() for p in clean.root.glob("*.json")}
