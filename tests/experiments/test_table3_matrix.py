"""Tests for the full Table 3 matrix API."""

import pytest

from repro.experiments.scale import SMOKE
from repro.experiments.table3 import (
    ALGORITHMS,
    TABLE3_SETTINGS,
    run_table3,
    settings_matrix,
)


class TestSettingsMatrix:
    def test_covers_all_nine_datasets(self):
        assert len(TABLE3_SETTINGS) == 9

    def test_image_datasets_have_full_partition_set(self):
        for name in ("mnist", "fmnist", "cifar10", "svhn"):
            assert "#C=3" in TABLE3_SETTINGS[name]
            assert "gau(0.1)" in TABLE3_SETTINGS[name]

    def test_tabular_skips_image_only_settings(self):
        assert "gau(0.1)" not in TABLE3_SETTINGS["adult"]

    def test_dataset_specific_rows(self):
        assert TABLE3_SETTINGS["fcube"] == ("fcube", "iid")
        assert TABLE3_SETTINGS["femnist"] == ("real-world", "iid")

    def test_full_matrix_cell_count(self):
        # 4 image datasets x 7 + 3 tabular x 4 + fcube 2 + femnist 2 = 44.
        assert len(settings_matrix()) == 44

    def test_filters(self):
        cells = settings_matrix(datasets=["mnist"], partitions=["iid", "#C=1"])
        assert cells == [("mnist", "#C=1"), ("mnist", "iid")]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            settings_matrix(datasets=["imagenet"])


class TestRunTable3:
    def test_small_slice_builds_leaderboard(self):
        seen = []
        board = run_table3(
            datasets=["adult"],
            partitions=["iid"],
            algorithms=("fedavg", "fedprox"),
            preset=SMOKE,
            num_trials=1,
            progress=lambda *args: seen.append(args[:3]),
        )
        assert board.settings == [("adult", "iid")]
        assert len(seen) == 2
        ranking = board.ranking("adult", "iid")
        assert {name for name, _ in ranking} == {"fedavg", "fedprox"}

    def test_default_algorithms_are_the_papers_four(self):
        assert ALGORITHMS == ("fedavg", "fedprox", "scaffold", "fednova")

    def test_rerun_against_populated_store_runs_zero_new_cells(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import runner as runner_module
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        slice_kwargs = dict(
            datasets=["adult"],
            partitions=["iid"],
            algorithms=("fedavg", "fedprox"),
            preset=SMOKE,
            num_trials=1,
            store=store,
        )
        first = run_table3(**slice_kwargs)
        assert len(store) == 2  # one file per (algorithm, trial)

        def _boom(spec, resume=None):
            raise AssertionError("stored Table 3 cell re-ran")

        monkeypatch.setattr(runner_module, "run_spec", _boom)
        again = run_table3(**slice_kwargs)
        assert again.ranking("adult", "iid") == first.ranking("adult", "iid")


class TestTable3Specs:
    def test_enumeration_matches_protocol(self):
        from repro.experiments.table3 import table3_specs

        cells = table3_specs(
            datasets=["adult"], partitions=["iid"],
            algorithms=("fedavg", "fedprox"), preset=SMOKE, num_trials=2,
        )
        assert list(cells) == [
            ("adult", "iid", "fedavg"), ("adult", "iid", "fedprox")
        ]
        for specs in cells.values():
            assert [s.seed for s in specs] == [0, 1000]
        fedprox = cells[("adult", "iid", "fedprox")][0]
        assert fedprox.algorithm.kwargs == {"mu": 0.01}


@pytest.mark.concurrent
class TestTable3Scheduled:
    def test_jobs_matches_serial_and_resumes(self, tmp_path, monkeypatch):
        from repro.experiments import runner as runner_module
        from repro.experiments import scheduler as scheduler_module
        from repro.experiments.scheduler import fork_available
        from repro.experiments.store import ResultStore

        if not fork_available():
            pytest.skip("requires fork")
        slice_kwargs = dict(
            datasets=["adult"], partitions=["iid"],
            algorithms=("fedavg", "fedprox"), preset=SMOKE, num_trials=2,
        )
        serial_store = ResultStore(tmp_path / "serial")
        serial = run_table3(store=serial_store, **slice_kwargs)

        parallel_store = ResultStore(tmp_path / "parallel")
        seen = []
        parallel = run_table3(
            store=parallel_store, jobs=2,
            progress=lambda d, p, a, s: seen.append((d, p, a)),
            **slice_kwargs,
        )
        assert parallel.ranking("adult", "iid") == serial.ranking("adult", "iid")
        assert sorted(seen) == [
            ("adult", "iid", "fedavg"), ("adult", "iid", "fedprox")
        ]
        # Per-record byte identity between --jobs 1 and --jobs 4 stores.
        assert {
            p.name: p.read_bytes() for p in serial_store.root.glob("*.json")
        } == {
            p.name: p.read_bytes() for p in parallel_store.root.glob("*.json")
        }

        def _boom(spec, resume=None):
            raise AssertionError("stored Table 3 cell re-ran")

        monkeypatch.setattr(runner_module, "run_spec", _boom)
        monkeypatch.setattr(scheduler_module, "run_spec", _boom)
        again = run_table3(store=parallel_store, jobs=2, **slice_kwargs)
        assert again.ranking("adult", "iid") == serial.ranking("adult", "iid")
