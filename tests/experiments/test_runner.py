"""Tests for the experiment runner, trials protocol and decision tree."""

import numpy as np
import pytest

from repro.experiments import (
    SkewDescription,
    recommend_algorithm,
    run_federated_experiment,
    run_trials,
)
from repro.experiments.runner import TrialSummary, paper_lr_for
from repro.experiments.scale import BENCH, PAPER, PRESETS, SMOKE


class TestScalePresets:
    def test_paper_matches_section5(self):
        assert PAPER.num_rounds == 50
        assert PAPER.local_epochs == 10
        assert PAPER.batch_size == 64
        assert PAPER.n_train is None  # generator/paper defaults

    def test_registry(self):
        assert PRESETS["bench"] is BENCH
        assert PRESETS["smoke"] is SMOKE

    def test_describe(self):
        assert "rounds=50" in PAPER.describe()


class TestPaperLr:
    def test_rcv1_special_case(self):
        assert paper_lr_for("rcv1") == 0.1

    def test_default(self):
        assert paper_lr_for("mnist") == 0.01
        assert paper_lr_for("CIFAR-10") == 0.01


class TestRunner:
    def test_outcome_fields(self):
        out = run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=0)
        assert out.dataset == "adult"
        assert out.partition == "homogeneous"
        assert out.algorithm == "fedavg"
        assert len(out.history) == SMOKE.num_rounds
        assert 0.0 <= out.final_accuracy <= 1.0

    def test_partitioner_instance_accepted(self):
        from repro.partition import HomogeneousPartitioner

        out = run_federated_experiment(
            "adult", HomogeneousPartitioner(), "fedavg", preset=SMOKE, seed=0
        )
        assert out.partition == "homogeneous"

    def test_num_parties_default_from_partitioner(self):
        out = run_federated_experiment("fcube", "fcube", "fedavg", preset=SMOKE, seed=0)
        assert out.partition_result.num_parties == 4

    def test_overrides_beat_preset(self):
        out = run_federated_experiment(
            "adult", "iid", "fedavg", preset=SMOKE, num_rounds=2, seed=0
        )
        assert len(out.history) == 2

    def test_algorithm_kwargs_forwarded(self):
        out = run_federated_experiment(
            "adult",
            "iid",
            "fedprox",
            preset=SMOKE,
            algorithm_kwargs={"mu": 0.1},
            seed=0,
        )
        assert out.algorithm == "fedprox"

    def test_fcube_keeps_paper_size(self):
        out = run_federated_experiment("fcube", "fcube", "fedavg", preset=SMOKE, seed=0)
        assert out.info.num_train == 4000


class TestTrials:
    def test_three_trials_recorded(self):
        summary = run_trials(
            "adult", "iid", "fedavg", num_trials=2, preset=SMOKE, base_seed=0
        )
        assert len(summary.accuracies) == 2
        assert summary.std >= 0.0

    def test_format_cell(self):
        summary = TrialSummary("d", "p", "a", accuracies=[0.5, 0.7])
        assert summary.format_cell() == "60.0% +- 10.0%"

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            run_trials("adult", "iid", "fedavg", num_trials=0)

    def test_trials_use_distinct_seeds(self):
        summary = run_trials(
            "adult", "dir(0.5)", "fedavg", num_trials=2, preset=SMOKE, base_seed=0
        )
        # With different partitions/initializations the two trials should
        # almost surely differ.
        assert summary.accuracies[0] != summary.accuracies[1]


class TestSpecEquivalence:
    """The facade and run_spec are two doors to the same execution."""

    def test_facade_matches_run_spec_bitwise(self):
        from repro.experiments import run_spec
        from repro.spec import RunSpec

        kwargs = dict(preset=SMOKE, seed=3, algorithm_kwargs={"mu": 0.05})
        via_facade = run_federated_experiment(
            "adult", "dir(0.5)", "fedprox", **kwargs
        )
        via_spec = run_spec(RunSpec.build("adult", "dir(0.5)", "fedprox", **kwargs))
        assert [r.to_dict() for r in via_facade.history.records] == [
            r.to_dict() for r in via_spec.history.records
        ]

    def test_spec_json_file_reproduces_flag_run(self, tmp_path):
        import json

        from repro.experiments import run_spec
        from repro.spec import RunSpec

        flag_run = run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=2)
        spec_file = tmp_path / "cell.json"
        spec_file.write_text(flag_run.spec.to_json())
        file_run = run_spec(RunSpec.from_dict(json.loads(spec_file.read_text())))
        assert [r.to_dict() for r in file_run.history.records] == [
            r.to_dict() for r in flag_run.history.records
        ]

    def test_outcome_carries_spec(self):
        out = run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=0)
        assert out.spec is not None
        assert out.spec.data.name == "adult"
        assert out.spec.run_id() == out.spec.run_id()


class TestTrialsWithStore:
    def test_second_invocation_runs_zero_new_cells(self, tmp_path, monkeypatch):
        from repro.experiments import runner as runner_module
        from repro.experiments.store import ResultStore

        store = ResultStore(tmp_path)
        first = run_trials(
            "adult", "iid", "fedavg", num_trials=2, preset=SMOKE,
            base_seed=0, store=store,
        )
        assert len(store) == 2

        def _boom(spec, resume=None):
            raise AssertionError("stored trial re-ran")

        monkeypatch.setattr(runner_module, "run_spec", _boom)
        again = run_trials(
            "adult", "iid", "fedavg", num_trials=2, preset=SMOKE,
            base_seed=0, store=store,
        )
        assert again.accuracies == first.accuracies

    def test_spec_argument_exclusive_with_cell_args(self):
        from repro.spec import RunSpec

        spec = RunSpec.build("adult", "iid", "fedavg", preset=SMOKE)
        with pytest.raises(TypeError):
            run_trials("adult", "iid", "fedavg", spec=spec)
        with pytest.raises(TypeError):
            run_trials(spec=spec, preset=SMOKE)

    def test_prebuilt_spec_runs(self):
        from repro.spec import RunSpec

        spec = RunSpec.build("adult", "iid", "fedavg", preset=SMOKE)
        summary = run_trials(num_trials=1, spec=spec)
        assert len(summary.accuracies) == 1


class TestDecisionTree:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("gau(0.1)", "scaffold"),
            ("fcube", "scaffold"),
            ("real-world", "scaffold"),
            ("#C=1", "fedprox"),
            ("#C=3", "fedavg"),
            ("dir(0.5)", "fedavg"),
            ("dir(0.05)", "fedprox"),
            ("quantity(0.5)", "fedprox"),
            ("iid", "fedavg"),
        ],
    )
    def test_figure6_rules(self, spec, expected):
        assert recommend_algorithm(spec) == expected

    def test_description_feature_skew(self):
        desc = SkewDescription(feature_skew=True)
        assert recommend_algorithm(desc) == "scaffold"

    def test_description_single_label(self):
        desc = SkewDescription(min_classes_per_party=1, label_skew=2.0)
        assert recommend_algorithm(desc) == "fedprox"

    def test_description_quantity(self):
        desc = SkewDescription(quantity_skew=0.8)
        assert recommend_algorithm(desc) == "fedprox"

    def test_description_iid(self):
        assert recommend_algorithm(SkewDescription()) == "fedavg"

    def test_description_from_measured_partition(self):
        # Drive the tree from actual partition statistics (Section 6.1).
        from repro.data import load_dataset
        from repro.partition import parse_strategy, stats

        train, _, info = load_dataset("mnist", n_train=300, n_test=50, seed=0)
        part = parse_strategy("#C=1").partition(train, 10, np.random.default_rng(0))
        desc = SkewDescription(
            label_skew=stats.label_skew_index(part, train.labels, info.num_classes),
            quantity_skew=stats.quantity_skew_index(part),
            min_classes_per_party=int(
                stats.effective_classes_per_party(part, train.labels, info.num_classes).min()
            ),
        )
        assert recommend_algorithm(desc) == "fedprox"

    def test_unknown_partitioner_rejected(self):
        class Custom:
            pass

        with pytest.raises(ValueError):
            recommend_algorithm(Custom())
