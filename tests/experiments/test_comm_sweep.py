"""Tests for the accuracy-vs-communication sweep."""

import pytest

from repro.experiments.comm import (
    DEFAULT_CODECS,
    _label,
    _normalize_spec,
    communication_sweep,
)
from repro.experiments.scale import SMOKE

pytestmark = pytest.mark.comm


class TestSpecs:
    def test_names_and_dicts_accepted(self):
        assert _normalize_spec("identity") == {"codec": "identity"}
        assert _normalize_spec({"codec": "qsgd", "codec_bits": 4}) == {
            "codec": "qsgd",
            "codec_bits": 4,
        }

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            _normalize_spec("gzip")

    def test_stray_keys_rejected(self):
        with pytest.raises(ValueError, match="spec keys"):
            _normalize_spec({"codec": "topk", "lr": 0.1})

    def test_labels_carry_the_knob(self):
        assert _label({"codec": "identity"}) == "identity"
        assert _label({"codec": "qsgd", "codec_bits": 4}) == "qsgd(4b)"
        assert _label({"codec": "topk", "codec_k": 0.1}) == "topk(k=0.1)"

    def test_default_ladder_is_valid(self):
        for spec in DEFAULT_CODECS:
            _normalize_spec(spec)


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return communication_sweep(
            "adult",
            "iid",
            "fedavg",
            codecs=("identity", {"codec": "topk", "codec_k": 0.1}),
            preset=SMOKE,
            seed=3,
        )

    def test_one_history_per_codec(self, sweep):
        assert set(sweep.histories) == {"identity", "topk(k=0.1)"}

    def test_lossy_entry_costs_fewer_megabytes(self, sweep):
        totals = sweep.total_megabytes()
        assert totals["topk(k=0.1)"] < totals["identity"]
        ratios = sweep.compression_ratios()
        assert ratios["identity"] == 1.0
        assert ratios["topk(k=0.1)"] < 1.0

    def test_chart_and_text_render(self, sweep):
        chart = sweep.chart()
        assert "MB" in chart
        text = sweep.to_text()
        assert "identity" in text and "fedavg" in text

    def test_ratio_needs_identity_baseline(self):
        result = communication_sweep(
            "adult", "iid", "fedavg", codecs=("float16",), preset=SMOKE, seed=3
        )
        with pytest.raises(ValueError, match="identity"):
            result.compression_ratios()
