"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.experiments.plotting import line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_blocks(self):
        blocks = " .:-=+*#%@"
        line = sparkline(np.linspace(0, 1, 10))
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)

    def test_nan_rendered_as_space(self):
        line = sparkline([1.0, np.nan, 2.0])
        assert line[1] == " "

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_width_downsamples(self):
        assert len(sparkline(np.arange(100), width=20)) == 20

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no series)"

    def test_contains_legend_and_axis(self):
        chart = line_chart({"fedavg": [0.1, 0.5, 0.9]})
        assert "o=fedavg" in chart
        assert "0.900" in chart
        assert "0.100" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart({"a": [0.0, 1.0], "b": [1.0, 0.0]})
        assert "o=a" in chart
        assert "x=b" in chart

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1.0]}, height=1)

    def test_constant_series_does_not_crash(self):
        chart = line_chart({"a": [0.5, 0.5, 0.5]})
        assert "o=a" in chart

    def test_nan_only_series(self):
        assert line_chart({"a": [np.nan]}) == "(no finite data)"

    def test_line_count(self):
        chart = line_chart({"a": [0.0, 1.0]}, height=5, width=20)
        # 5 rows + axis + x-label + legend = 8 lines.
        assert len(chart.splitlines()) == 8
