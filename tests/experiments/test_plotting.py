"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.experiments.plotting import (
    accuracy_vs_bytes_chart,
    line_chart,
    sparkline,
    xy_chart,
)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_length_matches(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_monotone_series_monotone_blocks(self):
        blocks = " .:-=+*#%@"
        line = sparkline(np.linspace(0, 1, 10))
        levels = [blocks.index(c) for c in line]
        assert levels == sorted(levels)

    def test_nan_rendered_as_space(self):
        line = sparkline([1.0, np.nan, 2.0])
        assert line[1] == " "

    def test_constant_series(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_width_downsamples(self):
        assert len(sparkline(np.arange(100), width=20)) == 20

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "  "


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == "(no series)"

    def test_contains_legend_and_axis(self):
        chart = line_chart({"fedavg": [0.1, 0.5, 0.9]})
        assert "o=fedavg" in chart
        assert "0.900" in chart
        assert "0.100" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart({"a": [0.0, 1.0], "b": [1.0, 0.0]})
        assert "o=a" in chart
        assert "x=b" in chart

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1.0]}, height=1)

    def test_constant_series_does_not_crash(self):
        chart = line_chart({"a": [0.5, 0.5, 0.5]})
        assert "o=a" in chart

    def test_nan_only_series(self):
        assert line_chart({"a": [np.nan]}) == "(no finite data)"

    def test_line_count(self):
        chart = line_chart({"a": [0.0, 1.0]}, height=5, width=20)
        # 5 rows + axis + x-label + legend = 8 lines.
        assert len(chart.splitlines()) == 8


class TestXYChart:
    def test_empty(self):
        assert xy_chart({}) == "(no series)"

    def test_points_land_at_their_x(self):
        # Two points at the same y but x apart: marker at both column ends.
        chart = xy_chart({"a": ([0.0, 10.0], [1.0, 1.0])}, height=4, width=21)
        rows = chart.splitlines()
        assert any(row.endswith("|o" + " " * 19 + "o") for row in rows)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            xy_chart({"a": ([1.0, 2.0], [1.0])})

    def test_x_range_in_label(self):
        chart = xy_chart({"a": ([2.0, 8.0], [0.1, 0.9])}, x_label="MB")
        assert "MB: 2 .. 8" in chart

    def test_nan_points_dropped(self):
        chart = xy_chart({"a": ([1.0, np.nan, 3.0], [0.1, 0.5, 0.9])})
        assert "o=a" in chart

    def test_series_at_different_x_share_an_axis(self):
        chart = xy_chart({"a": ([0.0, 1.0], [0.0, 0.5]), "b": ([0.0, 2.0], [0.0, 1.0])})
        assert "o=a" in chart and "x=b" in chart


class TestAccuracyVsBytes:
    def make_history(self, accs, bytes_per_round):
        from repro.federated.history import History, RoundRecord

        history = History()
        for i, acc in enumerate(accs):
            history.append(
                RoundRecord(
                    i, acc, train_loss=1.0, participants=[0],
                    bytes_communicated=bytes_per_round,
                )
            )
        return history

    def test_x_axis_is_cumulative_megabytes(self):
        history = self.make_history([0.2, 0.4, 0.6], bytes_per_round=2_000_000)
        chart = accuracy_vs_bytes_chart({"fedavg": history})
        assert "MB: 2 .. 6" in chart

    def test_cheaper_codec_shifts_curve_left(self):
        dense = self.make_history([0.2, 0.6], bytes_per_round=4_000_000)
        sparse = self.make_history([0.2, 0.6], bytes_per_round=1_000_000)
        chart = accuracy_vs_bytes_chart({"dense": dense, "sparse": sparse}, width=40)
        top_row = chart.splitlines()[0]
        # Both reach 0.6; the sparse run's marker sits further left.
        assert top_row.index("x") < top_row.index("o")

    def test_skipped_evals_dropped(self):
        history = self.make_history([0.2, None, 0.6], bytes_per_round=1_000_000)
        chart = accuracy_vs_bytes_chart({"a": history})
        assert "o=a" in chart
