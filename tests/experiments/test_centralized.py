"""Tests for the centralized training reference."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.experiments.centralized import (
    CentralizedResult,
    centralized_reference,
    train_centralized,
)
from repro.grad import nn


def linear_task(n=150, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((4, 3)).astype(np.float32)
    x = rng.standard_normal((n, 4)).astype(np.float32)
    return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))


class TestTrainCentralized:
    def test_learns_linear_task(self):
        train = linear_task(seed=0)
        test = linear_task(seed=0, n=90)  # same w via same seed path? no —
        # use a held-out slice of one dataset instead:
        full = linear_task(n=240, seed=1)
        train = full.subset(np.arange(180)).materialize()
        test = full.subset(np.arange(180, 240)).materialize()
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))
        result = train_centralized(model, train, test, epochs=15, lr=0.1)
        assert result.final_accuracy > 0.8

    def test_records_per_epoch(self):
        full = linear_task(n=120, seed=1)
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))
        result = train_centralized(model, full, full, epochs=4, lr=0.05)
        assert len(result.accuracies) == 4
        assert len(result.losses) == 4
        assert result.best_accuracy >= result.final_accuracy - 1e-9 or True
        assert result.best_accuracy == max(result.accuracies)

    def test_loss_decreases(self):
        full = linear_task(n=200, seed=2)
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))
        result = train_centralized(model, full, full, epochs=8, lr=0.1)
        assert result.losses[-1] < result.losses[0]

    def test_epoch_validation(self):
        full = linear_task()
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))
        with pytest.raises(ValueError):
            train_centralized(model, full, full, epochs=0, lr=0.1)

    def test_empty_result_raises(self):
        with pytest.raises(ValueError):
            CentralizedResult().final_accuracy


class TestCentralizedReference:
    def test_named_dataset(self):
        result = centralized_reference(
            "adult", epochs=3, n_train=300, n_test=150, seed=0
        )
        assert len(result.accuracies) == 3
        assert 0.0 <= result.final_accuracy <= 1.0

    def test_uses_paper_lr(self):
        # rcv1 must not crash with its special 0.1 lr path.
        result = centralized_reference(
            "rcv1", epochs=1, n_train=120, n_test=60, num_features=300, seed=0
        )
        assert len(result.accuracies) == 1
