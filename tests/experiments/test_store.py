"""Tests for the experiment result store."""

import pytest

from repro.experiments import run_federated_experiment
from repro.experiments.scale import SMOKE
from repro.experiments.store import ResultStore, outcome_to_dict


@pytest.fixture(scope="module")
def outcome():
    return run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=1)


class TestOutcomeSerialization:
    def test_fields_present(self, outcome):
        data = outcome_to_dict(outcome)
        assert data["dataset"] == "adult"
        assert data["algorithm"] == "fedavg"
        assert data["config"]["num_rounds"] == SMOKE.num_rounds
        assert len(data["history"]["records"]) == SMOKE.num_rounds
        assert sum(data["party_sizes"]) <= SMOKE.n_train

    def test_json_roundtrippable(self, outcome):
        import json

        text = json.dumps(outcome_to_dict(outcome))
        assert json.loads(text)["final_accuracy"] == outcome.final_accuracy


class TestResultStore:
    def test_save_and_count(self, outcome, tmp_path):
        store = ResultStore(tmp_path / "runs")
        path = store.save(outcome)
        assert path.exists()
        assert len(store) == 1

    def test_save_same_key_overwrites(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        store.save(outcome)
        assert len(store) == 1

    def test_query_filters(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        assert len(store.query(dataset="adult")) == 1
        assert len(store.query(dataset="mnist")) == 0
        assert len(store.query(algorithm="fedavg", partition="homogeneous")) == 1

    def test_leaderboard_aggregates_seeds(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in (1, 2):
            out = run_federated_experiment(
                "adult", "iid", "fedavg", preset=SMOKE, seed=seed
            )
            store.save(out)
        board = store.leaderboard()
        assert board.settings == [("adult", "homogeneous")]
        ranking = board.ranking("adult", "homogeneous")
        assert ranking[0][0] == "fedavg"
        # Both seeds accumulated as trials.
        entries = store.query(algorithm="fedavg")
        assert len(entries) == 2

    def test_histories_reload_with_measured_bytes(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        (history,) = store.histories(dataset="adult")
        assert [r.to_dict() for r in history.records] == [
            r.to_dict() for r in outcome.history.records
        ]
        assert (
            history.cumulative_communication()[-1]
            == outcome.history.cumulative_communication()[-1]
        )

    def test_codec_config_persisted(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        config = store.records()[0]["config"]
        assert config["codec"] == "identity"
        assert config["codec_bits"] == 8
        assert config["codec_k"] == 0.1

    def test_partition_names_sanitized(self, tmp_path):
        store = ResultStore(tmp_path)
        out = run_federated_experiment("adult", "dir(0.5)", "fedavg", preset=SMOKE, seed=1)
        path = store.save(out)
        assert "(" not in path.name
        assert "~" not in path.name
