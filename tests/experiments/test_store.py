"""Tests for the experiment result store."""

import json

import pytest

from repro.experiments import run_federated_experiment
from repro.experiments.scale import SMOKE
from repro.experiments.store import ResultStore, StoreWarning, outcome_to_dict


@pytest.fixture(scope="module")
def outcome():
    return run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=1)


class TestOutcomeSerialization:
    def test_fields_present(self, outcome):
        data = outcome_to_dict(outcome)
        assert data["dataset"] == "adult"
        assert data["algorithm"] == "fedavg"
        assert data["config"]["num_rounds"] == SMOKE.num_rounds
        assert len(data["history"]["records"]) == SMOKE.num_rounds
        assert sum(data["party_sizes"]) <= SMOKE.n_train

    def test_json_roundtrippable(self, outcome):
        import json

        text = json.dumps(outcome_to_dict(outcome))
        assert json.loads(text)["final_accuracy"] == outcome.final_accuracy


class TestResultStore:
    def test_save_and_count(self, outcome, tmp_path):
        store = ResultStore(tmp_path / "runs")
        path = store.save(outcome)
        assert path.exists()
        assert len(store) == 1

    def test_save_same_key_overwrites(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        store.save(outcome)
        assert len(store) == 1

    def test_query_filters(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        assert len(store.query(dataset="adult")) == 1
        assert len(store.query(dataset="mnist")) == 0
        assert len(store.query(algorithm="fedavg", partition="homogeneous")) == 1

    def test_leaderboard_aggregates_seeds(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in (1, 2):
            out = run_federated_experiment(
                "adult", "iid", "fedavg", preset=SMOKE, seed=seed
            )
            store.save(out)
        board = store.leaderboard()
        assert board.settings == [("adult", "homogeneous")]
        ranking = board.ranking("adult", "homogeneous")
        assert ranking[0][0] == "fedavg"
        # Both seeds accumulated as trials.
        entries = store.query(algorithm="fedavg")
        assert len(entries) == 2

    def test_histories_reload_with_measured_bytes(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        (history,) = store.histories(dataset="adult")
        assert [r.to_dict() for r in history.records] == [
            r.to_dict() for r in outcome.history.records
        ]
        assert (
            history.cumulative_communication()[-1]
            == outcome.history.cumulative_communication()[-1]
        )

    def test_codec_config_persisted(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        config = store.records()[0]["config"]
        assert config["codec"] == "identity"
        assert config["codec_bits"] == 8
        assert config["codec_k"] == 0.1

    def test_partition_names_sanitized(self, tmp_path):
        store = ResultStore(tmp_path)
        out = run_federated_experiment("adult", "dir(0.5)", "fedavg", preset=SMOKE, seed=1)
        path = store.save(out)
        assert "(" not in path.name
        assert "~" not in path.name


class TestContentAddressing:
    """Files are keyed by run_id, so *any* scientific field separates runs."""

    def test_codec_variants_do_not_collide(self, tmp_path):
        # The old (dataset, partition, algorithm, seed) filename scheme
        # silently overwrote one of these two runs.
        store = ResultStore(tmp_path)
        plain = run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=1)
        compressed = run_federated_experiment(
            "adult", "iid", "fedavg", preset=SMOKE, seed=1, codec="float16"
        )
        store.save(plain)
        store.save(compressed)
        assert len(store) == 2

    def test_filename_carries_run_id(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(outcome)
        assert outcome.spec.run_id() in path.name
        assert path.name.startswith("adult__fedavg__")

    def test_completed_and_get(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.completed(outcome.spec)
        store.save(outcome)
        assert store.completed(outcome.spec)
        record = store.get(outcome.spec)
        assert record["final_accuracy"] == outcome.final_accuracy
        assert record["run_id"] == outcome.spec.run_id()

    def test_completed_ignores_exec_settings(self, outcome, tmp_path):
        # A serially-computed result satisfies a parallel run's lookup.
        store = ResultStore(tmp_path)
        store.save(outcome)
        parallel = outcome.spec.with_overrides(executor="process", num_workers=4)
        assert store.completed(parallel)

    def test_get_falls_back_to_embedded_run_id(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(outcome)
        path.rename(path.with_name("renamed-by-hand.json"))
        assert store.completed(outcome.spec)

    def test_history_reloads(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        history = store.history(outcome.spec)
        assert [r.to_dict() for r in history.records] == [
            r.to_dict() for r in outcome.history.records
        ]

    def test_specs_round_trip(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        (spec,) = store.specs()
        assert spec == outcome.spec


class TestRobustness:
    """One corrupt or half-written file cannot brick the store."""

    def test_save_is_atomic_no_temp_visible(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(outcome)
        # The tmp sibling was replaced away; only the record remains.
        assert [p.name for p in store.root.iterdir()] == [path.name]

    def test_records_skip_and_warn_on_corrupt_file(self, outcome, tmp_path):
        store = ResultStore(tmp_path)
        store.save(outcome)
        # A truncated write from the pre-atomic era / a damaged disk.
        (tmp_path / "zz_truncated__0000000000000000.json").write_text(
            '{"dataset": "adult", "final_accu'
        )
        with pytest.warns(StoreWarning, match="zz_truncated"):
            records = store.records()
        assert len(records) == 1
        assert records[0]["run_id"] == outcome.spec.run_id()

    def test_corrupt_direct_hit_falls_back_to_rerunnable_miss(
        self, outcome, tmp_path
    ):
        store = ResultStore(tmp_path)
        path = store.save(outcome)
        path.write_text("not json at all")
        with pytest.warns(StoreWarning):
            assert store.get(outcome.spec) is None
        # The cell reads as not-completed, so a sweep re-runs and the
        # atomic save overwrites the damage.
        with pytest.warns(StoreWarning):
            assert not store.completed(outcome.spec)
        store.save(outcome)
        assert store.completed(outcome.spec)

    def test_miss_never_parses_canonical_records(self, outcome, tmp_path):
        """The resume path is O(legacy files), not O(store size): a miss
        globs for the run_id suffix and only opens files whose names
        carry no hash — re-checking a fresh N-cell matrix stays O(N),
        not O(N²) JSON loads."""
        store = ResultStore(tmp_path)
        store.save(outcome)
        legacy = outcome_to_dict(outcome)
        del legacy["spec"], legacy["run_id"]
        (tmp_path / "legacy__by__hand__1.json").write_text(json.dumps(legacy))

        opened = []
        original = ResultStore._load

        def counting_load(self, path):
            opened.append(path.name)
            return original(self, path)

        ResultStore._load = counting_load
        try:
            miss = outcome.spec.with_overrides(seed=999)
            assert store.get(miss) is None
        finally:
            ResultStore._load = original
        assert opened == ["legacy__by__hand__1.json"]


class TestLegacyRecords:
    def test_pre_spec_files_still_load(self, outcome, tmp_path):
        import json

        store = ResultStore(tmp_path)
        legacy = outcome_to_dict(outcome)
        del legacy["spec"]
        del legacy["run_id"]
        (tmp_path / "adult__homogeneous__fedavg__1.json").write_text(
            json.dumps(legacy)
        )
        (record,) = store.records()
        assert record["spec"] is None
        assert record["run_id"] is None
        assert record["final_accuracy"] == outcome.final_accuracy
        # Legacy records carry no hash, so they never satisfy completed().
        assert not store.completed(outcome.spec)
        assert store.specs() == []
        # But analysis surfaces still see them.
        assert len(store.histories(dataset="adult")) == 1
        assert store.leaderboard().settings == [("adult", "homogeneous")]
