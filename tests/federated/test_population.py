"""Lazy client populations: derivation purity, lifecycle, validation."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    MaterializedPopulation,
    VirtualPopulation,
    make_clients,
    sample_clients,
)
from repro.partition import HomogeneousPartitioner


def toy_dataset(seed=0, n=120, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, dim)).astype(np.float32)
    w = rng.standard_normal((dim, classes)).astype(np.float32)
    return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))


class TestSampleClients:
    def test_draws_sorted_unique_ids(self):
        cohort = sample_clients(1000, 10, np.random.default_rng(0))
        assert len(cohort) == 10
        assert len(set(cohort.tolist())) == 10
        assert np.array_equal(cohort, np.sort(cohort))
        assert cohort.min() >= 0 and cohort.max() < 1000

    def test_full_population_is_arange(self):
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state
        cohort = sample_clients(7, 7, rng)
        assert np.array_equal(cohort, np.arange(7))
        # The degenerate draw must not consume sampler randomness.
        assert rng.bit_generator.state == before

    def test_rejects_count_above_population(self):
        with pytest.raises(ValueError, match="cannot sample more clients"):
            sample_clients(10, 11, np.random.default_rng(0))

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError, match=r"\[1, population"):
            sample_clients(10, 0, np.random.default_rng(0))

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError, match="population"):
            sample_clients(0, 1, np.random.default_rng(0))

    def test_huge_population_stays_fast(self):
        # numpy draws without replacement in O(count); a billion-party
        # ID space must not allocate a billion-entry permutation.
        cohort = sample_clients(1_000_000_000, 100, np.random.default_rng(3))
        assert len(cohort) == 100


class TestVirtualPopulation:
    def test_party_indices_are_pure(self):
        data = toy_dataset()
        a = VirtualPopulation(data, size=10_000, samples_per_client=16, seed=5)
        b = VirtualPopulation(data, size=10_000, samples_per_client=16, seed=5)
        for party in (0, 17, 9_999):
            assert np.array_equal(a.party_indices(party), b.party_indices(party))

    def test_different_parties_differ(self):
        pop = VirtualPopulation(toy_dataset(), size=100, samples_per_client=16)
        assert not np.array_equal(pop.party_indices(1), pop.party_indices(2))

    def test_checkout_release_spills_state(self):
        pop = VirtualPopulation(toy_dataset(), size=1000, samples_per_client=16)
        client = pop.checkout(42)
        client.state["marker"] = [1.0, 2.0]
        client.rng.random()  # advance the private stream
        rng_state = client.rng.bit_generator.state
        pop.release(42)
        assert pop.materialized_count == 0
        assert pop.spilled_count == 1
        revived = pop.checkout(42)
        assert revived.state["marker"] == [1.0, 2.0]
        assert revived.rng.bit_generator.state == rng_state
        pop.release(42)

    def test_refcounted_checkout(self):
        pop = VirtualPopulation(toy_dataset(), size=10, samples_per_client=8)
        first = pop.checkout(3)
        second = pop.checkout(3)
        assert first is second
        pop.release(3)
        assert pop.materialized_count == 1  # still held once
        pop.release(3)
        assert pop.materialized_count == 0

    def test_memory_stays_flat(self):
        pop = VirtualPopulation(toy_dataset(), size=1_000_000, samples_per_client=8)
        for party in range(0, 1_000_000, 100_000):
            pop.checkout(party)
            pop.release(party)
        assert pop.materialized_count == 0
        assert pop.spilled_count == 10

    def test_active_requires_checkout(self):
        pop = VirtualPopulation(toy_dataset(), size=10, samples_per_client=8)
        with pytest.raises(KeyError):
            pop.active(4)

    def test_release_requires_checkout(self):
        pop = VirtualPopulation(toy_dataset(), size=10, samples_per_client=8)
        with pytest.raises(RuntimeError):
            pop.release(4)

    def test_out_of_range_party_rejected(self):
        pop = VirtualPopulation(toy_dataset(), size=10, samples_per_client=8)
        with pytest.raises(IndexError):
            pop.checkout(10)

    def test_skewed_parties_draw_few_classes(self):
        data = toy_dataset(n=300)
        pop = VirtualPopulation(
            data, size=100, samples_per_client=32, skew_beta=0.05
        )
        labels = np.asarray(data.labels)
        class_counts = [
            len(np.unique(labels[pop.party_indices(party)]))
            for party in range(20)
        ]
        # beta=0.05 concentrates nearly all mass on one class for most
        # parties; iid parties would see all 3 classes nearly always.
        assert np.mean(class_counts) < 2.5

    def test_validation(self):
        data = toy_dataset(n=20)
        with pytest.raises(ValueError, match="size"):
            VirtualPopulation(data, size=0)
        with pytest.raises(ValueError, match="samples_per_client"):
            VirtualPopulation(data, size=5, samples_per_client=21)
        with pytest.raises(ValueError, match="skew_beta"):
            VirtualPopulation(data, size=5, samples_per_client=4, skew_beta=-1)

    def test_client_view_indexes_active_parties(self):
        pop = VirtualPopulation(toy_dataset(), size=50, samples_per_client=8)
        view = pop.client_view()
        assert len(view) == 50
        client = pop.checkout(7)
        assert view[7] is client
        pop.release(7)


class TestMaterializedPopulation:
    def make_clients(self, num_parties=4, seed=0):
        data = toy_dataset(seed)
        partition = HomogeneousPartitioner().partition(
            data, num_parties, np.random.default_rng(seed)
        )
        return make_clients(partition, data, seed=seed)

    def test_wraps_prebuilt_clients(self):
        clients = self.make_clients()
        pop = MaterializedPopulation(clients)
        assert pop.size == 4
        assert pop.checkout(2) is clients[2]
        pop.release(2)  # no-op: state lives on the client
        assert pop.active(2) is clients[2]
        assert pop.materialized_count == 4

    def test_client_view_is_the_real_list(self):
        clients = self.make_clients()
        assert MaterializedPopulation(clients).client_view() == clients

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MaterializedPopulation([])
