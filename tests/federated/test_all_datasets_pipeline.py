"""Every dataset goes through the full federated pipeline at smoke scale.

Table 3 covers all nine datasets; this suite guarantees none of them has a
latent incompatibility (shape, dtype, label range, partitioner pairing)
with the training stack.
"""

import numpy as np
import pytest

from repro import run_federated_experiment
from repro.experiments.scale import ScalePreset

SMOKE = ScalePreset(
    name="pipeline", n_train=200, n_test=100, num_rounds=2, local_epochs=2, batch_size=32
)

#: dataset -> (partition to exercise, extra dataset kwargs)
PIPELINES = {
    "mnist": ("dir(0.5)", {}),
    "fmnist": ("#C=2", {}),
    "cifar10": ("iid", {}),
    "svhn": ("quantity(0.5)", {}),
    "femnist": ("real-world", {"num_writers": 12}),
    "fcube": ("fcube", {}),
    "adult": ("dir(0.5)", {}),
    "rcv1": ("iid", {"num_features": 300}),
    "covtype": ("#C=1", {}),
}


@pytest.mark.parametrize("dataset", sorted(PIPELINES))
def test_dataset_through_full_pipeline(dataset):
    partition, kwargs = PIPELINES[dataset]
    outcome = run_federated_experiment(
        dataset,
        partition,
        "fedavg",
        preset=SMOKE,
        seed=3,
        dataset_kwargs=kwargs or None,
    )
    accuracies = outcome.history.accuracies
    assert len(accuracies) == SMOKE.num_rounds
    assert np.isfinite(accuracies).all()
    assert 0.0 <= outcome.final_accuracy <= 1.0
    # Communication was accounted for on every round.
    assert (outcome.history.cumulative_communication() > 0).all()


@pytest.mark.parametrize("dataset", ["mnist", "adult"])
def test_mixed_skew_through_pipeline(dataset):
    outcome = run_federated_experiment(
        dataset, "mixed(0.5,0.5)", "fedavg", preset=SMOKE, seed=3
    )
    assert np.isfinite(outcome.history.accuracies).all()
