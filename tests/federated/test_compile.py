"""`--compile` end-to-end: replayed federated runs are bitwise-eager.

The acceptance bar for the capture engine is not "close": for every
registered model under every algorithm, an entire federated run with
``compile=True`` must produce the same ``History`` and the same global
weights, bit for bit, as the eager run — including across a
checkpoint/resume boundary, whose payload must stay free of replay state.
"""

import pickle

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.data.registry import DatasetInfo
from repro.federated import (
    FedAvg,
    FedNova,
    FedProx,
    FederatedConfig,
    FederatedServer,
    Scaffold,
    make_clients,
)
from repro.grad import nn
from repro.models import MODEL_NAMES, build_model
from repro.partition import HomogeneousPartitioner

#: Small enough that even resnet50 steps in well under a second.
CASES = {
    "mlp": ((16,), "tabular"),
    "logistic": ((16,), "tabular"),
    "cnn": ((3, 16, 16), "image"),
    "vgg9": ((3, 16, 16), "image"),
    "resnet8": ((3, 16, 16), "image"),
    "resnet20": ((3, 16, 16), "image"),
    "resnet50": ((3, 16, 16), "image"),
}

#: Per-step cost tiers: heavy models get the minimal capture+replay run.
LIGHT = ("mlp", "logistic", "cnn")

ALGORITHMS = {
    "fedavg": FedAvg,
    "fedprox": lambda: FedProx(mu=0.01),
    "scaffold": Scaffold,
    "fednova": FedNova,
}


def tiny_dataset(name, n, seed=0, num_classes=4):
    shape, modality = CASES[name]
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n, *shape)).astype(np.float32)
    labels = rng.integers(0, num_classes, size=n).astype(np.int64)
    return ArrayDataset(features, labels)


def make_server(name, algorithm, compile):
    if name in LIGHT:
        n, batch_size, rounds = 16, 4, 2
    else:
        n, batch_size, rounds = 4, 2, 1
    shape, modality = CASES[name]
    info = DatasetInfo(
        name="synthetic", modality=modality, num_classes=4,
        input_shape=shape, num_train=n, num_test=n,
    )
    train = tiny_dataset(name, n)
    partition = HomogeneousPartitioner().partition(
        train, 2, np.random.default_rng(0)
    )
    config = FederatedConfig(
        num_rounds=rounds, local_epochs=1, batch_size=batch_size,
        lr=0.05, momentum=0.9, seed=17, compile=compile,
    )
    clients = make_clients(partition, train, seed=config.seed)
    model = build_model(name, info, seed=61)
    server = FederatedServer(model, algorithm(), clients, config)
    return server, rounds


def run(name, algorithm, compile):
    server, rounds = make_server(name, algorithm, compile)
    with server:
        server.fit(rounds)
    history = [record.to_dict() for record in server.history.records]
    state = {k: np.array(v, copy=True) for k, v in server.global_state.items()}
    return history, state


@pytest.mark.parametrize("name", MODEL_NAMES)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_history_and_state_bitwise(name, algorithm):
    eager_history, eager_state = run(name, ALGORITHMS[algorithm], False)
    compiled_history, compiled_state = run(name, ALGORITHMS[algorithm], True)
    assert eager_history == compiled_history
    assert eager_state.keys() == compiled_state.keys()
    for key in eager_state:
        np.testing.assert_array_equal(
            eager_state[key], compiled_state[key],
            err_msg=f"{name}/{algorithm}: {key}",
        )


class TestResume:
    """Checkpoint/resume under --compile stays bitwise with both the
    uninterrupted compiled run and the fully eager run."""

    @staticmethod
    def make(compile=True):
        rng = np.random.default_rng(5)
        w = rng.standard_normal((6, 3)).astype(np.float32)
        x = rng.standard_normal((96, 6)).astype(np.float32)
        train = ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))
        partition = HomogeneousPartitioner().partition(
            train, 3, np.random.default_rng(0)
        )
        config = FederatedConfig(
            num_rounds=4, local_epochs=1, batch_size=16, lr=0.05,
            momentum=0.9, seed=29, compile=compile,
        )
        clients = make_clients(partition, train, seed=config.seed)
        model_rng = np.random.default_rng(2)
        model = nn.Sequential(
            nn.Linear(6, 12, rng=model_rng), nn.ReLU(),
            nn.Linear(12, 3, rng=model_rng),
        )
        return FederatedServer(
            model, FedAvg(), clients, config, test_dataset=train
        )

    @staticmethod
    def collect(server):
        return (
            [record.to_dict() for record in server.history.records],
            {k: np.array(v, copy=True) for k, v in server.global_state.items()},
        )

    def test_resume_bitwise(self, tmp_path):
        path = str(tmp_path / "compiled.ckpt")
        with self.make() as straight:
            straight.fit(4)
        with self.make() as first:
            first.fit(2)
            first.save_checkpoint(path)
        with self.make() as second:
            second.resume(path)
            second.fit(2)
        with self.make(compile=False) as eager:
            eager.fit(4)
        straight_history, straight_state = self.collect(straight)
        resumed_history, resumed_state = self.collect(second)
        eager_history, eager_state = self.collect(eager)
        assert straight_history == resumed_history == eager_history
        for key in straight_state:
            np.testing.assert_array_equal(
                straight_state[key], resumed_state[key], err_msg=key
            )
            np.testing.assert_array_equal(
                straight_state[key], eager_state[key], err_msg=key
            )

    def test_checkpoint_free_of_replay_state(self, tmp_path):
        path = str(tmp_path / "compiled.ckpt")
        with self.make() as server:
            server.fit(2)
            server.save_checkpoint(path)
        blob = open(path, "rb").read()
        # The engine cache lives on the (unpickled) model object; none of
        # the capture machinery may leak into the checkpoint payload.
        for marker in (b"_capture_engines", b"CapturedStep", b"grad.capture"):
            assert marker not in blob, marker
        payload = pickle.loads(blob)
        for value in payload["global_state"].values():
            assert isinstance(value, np.ndarray)
