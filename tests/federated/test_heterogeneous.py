"""Tests for heterogeneous local work (the FedNova scenario)."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    Client,
    FedAvg,
    FederatedConfig,
    FederatedServer,
    heterogeneous_epochs,
    make_clients,
)
from repro.grad import nn
from repro.partition import HomogeneousPartitioner


def dataset(n=120, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.standard_normal((n, 4)).astype(np.float32),
        (np.arange(n) % 3).astype(np.int64),
    )


class TestClientEpochOverride:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Client(0, dataset(), rng, local_epochs=0)

    def test_override_changes_step_count(self, rng):
        from repro.federated.trainer import run_local_training

        ds = dataset()
        config = FederatedConfig(num_rounds=1, local_epochs=2, batch_size=30, lr=0.01)
        model = nn.Sequential(nn.Linear(4, 3, rng=np.random.default_rng(0)))

        default_client = Client(0, ds, np.random.default_rng(1))
        result = run_local_training(model, default_client, config)
        assert result.num_steps == 2 * 4  # 2 epochs x 4 batches

        fast_client = Client(1, ds, np.random.default_rng(1), local_epochs=5)
        result = run_local_training(model, fast_client, config)
        assert result.num_steps == 5 * 4

    def test_make_clients_epoch_list(self, rng):
        ds = dataset()
        part = HomogeneousPartitioner().partition(ds, 3, rng)
        clients = make_clients(part, ds, local_epochs=[1, 2, 3])
        assert [c.local_epochs for c in clients] == [1, 2, 3]

    def test_make_clients_epoch_list_length_checked(self, rng):
        ds = dataset()
        part = HomogeneousPartitioner().partition(ds, 3, rng)
        with pytest.raises(ValueError):
            make_clients(part, ds, local_epochs=[1, 2])


class TestHeterogeneousEpochs:
    def test_range(self, rng):
        epochs = heterogeneous_epochs(100, base_epochs=10, rng=rng)
        assert len(epochs) == 100
        assert min(epochs) >= 2  # low_factor 0.2 of 10
        assert max(epochs) <= 10

    def test_at_least_one_epoch(self, rng):
        epochs = heterogeneous_epochs(50, base_epochs=2, rng=rng, low_factor=0.2)
        assert min(epochs) >= 1

    def test_actually_heterogeneous(self, rng):
        epochs = heterogeneous_epochs(50, base_epochs=10, rng=rng)
        assert len(set(epochs)) > 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            heterogeneous_epochs(5, 0, rng)
        with pytest.raises(ValueError):
            heterogeneous_epochs(5, 10, rng, low_factor=0.0)


class TestFedNovaUnderHeterogeneity:
    def test_fednova_differs_from_fedavg_only_with_heterogeneity(self):
        from repro.federated import FedNova

        def run(algorithm, epoch_list):
            ds = dataset(seed=5)
            part = HomogeneousPartitioner().partition(ds, 3, np.random.default_rng(5))
            clients = make_clients(part, ds, seed=5, local_epochs=epoch_list)
            model = nn.Sequential(
                nn.Linear(4, 8, rng=np.random.default_rng(5)),
                nn.ReLU(),
                nn.Linear(8, 3, rng=np.random.default_rng(6)),
            )
            config = FederatedConfig(num_rounds=2, local_epochs=2, batch_size=20, lr=0.05, seed=5)
            server = FederatedServer(model, algorithm, clients, config)
            server.fit()
            return server.global_state

        homogeneous_avg = run(FedAvg(), None)
        homogeneous_nova = run(FedNova(), None)
        for key in homogeneous_avg:
            np.testing.assert_allclose(
                homogeneous_avg[key], homogeneous_nova[key], atol=1e-7
            )

        hetero = [1, 2, 6]
        hetero_avg = run(FedAvg(), hetero)
        hetero_nova = run(FedNova(), hetero)
        different = any(
            not np.allclose(hetero_avg[key], hetero_nova[key]) for key in hetero_avg
        )
        assert different
