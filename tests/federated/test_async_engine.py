"""Virtual-clock async federation: barrier exactness, staleness, determinism."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    AsyncFederation,
    FedAvg,
    FederatedConfig,
    FederatedServer,
    MaterializedPopulation,
    Scaffold,
    VirtualPopulation,
    make_clients,
)
from repro.federated.async_engine import EVENT_TYPES
from repro.federated.systems import SystemModel
from repro.grad import nn
from repro.partition import HomogeneousPartitioner

# `async` is a Python keyword, so the marker is applied by name.
pytestmark = getattr(pytest.mark, "async")

REPO = Path(__file__).resolve().parents[2]


def toy_split(seed=0, n=96, n_test=60, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)

    def sample(count):
        x = rng.standard_normal((count, dim)).astype(np.float32)
        return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))

    return sample(n), sample(n_test)


def toy_model(seed=0, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(dim, 16, rng=rng), nn.ReLU(), nn.Linear(16, classes, rng=rng)
    )


def build_fixture(seed=0, num_parties=6, **config_kwargs):
    train, test = toy_split(seed)
    partition = HomogeneousPartitioner().partition(
        train, num_parties, np.random.default_rng(seed)
    )
    clients = make_clients(partition, train, seed=seed)
    defaults = dict(num_rounds=3, local_epochs=1, batch_size=16, lr=0.05, seed=seed)
    defaults.update(config_kwargs)
    config = FederatedConfig(**defaults)
    return toy_model(seed), clients, config, test


class TestBarrierEqualsSync:
    @pytest.mark.parametrize("sample_fraction", [1.0, 0.5])
    def test_bitwise_equal_global_state(self, sample_fraction):
        model, clients, config, test = build_fixture(
            sample_fraction=sample_fraction
        )
        with FederatedServer(model, FedAvg(), clients, config, test_dataset=test) as server:
            sync_history = server.fit()
        sync_state = {k: np.copy(v) for k, v in server.global_state.items()}

        model, clients, config, test = build_fixture(
            sample_fraction=sample_fraction, aggregation="async"
        )
        population = MaterializedPopulation(clients)
        with AsyncFederation(
            model, FedAvg(), population, config, test_dataset=test
        ) as engine:
            async_history = engine.fit()

        for key in sync_state:
            assert np.array_equal(sync_state[key], engine.global_state[key]), key
        assert np.array_equal(sync_history.accuracies, async_history.accuracies)
        assert np.array_equal(sync_history.losses, async_history.losses)
        for s, a in zip(sync_history.records, async_history.records):
            assert s.participants == a.participants
            assert s.bytes_communicated == a.bytes_communicated
            assert a.staleness == [0] * len(a.participants)
            assert a.buffer_flush == len(a.participants)

    def test_explicit_buffer_equal_to_cohort_matches_sync(self):
        model, clients, config, test = build_fixture(sample_fraction=0.5)
        with FederatedServer(model, FedAvg(), clients, config, test_dataset=test) as server:
            sync_history = server.fit()

        model, clients, config, test = build_fixture(
            aggregation="async", sample_per_round=3, buffer_size=3
        )
        with AsyncFederation(
            model, FedAvg(), MaterializedPopulation(clients), config, test_dataset=test
        ) as engine:
            async_history = engine.fit()

        assert np.array_equal(sync_history.accuracies, async_history.accuracies)
        for key, value in server.global_state.items():
            assert np.array_equal(value, engine.global_state[key]), key

    def test_barrier_with_dropout_matches_sync(self):
        kwargs = dict(sample_fraction=0.5, dropout_prob=0.3, num_rounds=4)
        model, clients, config, test = build_fixture(**kwargs)
        with FederatedServer(model, FedAvg(), clients, config, test_dataset=test) as server:
            sync_history = server.fit()

        model, clients, config, test = build_fixture(aggregation="async", **kwargs)
        with AsyncFederation(
            model, FedAvg(), MaterializedPopulation(clients), config, test_dataset=test
        ) as engine:
            async_history = engine.fit()

        for s, a in zip(sync_history.records, async_history.records):
            assert s.participants == a.participants
            assert s.sampled == a.sampled
            assert s.dropped == a.dropped
        assert np.array_equal(sync_history.accuracies, async_history.accuracies)
        for key, value in server.global_state.items():
            assert np.array_equal(value, engine.global_state[key]), key


class TestBufferedAsync:
    def engine(self, **config_kwargs):
        defaults = dict(
            aggregation="async",
            sample_per_round=4,
            buffer_size=2,
            staleness_exponent=0.5,
            num_rounds=4,
        )
        defaults.update(config_kwargs)
        model, clients, config, test = build_fixture(**defaults)
        # Heterogeneous speeds interleave arrivals across dispatch
        # groups, so flushes genuinely mix staleness levels.
        system = SystemModel(compute_speeds=[1.0, 0.2, 3.0, 0.5, 2.0])
        return AsyncFederation(
            model, FedAvg(), MaterializedPopulation(clients), config,
            test_dataset=test, system=system,
        )

    def test_records_staleness_and_flush_sizes(self):
        with self.engine() as engine:
            history = engine.fit()
        assert len(history) == 4
        for record in history.records:
            assert record.buffer_flush == len(record.participants) == 2
            assert len(record.staleness) == 2
            assert all(s >= 0 for s in record.staleness)
        # Later flushes apply updates dispatched against older versions.
        assert history.mean_staleness() > 0
        # The virtual clock advances monotonically.
        times = history.virtual_times
        assert all(t2 >= t1 for t1, t2 in zip(times, times[1:]))

    def test_staleness_weighting_changes_aggregation(self):
        with self.engine(staleness_exponent=0.0) as flat:
            flat_history = flat.fit()
        with self.engine(staleness_exponent=2.0) as discounted:
            discounted.fit()
        key = next(iter(flat.global_state))
        assert not np.array_equal(
            flat.global_state[key], discounted.global_state[key]
        )
        assert len(flat_history) == 4

    def test_deterministic_within_process(self):
        with self.engine() as first:
            history_a = first.fit()
        with self.engine() as second:
            history_b = second.fit()
        assert np.array_equal(history_a.accuracies, history_b.accuracies)
        for a, b in zip(history_a.records, history_b.records):
            assert a.participants == b.participants
            assert a.staleness == b.staleness
            assert a.virtual_time == b.virtual_time
        for key, value in first.global_state.items():
            assert np.array_equal(value, second.global_state[key]), key


class TestVirtualPopulationRuns:
    def test_flat_memory_over_large_population(self):
        train, test = toy_split()
        population = VirtualPopulation(
            train, size=500_000, samples_per_client=16, seed=3
        )
        config = FederatedConfig(
            num_rounds=3, local_epochs=1, batch_size=8, lr=0.05,
            aggregation="async", sample_per_round=6, seed=3,
        )
        with AsyncFederation(
            toy_model(), FedAvg(), population, config, test_dataset=test
        ) as engine:
            history = engine.fit()
        assert len(history) == 3
        assert population.materialized_count == 0
        # Only parties that actually participated hold cold state.
        assert 0 < population.spilled_count <= 18


class TestEngineValidation:
    def test_cohort_cannot_exceed_population(self):
        model, clients, config, _ = build_fixture(
            aggregation="async", sample_per_round=7
        )
        with pytest.raises(ValueError, match="population"):
            AsyncFederation(model, FedAvg(), MaterializedPopulation(clients), config)

    def test_buffer_cannot_exceed_cohort(self):
        with pytest.raises(ValueError, match="buffer"):
            FederatedConfig(
                aggregation="async", sample_per_round=4, buffer_size=5
            )

    def test_non_delta_safe_algorithm_needs_barrier(self):
        model, clients, config, _ = build_fixture(
            aggregation="async", sample_per_round=4, buffer_size=2
        )
        with pytest.raises(ValueError, match="[Ss]caffold"):
            AsyncFederation(
                model, Scaffold(), MaterializedPopulation(clients), config
            )

    def test_event_registry_is_complete(self):
        # The lint gate proves this statically; assert it at runtime too.
        for kind in EVENT_TYPES:
            assert callable(getattr(AsyncFederation, f"_handle_{kind}"))


_DETERMINISM_CHILD = """
import sys
from repro.spec import RunSpec
from repro.experiments.runner import run_spec
from repro.experiments.scale import SMOKE
from repro.experiments.store import ResultStore

spec = RunSpec.build(
    "fcube", "iid", "fedavg", preset=SMOKE, num_parties=4, num_rounds=3,
    aggregation="async", sample_per_round=3, buffer_size=2,
    staleness_exponent=0.5, seed=11,
)
store = ResultStore(sys.argv[1])
store.save(run_spec(spec))
"""


class TestCrossProcessDeterminism:
    def test_two_processes_produce_identical_store_entries(self, tmp_path):
        stores = []
        for name in ("a", "b"):
            store_dir = tmp_path / name
            subprocess.run(
                [sys.executable, "-c", _DETERMINISM_CHILD, str(store_dir)],
                check=True,
                cwd=REPO,
                env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
            )
            stores.append(store_dir)
        files_a = sorted(p.name for p in stores[0].glob("*.json"))
        files_b = sorted(p.name for p in stores[1].glob("*.json"))
        # run_id-keyed filenames agree across processes...
        assert files_a == files_b and len(files_a) == 1
        record_a = json.loads((stores[0] / files_a[0]).read_text())
        record_b = json.loads((stores[1] / files_b[0]).read_text())
        # ...and so does every recorded value: accuracies, event order
        # (participants per flush), staleness and virtual times.
        assert record_a == record_b
        rounds = record_a["history"]["records"]
        assert len(rounds) == 3
        assert any(r["staleness"] for r in rounds)
