"""End-to-end integration tests reproducing the paper's headline effects
at smoke scale.

These use the real pipeline (synthetic dataset -> partitioner -> clients ->
server -> evaluation) and assert the *direction* of the paper's findings,
with margins wide enough to be seed-robust.
"""

import numpy as np
import pytest

from repro import run_federated_experiment
from repro.experiments.scale import SMOKE, ScalePreset

FAST = ScalePreset(
    name="fast", n_train=400, n_test=200, num_rounds=5, local_epochs=3, batch_size=32
)


@pytest.fixture(scope="module")
def mnist_results():
    """Shared runs over partitions (module-scoped: they cost seconds each)."""
    results = {}
    for spec in ("iid", "#C=1", "#C=3", "quantity(0.5)"):
        results[spec] = run_federated_experiment(
            "mnist", spec, "fedavg", preset=FAST, seed=1
        )
    return results


class TestFindingOne:
    """Finding 1: single-label skew is the hardest; quantity skew is benign."""

    def test_single_label_much_worse_than_iid(self, mnist_results):
        # Compare whole-run mean accuracy (convergence speed + quality):
        # mnist-like is easy enough that #C=1 eventually catches up, but it
        # is dramatically slower — exactly the paper's "most challenging".
        iid = np.nanmean(mnist_results["iid"].history.accuracies)
        single = np.nanmean(mnist_results["#C=1"].history.accuracies)
        assert single < iid - 0.15

    def test_more_labels_per_party_helps(self, mnist_results):
        single = np.nanmean(mnist_results["#C=1"].history.accuracies)
        triple = np.nanmean(mnist_results["#C=3"].history.accuracies)
        assert triple > single

    def test_quantity_skew_close_to_iid(self, mnist_results):
        iid = mnist_results["iid"].best_accuracy
        quantity = mnist_results["quantity(0.5)"].best_accuracy
        assert quantity > iid - 0.1


class TestDriftMechanism:
    """Figure 2's mechanism: local models diverge more under label skew."""

    def test_weight_divergence_larger_under_label_skew(self):
        from repro.data import load_dataset
        from repro.federated import FedAvg, FederatedConfig, make_clients
        from repro.metrics import pairwise_weight_divergence
        from repro.models import build_model
        from repro.partition import parse_strategy

        train, _, info = load_dataset("mnist", n_train=400, n_test=50, seed=0)
        divergences = {}
        for spec in ("iid", "#C=1"):
            part = parse_strategy(spec).partition(train, 5, np.random.default_rng(0))
            clients = make_clients(part, train, seed=0, drop_empty=True)
            model = build_model("cnn", info, seed=0)
            config = FederatedConfig(num_rounds=1, local_epochs=3, batch_size=32, lr=0.01)
            algo = FedAvg()
            algo.prepare(model, clients, config)
            global_state = model.state_dict()
            states = []
            for client in clients:
                result = algo.client_round(model, global_state, client, config)
                states.append(result.state)
            keys = [k for k, _ in model.named_parameters()]
            divergences[spec] = pairwise_weight_divergence(states, keys)
        assert divergences["#C=1"] > 1.5 * divergences["iid"]


class TestAlgorithmsOnRealPipeline:
    @pytest.mark.parametrize("algorithm", ["fedavg", "fedprox", "scaffold", "fednova"])
    def test_all_algorithms_learn_iid_mnist(self, algorithm):
        outcome = run_federated_experiment(
            "mnist", "iid", algorithm, preset=FAST, seed=2
        )
        assert outcome.best_accuracy > 0.6, algorithm

    def test_tabular_pipeline(self):
        outcome = run_federated_experiment(
            "covtype", "dir(0.5)", "fedavg", preset=FAST, num_rounds=10, seed=2
        )
        assert outcome.best_accuracy > 0.6

    def test_fcube_pipeline(self):
        outcome = run_federated_experiment(
            "fcube", "fcube", "fedavg", preset=SMOKE, seed=2
        )
        assert outcome.best_accuracy > 0.9
        assert outcome.partition_result.num_parties == 4

    def test_femnist_realworld_pipeline(self):
        outcome = run_federated_experiment(
            "femnist",
            "real-world",
            "fedavg",
            preset=FAST,
            seed=2,
            dataset_kwargs={"num_writers": 20},
        )
        assert outcome.best_accuracy > 0.6

    def test_noise_feature_skew_pipeline(self):
        outcome = run_federated_experiment(
            "fmnist", "gau(0.1)", "fedavg", preset=FAST, seed=2
        )
        assert outcome.best_accuracy > 0.5


class TestPartialParticipation:
    def test_sampling_runs_and_records(self):
        outcome = run_federated_experiment(
            "mnist",
            "iid",
            "fedavg",
            preset=SMOKE,
            num_parties=20,
            sample_fraction=0.2,
            seed=3,
        )
        for record in outcome.history.records:
            assert len(record.participants) == 4

    def test_scaffold_partial_participation_runs(self):
        # Finding 8 says SCAFFOLD degrades here — it must still *run*.
        outcome = run_federated_experiment(
            "mnist",
            "iid",
            "scaffold",
            preset=SMOKE,
            num_parties=10,
            sample_fraction=0.3,
            seed=3,
        )
        assert np.isfinite(outcome.history.accuracies).all()


class TestReproducibility:
    def test_same_seed_same_run(self):
        a = run_federated_experiment("adult", "dir(0.5)", "fedavg", preset=SMOKE, seed=9)
        b = run_federated_experiment("adult", "dir(0.5)", "fedavg", preset=SMOKE, seed=9)
        np.testing.assert_array_equal(a.history.accuracies, b.history.accuracies)

    def test_different_seed_different_partition(self):
        a = run_federated_experiment("adult", "dir(0.5)", "fedavg", preset=SMOKE, seed=9)
        b = run_federated_experiment("adult", "dir(0.5)", "fedavg", preset=SMOKE, seed=10)
        assert not np.array_equal(
            a.partition_result.sizes, b.partition_result.sizes
        ) or not np.array_equal(a.history.accuracies, b.history.accuracies)
