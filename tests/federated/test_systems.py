"""Tests for the wall-clock system model (time-to-accuracy)."""

import numpy as np
import pytest

from repro.federated import SystemModel
from repro.federated.history import History, RoundRecord


def record(round_index, accuracy, participants, steps, nbytes):
    return RoundRecord(
        round_index=round_index,
        test_accuracy=accuracy,
        train_loss=1.0,
        participants=participants,
        bytes_communicated=nbytes,
        client_steps=steps,
    )


def history(*records):
    h = History()
    for r in records:
        h.append(r)
    return h


class TestValidation:
    def test_step_time_positive(self):
        with pytest.raises(ValueError):
            SystemModel(step_time=0.0)

    def test_speeds_positive(self):
        with pytest.raises(ValueError):
            SystemModel(compute_speeds=(1.0, 0.0))

    def test_bandwidths_positive(self):
        with pytest.raises(ValueError):
            SystemModel(bandwidths=(-1.0,))

    def test_overhead_nonnegative(self):
        with pytest.raises(ValueError):
            SystemModel(server_overhead=-1.0)

    def test_steps_participants_alignment(self):
        model = SystemModel()
        with pytest.raises(ValueError):
            model.round_duration([0, 1], [5], 100)


class TestRoundDuration:
    def test_homogeneous_round(self):
        model = SystemModel(step_time=0.1, default_bandwidth=1000.0)
        # 2 parties, 10 steps each, 2000 bytes total => 1000 bytes each.
        duration = model.round_duration([0, 1], [10, 10], 2000)
        assert duration == pytest.approx(10 * 0.1 + 1.0)

    def test_waits_for_slowest_party(self):
        model = SystemModel(step_time=0.1, compute_speeds=(1.0, 0.25))
        duration = model.round_duration([0, 1], [10, 10], 0)
        # party 1 runs at quarter speed: 10 * 0.1 / 0.25 = 4 seconds.
        assert duration == pytest.approx(4.0)

    def test_bandwidth_matters(self):
        fast = SystemModel(step_time=1e-9, default_bandwidth=1e6)
        slow = SystemModel(step_time=1e-9, default_bandwidth=1e3)
        nbytes = 10_000
        assert slow.round_duration([0], [1], nbytes) > fast.round_duration([0], [1], nbytes)

    def test_server_overhead_added(self):
        model = SystemModel(step_time=0.1, server_overhead=5.0)
        assert model.round_duration([0], [1], 0) == pytest.approx(5.1)

    def test_empty_round(self):
        model = SystemModel(server_overhead=2.0)
        assert model.round_duration([], [], 0) == 2.0


class TestReplay:
    def test_cumulative(self):
        h = history(
            record(0, 0.5, [0], [10], 0),
            record(1, 0.6, [0], [10], 0),
        )
        model = SystemModel(step_time=0.1)
        np.testing.assert_allclose(model.replay(h), [1.0, 2.0])

    def test_time_to_accuracy(self):
        h = history(
            record(0, 0.5, [0], [10], 0),
            record(1, 0.8, [0], [10], 0),
        )
        model = SystemModel(step_time=0.1)
        assert model.time_to_accuracy(h, 0.7) == pytest.approx(2.0)
        assert model.time_to_accuracy(h, 0.4) == pytest.approx(1.0)

    def test_unreached_target_is_inf(self):
        h = history(record(0, 0.5, [0], [10], 0))
        assert SystemModel().time_to_accuracy(h, 0.99) == float("inf")

    def test_accuracy_time_curve_skips_unevaluated(self):
        h = history(
            record(0, None, [0], [10], 0),
            record(1, 0.8, [0], [10], 0),
        )
        times, accs = SystemModel(step_time=0.1).accuracy_time_curve(h)
        assert len(times) == 1
        np.testing.assert_allclose(accs, [0.8])

    def test_doubled_bytes_double_transfer_time(self):
        # SCAFFOLD's 2x payload becomes 2x transfer time per round.
        model = SystemModel(step_time=1e-12, default_bandwidth=100.0)
        h1 = history(record(0, 0.5, [0], [1], 100))
        h2 = history(record(0, 0.5, [0], [1], 200))
        assert model.replay(h2)[0] == pytest.approx(2 * model.replay(h1)[0])


class TestEndToEnd:
    def test_replay_real_history(self):
        from repro import run_federated_experiment
        from repro.experiments.scale import SMOKE

        outcome = run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=0)
        model = SystemModel(step_time=0.01, default_bandwidth=1e6)
        times = model.replay(outcome.history)
        assert len(times) == len(outcome.history)
        assert (np.diff(times) > 0).all()
