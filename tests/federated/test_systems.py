"""Tests for the wall-clock system model (time-to-accuracy)."""

import numpy as np
import pytest

from repro.federated import SystemModel
from repro.federated.history import History, RoundRecord


def record(round_index, accuracy, participants, steps, nbytes, **extra):
    return RoundRecord(
        round_index=round_index,
        test_accuracy=accuracy,
        train_loss=1.0,
        participants=participants,
        bytes_communicated=nbytes,
        client_steps=steps,
        **extra,
    )


def history(*records):
    h = History()
    for r in records:
        h.append(r)
    return h


class TestValidation:
    def test_step_time_positive(self):
        with pytest.raises(ValueError):
            SystemModel(step_time=0.0)

    def test_speeds_positive(self):
        with pytest.raises(ValueError):
            SystemModel(compute_speeds=(1.0, 0.0))

    def test_bandwidths_positive(self):
        with pytest.raises(ValueError):
            SystemModel(bandwidths=(-1.0,))

    def test_overhead_nonnegative(self):
        with pytest.raises(ValueError):
            SystemModel(server_overhead=-1.0)

    def test_steps_participants_alignment(self):
        model = SystemModel()
        with pytest.raises(ValueError):
            model.round_duration([0, 1], [5], 100)


class TestRoundDuration:
    def test_homogeneous_round(self):
        model = SystemModel(step_time=0.1, default_bandwidth=1000.0)
        # 2 parties, 10 steps each, 2000 bytes total => 1000 bytes each.
        duration = model.round_duration([0, 1], [10, 10], 2000)
        assert duration == pytest.approx(10 * 0.1 + 1.0)

    def test_waits_for_slowest_party(self):
        model = SystemModel(step_time=0.1, compute_speeds=(1.0, 0.25))
        duration = model.round_duration([0, 1], [10, 10], 0)
        # party 1 runs at quarter speed: 10 * 0.1 / 0.25 = 4 seconds.
        assert duration == pytest.approx(4.0)

    def test_bandwidth_matters(self):
        fast = SystemModel(step_time=1e-9, default_bandwidth=1e6)
        slow = SystemModel(step_time=1e-9, default_bandwidth=1e3)
        nbytes = 10_000
        assert slow.round_duration([0], [1], nbytes) > fast.round_duration([0], [1], nbytes)

    def test_server_overhead_added(self):
        model = SystemModel(step_time=0.1, server_overhead=5.0)
        assert model.round_duration([0], [1], 0) == pytest.approx(5.1)

    def test_empty_round(self):
        model = SystemModel(server_overhead=2.0)
        assert model.round_duration([], [], 0) == 2.0


class TestDirectionalCharging:
    """Regression: per-direction byte fields must drive the transfer time.

    The old model split ``bytes_communicated`` evenly regardless of the
    ``bytes_down``/``bytes_up`` breakdown PR 2 started recording, which
    under-charged parties with asymmetric or per-client-varying uplinks.
    """

    def test_uses_direction_fields_over_aggregate(self):
        model = SystemModel(step_time=1e-12, default_bandwidth=100.0)
        # When the breakdown is present, the aggregate (here deliberately
        # inconsistent) must be ignored in favour of down/up fields.
        duration = model.round_duration(
            [0, 1], [1, 1], 1000, bytes_down=200, bytes_up=0
        )
        assert duration == pytest.approx(100 / 100.0)

    def test_per_client_uplink_charged_to_its_party(self):
        model = SystemModel(step_time=1e-12, default_bandwidth=100.0)
        uneven = model.round_duration(
            [0, 1], [1, 1], 400,
            bytes_down=200, bytes_up=200, client_bytes_up=[190, 10],
        )
        # The slowest party carries 100 (down) + 190 (its uplink).
        assert uneven == pytest.approx(290 / 100.0)
        even = model.round_duration(
            [0, 1], [1, 1], 400, bytes_down=200, bytes_up=200
        )
        assert even == pytest.approx(200 / 100.0)

    def test_legacy_records_keep_even_split(self):
        model = SystemModel(step_time=1e-12, default_bandwidth=100.0)
        legacy = model.round_duration([0, 1], [1, 1], 400)
        assert legacy == pytest.approx(200 / 100.0)

    def test_straggler_slowdown_charged(self):
        model = SystemModel(step_time=0.1)
        slowed = model.round_duration(
            [0, 1], [10, 10], 0, slowdowns=[1.0, 3.0]
        )
        assert slowed == pytest.approx(3.0)

    def test_mismatched_lengths_rejected(self):
        model = SystemModel()
        with pytest.raises(ValueError):
            model.round_duration([0, 1], [1, 1], 0, slowdowns=[1.0])
        with pytest.raises(ValueError):
            model.round_duration(
                [0, 1], [1, 1], 0, bytes_down=10, client_bytes_up=[5]
            )

    def test_replay_scaffold_history(self):
        # SCAFFOLD's uplink carries the control-variate delta on top of
        # the model state; the directional replay must charge its real
        # per-client uplink, not an even split of the aggregate.
        from repro import run_federated_experiment
        from repro.experiments.scale import SMOKE

        outcome = run_federated_experiment(
            "adult", "iid", "scaffold", preset=SMOKE, seed=0
        )
        rec = outcome.history.records[0]
        assert rec.client_bytes_up and sum(rec.client_bytes_up) == rec.bytes_up
        model = SystemModel(step_time=1e-12, default_bandwidth=1e3)
        duration = model.round_duration(
            rec.participants,
            rec.client_steps,
            rec.bytes_communicated,
            bytes_down=rec.bytes_down,
            bytes_up=rec.bytes_up,
            client_bytes_up=rec.client_bytes_up,
        )
        n = len(rec.participants)
        expected = (rec.bytes_down / n + max(rec.client_bytes_up)) / 1e3
        assert duration == pytest.approx(expected)
        # and replay() must route the record's fields the same way
        np.testing.assert_allclose(
            model.replay(outcome.history)[0], duration
        )


class TestReplay:
    def test_cumulative(self):
        h = history(
            record(0, 0.5, [0], [10], 0),
            record(1, 0.6, [0], [10], 0),
        )
        model = SystemModel(step_time=0.1)
        np.testing.assert_allclose(model.replay(h), [1.0, 2.0])

    def test_time_to_accuracy(self):
        h = history(
            record(0, 0.5, [0], [10], 0),
            record(1, 0.8, [0], [10], 0),
        )
        model = SystemModel(step_time=0.1)
        assert model.time_to_accuracy(h, 0.7) == pytest.approx(2.0)
        assert model.time_to_accuracy(h, 0.4) == pytest.approx(1.0)

    def test_unreached_target_is_inf(self):
        h = history(record(0, 0.5, [0], [10], 0))
        assert SystemModel().time_to_accuracy(h, 0.99) == float("inf")

    def test_accuracy_time_curve_skips_unevaluated(self):
        h = history(
            record(0, None, [0], [10], 0),
            record(1, 0.8, [0], [10], 0),
        )
        times, accs = SystemModel(step_time=0.1).accuracy_time_curve(h)
        assert len(times) == 1
        np.testing.assert_allclose(accs, [0.8])

    def test_doubled_bytes_double_transfer_time(self):
        # SCAFFOLD's 2x payload becomes 2x transfer time per round.
        model = SystemModel(step_time=1e-12, default_bandwidth=100.0)
        h1 = history(record(0, 0.5, [0], [1], 100))
        h2 = history(record(0, 0.5, [0], [1], 200))
        assert model.replay(h2)[0] == pytest.approx(2 * model.replay(h1)[0])


class TestEndToEnd:
    def test_replay_real_history(self):
        from repro import run_federated_experiment
        from repro.experiments.scale import SMOKE

        outcome = run_federated_experiment("adult", "iid", "fedavg", preset=SMOKE, seed=0)
        model = SystemModel(step_time=0.01, default_bandwidth=1e6)
        times = model.replay(outcome.history)
        assert len(times) == len(outcome.history)
        assert (np.diff(times) > 0).all()
