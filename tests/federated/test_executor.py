"""Executor backends: serial-vs-parallel bitwise determinism, lifecycle."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    FedAvg,
    FederatedConfig,
    FederatedServer,
    ParallelExecutor,
    Scaffold,
    SerialExecutor,
    make_clients,
    make_executor,
)
from repro.federated import executor as executor_mod
from repro.federated.executor import fork_available
from repro.grad import nn
from repro.partition import HomogeneousPartitioner

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="parallel executor requires fork"
)


def toy_split(seed=7, n=200, n_test=60, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)

    def sample(count):
        x = rng.standard_normal((count, dim)).astype(np.float32)
        return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))

    return sample(n), sample(n_test)


def make_server(algorithm, num_workers=0, num_parties=10, seed=0, **config_kwargs):
    train, test = toy_split()
    part = HomogeneousPartitioner().partition(
        train, num_parties, np.random.default_rng(seed)
    )
    clients = make_clients(part, train, seed=seed)
    rng = np.random.default_rng(1)
    model = nn.Sequential(
        nn.Linear(5, 16, rng=rng),
        nn.BatchNorm1d(16),
        nn.ReLU(),
        nn.Linear(16, 3, rng=rng),
    )
    defaults = dict(
        num_rounds=2, local_epochs=2, batch_size=16, lr=0.05,
        seed=seed, num_workers=num_workers,
        # Force the pool: "auto" degrades to serial on single-CPU hosts
        # (e.g. CI containers), which would silently skip the parallel
        # paths these tests exist to cover.
        executor="parallel" if num_workers >= 2 else "auto",
    )
    defaults.update(config_kwargs)
    return FederatedServer(
        model, algorithm, clients, FederatedConfig(**defaults), test_dataset=test
    )


def run_to_completion(server):
    with server:
        history = server.fit()
    return history


def assert_same_run(reference, other):
    """Bitwise equality of final global state, history, and rng schedules."""
    for key in reference.global_state:
        np.testing.assert_array_equal(
            reference.global_state[key], other.global_state[key], err_msg=key
        )
    assert [r.to_dict() for r in reference.history.records] == [
        r.to_dict() for r in other.history.records
    ]
    for a, b in zip(reference.clients, other.clients):
        assert a.rng.bit_generator.state == b.rng.bit_generator.state


class TestExecutorSelection:
    def test_default_is_serial(self):
        assert isinstance(make_executor(FederatedConfig()), SerialExecutor)

    def test_auto_with_workers_is_parallel(self, monkeypatch):
        if not fork_available():  # pragma: no cover - POSIX containers fork
            pytest.skip("no fork")
        monkeypatch.setattr(executor_mod, "_effective_cpu_count", lambda: 8)
        executor = make_executor(FederatedConfig(num_workers=4))
        assert isinstance(executor, ParallelExecutor)
        assert executor.num_workers == 4

    def test_auto_degrades_to_serial_on_single_cpu(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "_effective_cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="single-CPU"):
            executor = make_executor(FederatedConfig(num_workers=4))
        assert isinstance(executor, SerialExecutor)

    @needs_fork
    def test_explicit_parallel_overrides_single_cpu(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "_effective_cpu_count", lambda: 1)
        config = FederatedConfig(executor="parallel", num_workers=2)
        executor = make_executor(config)
        assert isinstance(executor, ParallelExecutor)

    def test_single_cpu_degrade_recorded_in_round_fallback(self, monkeypatch):
        monkeypatch.setattr(executor_mod, "_effective_cpu_count", lambda: 1)
        with pytest.warns(RuntimeWarning, match="single-CPU"):
            server = make_server(FedAvg(), num_workers=2, executor="auto")
        assert isinstance(server.executor, SerialExecutor)
        history = run_to_completion(server)
        assert all(r.fallback == "serial:single-cpu" for r in history.records)

    def test_explicit_serial_ignores_workers(self):
        config = FederatedConfig(executor="serial", num_workers=8)
        assert isinstance(make_executor(config), SerialExecutor)

    def test_parallel_needs_two_workers(self):
        with pytest.raises(ValueError, match="num_workers"):
            FederatedConfig(executor="parallel", num_workers=1)
        with pytest.raises(ValueError, match="num_workers"):
            ParallelExecutor(1)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            FederatedConfig(executor="threads")

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            FederatedConfig(num_workers=-1)


@needs_fork
@pytest.mark.parallel
class TestSerialParallelDeterminism:
    """The acceptance bar: identical History regardless of worker count."""

    def test_fedavg_bitwise_identical_across_worker_counts(self):
        reference = make_server(FedAvg(), num_workers=0)
        run_to_completion(reference)
        for workers in (2, 4):
            server = make_server(FedAvg(), num_workers=workers)
            assert isinstance(server.executor, ParallelExecutor)
            run_to_completion(server)
            assert_same_run(reference, server)

    def test_scaffold_bitwise_identical_and_state_committed(self):
        reference = make_server(Scaffold(), num_workers=0)
        run_to_completion(reference)
        server = make_server(Scaffold(), num_workers=2)
        run_to_completion(server)
        assert_same_run(reference, server)
        # Worker-computed control variates were committed to parent clients.
        for ref_client, client in zip(reference.clients, server.clients):
            assert "scaffold_c" in client.state
            for a, b in zip(ref_client.state["scaffold_c"], client.state["scaffold_c"]):
                np.testing.assert_array_equal(a, b)
        # ... and the server-side control variate matches too.
        for a, b in zip(
            reference.algorithm.server_control, server.algorithm.server_control
        ):
            np.testing.assert_array_equal(a, b)

    def test_local_bn_policy_matches_in_parallel(self):
        reference = make_server(FedAvg(), num_workers=0, bn_policy="local")
        run_to_completion(reference)
        server = make_server(FedAvg(), num_workers=2, bn_policy="local")
        run_to_completion(server)
        assert_same_run(reference, server)
        for ref_client, client in zip(reference.clients, server.clients):
            assert "bn_local" in client.state
            for key, value in ref_client.state["bn_local"].items():
                np.testing.assert_array_equal(value, client.state["bn_local"][key])

    def test_partial_participation_matches(self):
        reference = make_server(FedAvg(), num_workers=0, sample_fraction=0.5)
        run_to_completion(reference)
        server = make_server(FedAvg(), num_workers=2, sample_fraction=0.5)
        run_to_completion(server)
        assert_same_run(reference, server)


@needs_fork
@pytest.mark.parallel
class TestExecutorLifecycle:
    def test_close_is_idempotent(self):
        server = make_server(FedAvg(), num_workers=2)
        server.fit(1)
        server.close()
        server.close()

    def test_close_before_first_round_is_safe(self):
        server = make_server(FedAvg(), num_workers=2)
        server.close()

    def test_serial_executor_close_noop(self):
        server = make_server(FedAvg(), num_workers=0)
        run_to_completion(server)
        server.close()


@needs_fork
@pytest.mark.parallel
@pytest.mark.comm
class TestCodecDeterminism:
    """Lossy codecs must not break serial/parallel bitwise equality: the
    uplink draws from each client's generator and residuals travel the
    same ``client_state`` commit path as every other per-party state."""

    @pytest.mark.parametrize(
        "codec_kwargs",
        [
            dict(codec="float16"),
            dict(codec="qsgd", codec_bits=4),
            dict(codec="topk", codec_k=0.1),
            dict(codec="randk", codec_k=0.1),
        ],
        ids=lambda kw: kw["codec"],
    )
    def test_lossy_codecs_identical_across_worker_counts(self, codec_kwargs):
        reference = make_server(FedAvg(), num_workers=0, **codec_kwargs)
        run_to_completion(reference)
        for workers in (2, 4):
            server = make_server(FedAvg(), num_workers=workers, **codec_kwargs)
            run_to_completion(server)
            assert_same_run(reference, server)

    def test_scaffold_with_quantized_wire_matches(self):
        reference = make_server(Scaffold(), num_workers=0, codec="qsgd", codec_bits=8)
        run_to_completion(reference)
        server = make_server(Scaffold(), num_workers=2, codec="qsgd", codec_bits=8)
        run_to_completion(server)
        assert_same_run(reference, server)

    def test_error_feedback_residual_committed_from_workers(self):
        from repro.comm import RESIDUAL_KEY

        reference = make_server(FedAvg(), num_workers=0, codec="topk", codec_k=0.2)
        run_to_completion(reference)
        server = make_server(FedAvg(), num_workers=2, codec="topk", codec_k=0.2)
        run_to_completion(server)
        for ref_client, client in zip(reference.clients, server.clients):
            assert RESIDUAL_KEY in client.state
            np.testing.assert_array_equal(
                ref_client.state[RESIDUAL_KEY], client.state[RESIDUAL_KEY]
            )


class TestPurityContract:
    def test_client_round_wrapper_commits_state(self):
        # The compatibility wrapper = local_update + commit.
        server = make_server(Scaffold(), num_workers=0)
        client = server.clients[0]
        result = server.algorithm.client_round(
            server.model, server.global_state, client, server.config
        )
        assert "scaffold_c" in client.state
        for committed, returned in zip(
            client.state["scaffold_c"], result.client_state["scaffold_c"]
        ):
            np.testing.assert_array_equal(committed, returned)
        server.close()

    def test_local_update_does_not_touch_client_state(self):
        server = make_server(Scaffold(), num_workers=0)
        client = server.clients[0]
        payload = server.algorithm.broadcast_payload()
        server.algorithm.local_update(
            server.model, server.global_state, client, server.config, payload
        )
        assert client.state == {}
        server.close()
