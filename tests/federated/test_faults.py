"""Fault injection: dropout/straggler/crash schedules, deadline rounds,
transactional commit, and retry recovery."""

import multiprocessing

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    FaultModel,
    FedAvg,
    FederatedConfig,
    FederatedServer,
    PartyFault,
    Scaffold,
    SerialExecutor,
    make_clients,
)
from repro.federated.executor import fork_available
from repro.grad import nn
from repro.partition import HomogeneousPartitioner

pytestmark = pytest.mark.faults

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="parallel executor requires fork"
)


def toy_dataset(seed=7, n=240, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)
    x = rng.standard_normal((n, dim)).astype(np.float32)
    return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))


def make_server(num_parties=8, num_workers=0, algorithm=None, **config_kwargs):
    train = toy_dataset()
    part = HomogeneousPartitioner().partition(
        train, num_parties, np.random.default_rng(0)
    )
    defaults = dict(
        num_rounds=4, local_epochs=1, batch_size=16, lr=0.05,
        seed=11, num_workers=num_workers,
        # Force the pool on single-CPU hosts, where "auto" degrades.
        executor="parallel" if num_workers >= 2 else "auto",
    )
    defaults.update(config_kwargs)
    config = FederatedConfig(**defaults)
    clients = make_clients(part, train, seed=config.seed)
    rng = np.random.default_rng(1)
    model = nn.Sequential(
        nn.Linear(5, 16, rng=rng), nn.ReLU(), nn.Linear(16, 3, rng=rng)
    )
    return FederatedServer(
        model, algorithm or FedAvg(), clients, config, test_dataset=train
    )


def rng_states(server):
    return [c.rng.bit_generator.state for c in server.clients]


def assert_same_history(a, b):
    assert [r.to_dict() for r in a.records] == [r.to_dict() for r in b.records]


class TestFaultModel:
    def test_draws_are_pure(self):
        model = FaultModel(dropout_prob=0.3, straggler_prob=0.2,
                           straggler_factor=3.0, crash_prob=0.1, seed=5)
        first = [model.party_fault(r, p) for r in range(4) for p in range(6)]
        second = [model.party_fault(r, p) for r in range(4) for p in range(6)]
        assert first == second
        # Order independence: drawing extra parties in between changes nothing.
        model.round_faults(0, range(100))
        assert model.party_fault(2, 3) == first[2 * 6 + 3]

    def test_probabilities_respected(self):
        model = FaultModel(dropout_prob=0.25, crash_prob=0.25, seed=9)
        fates = [model.party_fault(r, p) for r in range(50) for p in range(20)]
        dropped = sum(f.dropped for f in fates) / len(fates)
        crashed = sum(f.crash_after_steps is not None for f in fates) / len(fates)
        assert dropped == pytest.approx(0.25, abs=0.03)
        assert crashed == pytest.approx(0.25, abs=0.03)

    def test_inactive_model_is_none_from_config(self):
        config = FederatedConfig()
        assert FaultModel.from_config(config) is None
        config = FederatedConfig(dropout_prob=0.1)
        assert FaultModel.from_config(config) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(dropout_prob=1.2)
        with pytest.raises(ValueError):
            FaultModel(dropout_prob=0.6, crash_prob=0.6)
        with pytest.raises(ValueError):
            FaultModel(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultModel(crash_after_steps=0)

    def test_expected_drop_rate(self):
        model = FaultModel(dropout_prob=0.2, crash_prob=0.1,
                           straggler_prob=0.5, straggler_factor=4.0)
        assert model.expected_drop_rate(None) == pytest.approx(0.3)
        # deadline above the factor: stragglers finish in time
        assert model.expected_drop_rate(5.0) == pytest.approx(0.3)
        # deadline below the factor: stragglers are lost too
        assert model.expected_drop_rate(2.0) == pytest.approx(0.3 + 0.7 * 0.5)

    def test_party_fault_ok_property(self):
        assert PartyFault().ok
        assert not PartyFault(dropped=True).ok
        assert not PartyFault(slowdown=2.0).ok
        assert not PartyFault(crash_after_steps=1).ok


class TestConfigValidation:
    def test_deadline_below_one_rejected(self):
        with pytest.raises(ValueError):
            FederatedConfig(deadline=0.5)

    def test_checkpoint_every_needs_path(self):
        with pytest.raises(ValueError):
            FederatedConfig(checkpoint_every=2)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            FederatedConfig(max_retries=-1)


class TestDropoutRounds:
    def test_run_completes_and_records_drops(self):
        server = make_server(dropout_prob=0.3, sample_fraction=0.75)
        history = server.fit()
        assert len(history) == 4
        assert history.dropped_counts.sum() > 0
        for record in history.records:
            assert sorted(record.participants + record.dropped) == sorted(record.sampled)
            assert len(record.drop_reasons) == len(record.dropped)
            assert all(reason == "dropout" for reason in record.drop_reasons)
            # downlink charged for every sampled party, uplink for completers
            assert record.bytes_down % len(record.sampled) == 0
            assert record.bytes_up == sum(record.client_bytes_up)

    def test_deadline_drops_stragglers(self):
        server = make_server(
            straggler_prob=0.5, straggler_factor=4.0, deadline=2.0,
            num_rounds=6,
        )
        history = server.fit()
        reasons = [r for rec in history.records for r in rec.drop_reasons]
        assert reasons and set(reasons) == {"deadline"}
        # Survivors all ran at nominal speed, so slowdowns record 1.0.
        for record in history.records:
            assert all(s == 1.0 for s in record.slowdowns)

    def test_deadline_above_factor_keeps_stragglers(self):
        server = make_server(
            straggler_prob=0.5, straggler_factor=2.0, deadline=3.0,
            num_rounds=3,
        )
        history = server.fit()
        assert history.dropped_counts.sum() == 0
        slowdowns = [s for rec in history.records for s in rec.slowdowns]
        assert 2.0 in slowdowns  # stragglers completed, charged slow

    def test_over_sampling_keeps_expected_participation(self):
        kwargs = dict(
            dropout_prob=0.4, sample_fraction=0.5, num_rounds=10,
            num_parties=10,
        )
        over = make_server(**kwargs).fit()
        flat = make_server(over_sample=False, **kwargs).fit()
        assert np.mean([len(r.sampled) for r in over.records]) > np.mean(
            [len(r.sampled) for r in flat.records]
        )
        # with over-sampling, mean completed participation stays near the
        # configured 5 parties; without it, near 3
        completed = np.mean([len(r.participants) for r in over.records])
        assert completed > np.mean([len(r.participants) for r in flat.records])

    def test_fault_free_run_unchanged_by_feature(self):
        # dropout_prob=0 must reproduce the pre-fault-layer run bitwise.
        baseline = make_server().fit()
        explicit = make_server(dropout_prob=0.0).fit()
        assert_same_history(baseline, explicit)
        for record in baseline.records:
            assert record.dropped == [] and record.fallback is None


class TestCrashInjection:
    def test_crash_discards_partial_work(self):
        # Crash every dispatched party: the round aggregates nothing and
        # the global model must be exactly the previous one.
        server = make_server(crash_prob=1.0, crash_after_steps=2)
        before_state = {k: v.copy() for k, v in server.global_state.items()}
        before_rng = rng_states(server)
        record = server.run_round(0)
        assert record.participants == []
        assert all(r.startswith("crash@step") for r in record.drop_reasons)
        assert np.isnan(record.train_loss)
        for key, value in server.global_state.items():
            np.testing.assert_array_equal(value, before_state[key])
        assert rng_states(server) == before_rng

    def test_crash_reason_records_step(self):
        server = make_server(crash_prob=1.0, crash_after_steps=3, local_epochs=2)
        record = server.run_round(0)
        assert set(record.drop_reasons) == {"crash@step3"}

    def test_crash_beyond_round_length_is_survived(self):
        # A party scheduled to die after more steps than the round runs
        # simply finishes — the injection only fires mid-training.
        server = make_server(crash_prob=1.0, crash_after_steps=50)
        record = server.run_round(0)
        assert record.dropped == []
        assert len(record.participants) == len(record.sampled)

    def test_crashed_party_rng_identical_to_never_sampled(self):
        # A party that crashes must leave the same generator schedule as
        # one the round never touched: later rounds stay aligned with a
        # run where the party simply dropped out.
        crashed = make_server(crash_prob=1.0, num_rounds=1).fit()
        dropped = make_server(dropout_prob=1.0, num_rounds=1).fit()
        s1 = make_server(crash_prob=1.0, num_rounds=1)
        s2 = make_server(dropout_prob=1.0, num_rounds=1)
        s1.fit()
        s2.fit()
        assert rng_states(s1) == rng_states(s2)
        assert crashed.records[0].participants == dropped.records[0].participants == []

    @needs_fork
    @pytest.mark.parallel
    def test_parallel_matches_serial_under_crashes(self):
        kwargs = dict(crash_prob=0.3, dropout_prob=0.15, num_rounds=3)
        with make_server(algorithm=Scaffold(), **kwargs) as serial:
            hs = serial.fit()
        with make_server(algorithm=Scaffold(), num_workers=3, **kwargs) as par:
            hp = par.fit()
        assert_same_history(hs, hp)
        for key in serial.global_state:
            np.testing.assert_array_equal(
                serial.global_state[key], par.global_state[key], err_msg=key
            )


class _FailsOncePerParty(FedAvg):
    """Raises once for a chosen party, then behaves normally (transient)."""

    def __init__(self, flaky_party):
        super().__init__()
        self.flaky_party = flaky_party
        self.raised = False

    def local_update(self, model, global_state, client, config, payload):
        if client.client_id == self.flaky_party and not self.raised:
            self.raised = True
            raise OSError("transient: connection reset")
        return super().local_update(model, global_state, client, config, payload)


class _FailsInWorkers(FedAvg):
    """Raises for a chosen party in every pool worker, succeeds in-parent."""

    def __init__(self, doomed_party):
        super().__init__()
        self.doomed_party = doomed_party

    def local_update(self, model, global_state, client, config, payload):
        in_worker = multiprocessing.current_process().name != "MainProcess"
        if client.client_id == self.doomed_party and in_worker:
            raise OSError("worker-side failure")
        return super().local_update(model, global_state, client, config, payload)


class TestRetryRecovery:
    def test_serial_transient_retry_matches_fault_free(self):
        clean = make_server(num_rounds=2).fit()
        flaky = make_server(num_rounds=2, algorithm=_FailsOncePerParty(2))
        history = flaky.fit()
        assert history.records[0].fallback == "retry"
        assert flaky.algorithm.raised
        # The retried run is bitwise identical apart from the fallback tag.
        for rec_clean, rec_flaky in zip(clean.records, history.records):
            d1, d2 = rec_clean.to_dict(), rec_flaky.to_dict()
            d1.pop("fallback"), d2.pop("fallback")
            assert d1 == d2

    def test_serial_exhausted_retries_raise_without_commit(self):
        class AlwaysFails(FedAvg):
            def local_update(self, *args, **kwargs):
                raise OSError("permanently broken")

        server = make_server(num_rounds=1, algorithm=AlwaysFails(), max_retries=1)
        before = rng_states(server)
        with pytest.raises(OSError):
            server.run_round(0)
        # Transactional commit: no client generator moved.
        assert rng_states(server) == before
        assert len(server.history) == 0

    def test_partial_round_failure_commits_nothing(self):
        # Party 0 succeeds, a later party fails every retry: the earlier
        # success must not have advanced any client state either.
        class LaterPartyFails(FedAvg):
            def local_update(self, model, global_state, client, config, payload):
                if client.client_id >= 4:
                    raise OSError("down")
                return super().local_update(model, global_state, client, config, payload)

        server = make_server(num_rounds=1, algorithm=LaterPartyFails())
        before = rng_states(server)
        with pytest.raises(OSError):
            server.run_round(0)
        assert rng_states(server) == before

    @needs_fork
    @pytest.mark.parallel
    def test_parallel_serial_fallback_matches_fault_free(self):
        with make_server(num_rounds=2, num_workers=2) as clean_server:
            clean = clean_server.fit()
        doomed = make_server(
            num_rounds=2, num_workers=2, algorithm=_FailsInWorkers(3)
        )
        with doomed:
            history = doomed.fit()
        assert history.records[0].fallback == "serial"
        for rec_clean, rec_doomed in zip(clean.records, history.records):
            d1, d2 = rec_clean.to_dict(), rec_doomed.to_dict()
            d1.pop("fallback"), d2.pop("fallback")
            assert d1 == d2


class TestExecutorDirect:
    def test_injected_crash_via_execute_round(self):
        server = make_server(num_rounds=1)
        executor = server.executor
        assert isinstance(executor, SerialExecutor)
        before = rng_states(server)
        execution = executor.execute_round(
            server.global_state,
            [0, 1, 2],
            faults={1: PartyFault(crash_after_steps=1)},
        )
        assert execution.completed == [0, 2]
        assert execution.failed == {1: "crash@step1"}
        assert len(execution.results) == 2
        # committed generators: only the completers moved
        after = rng_states(server)
        assert after[1] == before[1]
        assert after[0] != before[0] and after[2] != before[2]

    def test_injected_crash_is_not_retried(self):
        calls = []

        class Counting(FedAvg):
            def local_update(self, model, global_state, client, config, payload):
                calls.append(client.client_id)
                return super().local_update(model, global_state, client, config, payload)

        server = make_server(num_rounds=1, algorithm=Counting(), max_retries=3)
        server.executor.execute_round(
            server.global_state, [0], faults={0: PartyFault(crash_after_steps=1)}
        )
        assert calls == [0]  # one attempt, no retries

    def test_run_round_still_returns_bare_results(self):
        # Backward-compatible entry point used by benchmarks and examples.
        server = make_server(num_rounds=1)
        results = server.executor.run_round(server.global_state, [0, 1])
        assert [r.client_id for r in results] == [0, 1]
