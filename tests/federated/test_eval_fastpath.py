"""Fused single-pass evaluation: one forward per test batch, counted.

The server previously paid two full passes over the test set per round
(accuracy, then loss).  ``evaluate`` fuses them; these tests verify the
fusion by *counting model forwards*, check the fused numbers are bitwise
what the two independent passes produce, and pin the per-party path to a
single eval-mode toggle and one shared inference program.
"""

from types import SimpleNamespace

import numpy as np

from repro.data import ArrayDataset
from repro.data.loader import DataLoader
from repro.federated.evaluation import (
    EvalResult,
    evaluate,
    evaluate_accuracy,
    evaluate_loss,
    evaluate_per_party,
)
from repro.grad import functional as F
from repro.grad import nn
from repro.grad.capture import inference_engine
from repro.grad.tensor import Tensor, no_grad


class CountingModel(nn.Sequential):
    """Sequential that counts forwards and train/eval toggles."""

    def __init__(self, *modules):
        super().__init__(*modules)
        self.num_forwards = 0
        self.num_toggles = 0

    def forward(self, x):
        self.num_forwards += 1
        return super().forward(x)

    def train(self, mode=True):
        self.num_toggles += 1
        return super().train(mode)


def make_model():
    rng = np.random.default_rng(4)
    return CountingModel(
        nn.Linear(8, 12, rng=rng), nn.ReLU(), nn.Linear(12, 3, rng=rng)
    )


def make_dataset(n=40, seed=1):
    rng = np.random.default_rng(seed)
    features = rng.standard_normal((n, 8)).astype(np.float32)
    labels = rng.integers(0, 3, size=n).astype(np.int64)
    return ArrayDataset(features, labels)


class TestFusedPass:
    def test_matches_independent_passes_bitwise(self):
        model = make_model()
        dataset = make_dataset()
        result = evaluate(model, dataset, batch_size=16)
        assert isinstance(result, EvalResult)
        # Reference: separate accuracy and loss passes, straight off the
        # eager forward (what the server used to run twice per round).
        model.eval()
        correct = 0
        loss_sum = 0.0
        with no_grad():
            for features, labels in DataLoader(dataset, 16):
                logits = model(Tensor(features))
                correct += int((logits.data.argmax(axis=1) == labels).sum())
                loss_sum += float(
                    F.cross_entropy(logits, labels, reduction="sum").data
                )
        assert result.accuracy == correct / len(dataset)
        assert result.loss == loss_sum / len(dataset)
        assert result.num_samples == len(dataset)

    def test_wrappers_agree_with_fused_result(self):
        model = make_model()
        dataset = make_dataset()
        result = evaluate(model, dataset, batch_size=16)
        assert evaluate_accuracy(model, dataset, batch_size=16) == result.accuracy
        assert evaluate_loss(model, dataset, batch_size=16) == result.loss

    def test_exactly_one_forward_per_batch(self):
        model = make_model()
        dataset = make_dataset(n=40)  # 16 + 16 + 8: three batches
        evaluate(model, dataset, batch_size=16)
        assert model.num_forwards == 3

    def test_restores_training_mode(self):
        model = make_model()
        model.train()
        evaluate(model, make_dataset(), batch_size=16)
        assert model.training
        model.eval()
        evaluate(model, make_dataset(), batch_size=16)
        assert not model.training


class TestCompiledEval:
    def test_replays_full_batches_eagerly_runs_ragged_tail(self):
        model = make_model()
        dataset = make_dataset(n=40)  # 2 full batches + 1 ragged per pass
        first = evaluate(model, dataset, batch_size=16, compiled=True)
        second = evaluate(model, dataset, batch_size=16, compiled=True)
        assert first == second
        engine = inference_engine(model)
        assert engine.captures == 1
        # Pass one: capture + replay + eager tail; pass two: 2 replays +
        # eager tail.  Eager forwards: 1 capture + 2 ragged tails.
        assert engine.replays == 3
        assert model.num_forwards == 3

    def test_compiled_matches_eager_bitwise(self):
        model = make_model()
        dataset = make_dataset(n=40)
        eager = evaluate(model, dataset, batch_size=16)
        compiled = evaluate(model, dataset, batch_size=16, compiled=True)
        assert eager == compiled


class TestPerParty:
    @staticmethod
    def make_parties(sizes, seed=9):
        return [
            SimpleNamespace(dataset=make_dataset(n=size, seed=seed + i))
            for i, size in enumerate(sizes)
        ]

    def test_single_eval_toggle_for_all_parties(self):
        model = make_model()
        model.train()
        model.num_toggles = 0
        parties = self.make_parties([32, 32, 32])
        evaluate_per_party(model, parties, batch_size=16)
        # One eval() entering the loop, one train() restoring afterwards —
        # not a pair per party.
        assert model.num_toggles == 2
        assert model.training

    def test_parties_share_one_inference_program(self):
        model = make_model()
        parties = self.make_parties([32, 32, 32])  # full batches only
        accuracies = evaluate_per_party(model, parties, batch_size=16, compiled=True)
        engine = inference_engine(model)
        assert engine.captures == 1
        assert engine.replays == 5  # 6 batches total, first one captures
        np.testing.assert_array_equal(
            accuracies, evaluate_per_party(model, parties, batch_size=16)
        )
