"""Tests for the Section 6.1 non-IID-resistant (stratified) sampler."""

import numpy as np
import pytest

from repro.federated.sampling import StratifiedSampler
from repro.partition.stats import kl_divergence


def single_label_counts(num_parties=10, num_classes=10, per_party=50):
    """Party i holds only class i % num_classes (extreme label skew)."""
    counts = np.zeros((num_parties, num_classes))
    for party in range(num_parties):
        counts[party, party % num_classes] = per_party
    return counts


class TestValidation:
    def test_matrix_required(self):
        with pytest.raises(ValueError):
            StratifiedSampler(np.zeros(5))

    def test_nonnegative(self):
        with pytest.raises(ValueError):
            StratifiedSampler(np.array([[-1.0, 2.0]]))

    def test_nonzero(self):
        with pytest.raises(ValueError):
            StratifiedSampler(np.zeros((3, 2)))

    def test_fraction_range(self, rng):
        sampler = StratifiedSampler(single_label_counts())
        with pytest.raises(ValueError):
            sampler.sample(0.0, rng)


class TestSampling:
    def test_full_participation(self, rng):
        sampler = StratifiedSampler(single_label_counts())
        np.testing.assert_array_equal(sampler.sample(1.0, rng), np.arange(10))

    def test_count_and_uniqueness(self, rng):
        sampler = StratifiedSampler(single_label_counts(num_parties=20))
        chosen = sampler.sample(0.25, rng)
        assert len(chosen) == 5
        assert len(np.unique(chosen)) == 5

    def test_single_label_parties_get_distinct_classes(self, rng):
        # With one class per party, the KL-greedy picker must select
        # parties carrying distinct classes (that is the only way to
        # approximate the uniform global mix).
        counts = single_label_counts(num_parties=10, num_classes=10)
        sampler = StratifiedSampler(counts)
        chosen = sampler.sample(0.5, rng)
        classes = {int(counts[party].argmax()) for party in chosen}
        assert len(classes) == 5

    def test_beats_uniform_sampling_on_label_balance(self):
        from repro.federated.sampling import sample_parties

        counts = single_label_counts(num_parties=20, num_classes=10)
        sampler = StratifiedSampler(counts)
        global_mix = counts.sum(axis=0) / counts.sum()

        def pooled_kl(parties):
            pooled = counts[parties].sum(axis=0)
            return kl_divergence(global_mix, pooled / pooled.sum())

        rng = np.random.default_rng(0)
        stratified = np.mean(
            [pooled_kl(sampler.sample(0.2, rng)) for _ in range(20)]
        )
        rng = np.random.default_rng(0)
        uniform = np.mean(
            [pooled_kl(sample_parties(20, 0.2, rng)) for _ in range(20)]
        )
        assert stratified < uniform

    def test_tie_break_is_lowest_index(self):
        # Regression: with several parties tied on KL reduction, the
        # greedy picker used to follow Python set iteration (hash order);
        # ties must resolve to the lowest party index deterministically.
        counts = np.ones((6, 2))  # every party identical => all ties
        sampler = StratifiedSampler(counts)
        draws = set()
        for _ in range(10):
            rng = np.random.default_rng(3)
            draws.add(tuple(int(p) for p in sampler.sample(0.5, rng)))
        assert len(draws) == 1
        chosen = next(iter(draws))
        seed_party = int(np.random.default_rng(3).integers(6))
        # After the seed party, growth proceeds through the lowest
        # untaken indices because every candidate ties.
        expected = tuple(
            sorted([seed_party] + [p for p in range(6) if p != seed_party][:2])
        )
        assert chosen == expected

    def test_rotates_across_rounds(self):
        sampler = StratifiedSampler(single_label_counts(num_parties=10))
        rng = np.random.default_rng(0)
        draws = {tuple(sampler.sample(0.3, rng)) for _ in range(10)}
        assert len(draws) > 1  # random seed party rotates coverage


class TestServerIntegration:
    def test_stratified_run(self):
        from repro import run_federated_experiment
        from repro.experiments.scale import ScalePreset

        preset = ScalePreset(
            name="strat", n_train=300, n_test=150, num_rounds=3,
            local_epochs=2, batch_size=32,
        )
        outcome = run_federated_experiment(
            "mnist",
            "#C=1",
            "fedavg",
            preset=preset,
            num_parties=10,
            sample_fraction=0.3,
            sampler="stratified",
            seed=4,
        )
        # Every round samples 3 parties; with #C=1 those must span 3 classes.
        assert all(len(r.participants) == 3 for r in outcome.history.records)

    def test_invalid_sampler_rejected(self):
        from repro.federated import FederatedConfig

        with pytest.raises(ValueError):
            FederatedConfig(sampler="roundrobin")

    def test_empty_client_tolerated(self):
        # Regression: FederatedServer used to compute num_classes via
        # labels.max() per client, which raises on an empty party
        # (legitimate under extreme Dirichlet skew).
        from repro.data import ArrayDataset
        from repro.federated import (
            Client,
            FedAvg,
            FederatedConfig,
            FederatedServer,
        )

        x = np.random.default_rng(0).standard_normal((30, 4)).astype(np.float32)
        y = (np.arange(30) % 3).astype(np.int64)
        ds = ArrayDataset(x, y)
        clients = [
            Client(0, ds.subset(np.arange(15)), np.random.default_rng(1)),
            Client(1, ds.subset(np.arange(15, 30)), np.random.default_rng(2)),
            Client(2, ds.subset(np.array([], dtype=int)), np.random.default_rng(3)),
        ]
        from repro.grad import nn

        model = nn.Linear(4, 3, rng=np.random.default_rng(4))
        config = FederatedConfig(
            num_rounds=1, local_epochs=1, batch_size=8,
            sampler="stratified", sample_fraction=0.5,
        )
        server = FederatedServer(model, FedAvg(), clients, config)
        assert server._stratified is not None
        # The empty party contributes zero counts everywhere.
        np.testing.assert_array_equal(
            server._stratified.label_counts[2], np.zeros(3)
        )
        server.fit(1)

    def test_all_empty_clients_rejected(self):
        from repro.data import ArrayDataset
        from repro.federated import Client, FedAvg, FederatedConfig, FederatedServer
        from repro.grad import nn

        x = np.zeros((4, 2), dtype=np.float32)
        ds = ArrayDataset(x, np.zeros(4, dtype=np.int64))
        clients = [
            Client(i, ds.subset(np.array([], dtype=int)), np.random.default_rng(i))
            for i in range(2)
        ]
        model = nn.Linear(2, 2, rng=np.random.default_rng(0))
        config = FederatedConfig(sampler="stratified")
        with pytest.raises(ValueError, match="non-empty"):
            FederatedServer(model, FedAvg(), clients, config)
