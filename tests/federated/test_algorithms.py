"""Algorithm-level tests: the mathematical identities the paper implies.

Key pinned properties:
- FedProx with mu=0 is exactly FedAvg (same trajectories, bit-for-bit);
- FedNova equals FedAvg when every party takes the same number of steps;
- FedNova removes the step-count bias when parties differ;
- SCAFFOLD's control variates satisfy Algorithm 2's update identities;
- single-client federations reduce every algorithm to centralized SGD.
"""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    FedAvg,
    FedNova,
    FedOpt,
    FedProx,
    FederatedConfig,
    FederatedServer,
    Scaffold,
    make_algorithm,
    make_clients,
)
from repro.models import TabularMLP
from repro.partition import HomogeneousPartitioner, Partition, QuantitySkew


def toy_dataset(n=120, classes=3, dim=6, seed=0):
    train, _ = toy_split(n=n, classes=classes, dim=dim, seed=seed)
    return train


def toy_split(n=120, n_test=90, classes=3, dim=6, seed=0):
    """Train/test drawn from one fixed labeling function."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)

    def sample(count):
        x = rng.standard_normal((count, dim)).astype(np.float32)
        y = (x @ w).argmax(axis=1).astype(np.int64)
        return ArrayDataset(x, y)

    return sample(n), sample(n_test)


def make_setup(algorithm, num_parties=3, seed=0, partitioner=None, **config_kwargs):
    train, test = toy_split(seed=seed)
    partitioner = partitioner or HomogeneousPartitioner()
    part = partitioner.partition(train, num_parties, np.random.default_rng(seed))
    clients = make_clients(part, train, seed=seed)
    model = TabularMLP(6, 3, rng=np.random.default_rng(seed))
    defaults = dict(num_rounds=3, local_epochs=2, batch_size=16, lr=0.05, seed=seed)
    defaults.update(config_kwargs)
    config = FederatedConfig(**defaults)
    return FederatedServer(model, algorithm, clients, config, test_dataset=test)


def states_equal(a, b):
    return all(np.allclose(a[k], b[k], atol=1e-7) for k in a)


class TestMakeAlgorithm:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("fedavg", FedAvg),
            ("fedprox", FedProx),
            ("scaffold", Scaffold),
            ("fednova", FedNova),
            ("fedopt", FedOpt),
            ("FedAvg", FedAvg),
        ],
    )
    def test_builds(self, name, cls):
        assert isinstance(make_algorithm(name), cls)

    def test_kwargs_forwarded(self):
        assert make_algorithm("fedprox", mu=0.1).mu == 0.1
        assert make_algorithm("scaffold", option=1).option == 1

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_algorithm("fedsgd")

    def test_param_validation(self):
        with pytest.raises(ValueError):
            FedProx(mu=-1)
        with pytest.raises(ValueError):
            Scaffold(option=3)
        with pytest.raises(ValueError):
            FedOpt(variant="rmsprop")


class TestFedAvg:
    def test_improves_over_rounds(self):
        server = make_setup(FedAvg(), num_parties=3)
        history = server.fit(6)
        assert history.final_accuracy > 0.7

    def test_aggregation_is_weighted_average(self):
        # Two parties with sizes 10 and 30: the big one dominates 3:1.
        algo = FedAvg()

        class FakeModel:
            pass

        from repro.federated.algorithms.base import ClientResult

        algo._param_keys = ["w"]
        algo._buffer_keys = []
        algo._num_parties = 2
        results = [
            ClientResult(0, {"w": np.array([0.0])}, 5, 10, 0.0),
            ClientResult(1, {"w": np.array([4.0])}, 5, 30, 0.0),
        ]
        out = algo.aggregate({"w": np.array([9.0])}, results, FederatedConfig())
        np.testing.assert_allclose(out["w"], [3.0])

    def test_server_lr_scales_step(self):
        from repro.federated.algorithms.base import ClientResult

        algo = FedAvg()
        algo._param_keys = ["w"]
        algo._buffer_keys = []
        algo._num_parties = 1
        results = [ClientResult(0, {"w": np.array([0.0])}, 5, 10, 0.0)]
        half = algo.aggregate(
            {"w": np.array([4.0])}, results, FederatedConfig(server_lr=0.5)
        )
        np.testing.assert_allclose(half["w"], [2.0])  # halfway to the average

    def test_single_client_equals_local_training(self):
        # With one party holding everything, FedAvg round = E epochs of SGD.
        from repro.data.loader import DataLoader
        from repro.grad import Tensor, functional as F
        from repro.grad.optim import SGD

        train = toy_dataset(seed=3)
        part = Partition(indices=[np.arange(len(train))])
        clients = make_clients(part, train, seed=3)
        model = TabularMLP(6, 3, rng=np.random.default_rng(3))
        config = FederatedConfig(
            num_rounds=1, local_epochs=2, batch_size=16, lr=0.05, momentum=0.9, seed=3
        )
        server = FederatedServer(model, FedAvg(), clients, config)
        server.run_round(0)

        reference = TabularMLP(6, 3, rng=np.random.default_rng(3))
        opt = SGD(reference.parameters(), lr=0.05, momentum=0.9)
        loader = DataLoader(
            clients[0].dataset, 16, shuffle=True,
            rng=np.random.default_rng(np.random.default_rng(3).integers(2**63)),
        )
        for _ in range(2):
            for xb, yb in loader:
                opt.zero_grad()
                F.cross_entropy(reference(Tensor(xb)), yb).backward()
                opt.step()
        assert states_equal(server.global_state, reference.state_dict())


class TestFedProx:
    def test_mu_zero_equals_fedavg_exactly(self):
        avg = make_setup(FedAvg(), seed=7)
        prox = make_setup(FedProx(mu=0.0), seed=7)
        avg.fit(3)
        prox.fit(3)
        assert states_equal(avg.global_state, prox.global_state)
        np.testing.assert_allclose(
            avg.history.accuracies, prox.history.accuracies
        )

    def test_large_mu_limits_drift(self):
        from repro.metrics import state_distance

        distances = {}
        for mu in (0.0, 10.0):
            server = make_setup(FedProx(mu=mu), seed=5)
            initial = dict(server.global_state)
            server.fit(2)
            keys = [k for k, _ in server.model.named_parameters()]
            distances[mu] = state_distance(initial, server.global_state, keys)
        assert distances[10.0] < 0.5 * distances[0.0]

    def test_learns_with_moderate_mu(self):
        server = make_setup(FedProx(mu=0.01))
        assert server.fit(6).final_accuracy > 0.7


class TestFedNova:
    def test_equal_steps_equals_fedavg(self):
        # Homogeneous equal-size parties take identical step counts, so
        # normalize-then-rescale is a no-op and FedNova == FedAvg.
        avg = make_setup(FedAvg(), seed=11)
        nova = make_setup(FedNova(), seed=11)
        avg.fit(3)
        nova.fit(3)
        assert states_equal(avg.global_state, nova.global_state)

    def test_unequal_steps_differ_from_fedavg(self):
        partitioner = QuantitySkew(0.2, min_size=5)
        avg = make_setup(FedAvg(), seed=13, partitioner=partitioner)
        nova = make_setup(FedNova(), seed=13, partitioner=partitioner)
        avg.fit(2)
        nova.fit(2)
        assert not states_equal(avg.global_state, nova.global_state)

    def test_normalization_math(self):
        # Hand-computed: two parties, equal sizes, tau = 1 and 4,
        # deltas 1.0 and 4.0 -> direction = (1/2)(1/1) + (1/2)(4/4) = 1.0,
        # tau_eff = (1+4)/2 = 2.5, step = 2.5 * 1.0.
        from repro.federated.algorithms.base import ClientResult

        algo = FedNova()
        algo._param_keys = ["w"]
        algo._buffer_keys = []
        algo._num_parties = 2
        global_state = {"w": np.array([10.0])}
        results = [
            ClientResult(0, {"w": np.array([9.0])}, 1, 50, 0.0),  # delta 1, tau 1
            ClientResult(1, {"w": np.array([6.0])}, 4, 50, 0.0),  # delta 4, tau 4
        ]
        out = algo.aggregate(global_state, results, FederatedConfig())
        np.testing.assert_allclose(out["w"], [10.0 - 2.5])

    def test_zero_steps_rejected(self):
        from repro.federated.algorithms.base import ClientResult

        algo = FedNova()
        algo._param_keys = ["w"]
        algo._buffer_keys = []
        algo._num_parties = 1
        with pytest.raises(ValueError):
            algo.aggregate(
                {"w": np.zeros(1)},
                [ClientResult(0, {"w": np.zeros(1)}, 0, 10, 0.0)],
                FederatedConfig(),
            )

    def test_learns(self):
        server = make_setup(FedNova())
        assert server.fit(6).final_accuracy > 0.7


class TestScaffold:
    def test_control_variates_initialized_zero(self):
        server = make_setup(Scaffold())
        for c in server.algorithm.server_control:
            np.testing.assert_allclose(c, 0.0)

    def test_first_round_equals_fedavg(self):
        # With c = c_i = 0 the corrected gradient is the plain gradient, so
        # round 0 of SCAFFOLD matches round 0 of FedAvg exactly.
        avg = make_setup(FedAvg(), seed=17)
        sca = make_setup(Scaffold(option=2), seed=17)
        avg.fit(1)
        sca.fit(1)
        assert states_equal(avg.global_state, sca.global_state)

    def test_later_rounds_differ_from_fedavg(self):
        avg = make_setup(FedAvg(), seed=17)
        sca = make_setup(Scaffold(option=2), seed=17)
        avg.fit(3)
        sca.fit(3)
        assert not states_equal(avg.global_state, sca.global_state)

    def test_server_control_moves_after_round(self):
        server = make_setup(Scaffold(option=2))
        server.fit(1)
        total = sum(np.abs(c).sum() for c in server.algorithm.server_control)
        assert total > 0

    def test_client_control_sum_relation_option2(self):
        # Option (ii): c_i* = c_i - c + (w^t - w_i)/(tau * lr).  After the
        # first round (c_i = c = 0) this means c_i* = delta_i / (tau * lr).
        server = make_setup(Scaffold(option=2), num_parties=2, seed=19)
        initial = {k: v.copy() for k, v in server.global_state.items()}
        config = server.config
        results = []
        for client in server.clients:
            results.append(
                server.algorithm.client_round(
                    server.model, initial, client, config
                )
            )
        for client, result in zip(server.clients, results):
            param_keys = server.algorithm.param_keys
            scale = 1.0 / (result.num_steps * config.lr)
            for key, c_i in zip(param_keys, client.state["scaffold_c"]):
                expected = scale * (
                    np.asarray(initial[key], dtype=np.float64)
                    - np.asarray(result.state[key], dtype=np.float64)
                )
                np.testing.assert_allclose(c_i, expected, rtol=1e-5, atol=1e-7)

    def test_option1_uses_fullbatch_gradient(self):
        server = make_setup(Scaffold(option=1), num_parties=2, seed=19)
        server.fit(1)
        # c = (1/N) sum c_i* should equal the average full-batch gradient
        # direction scale-wise; at minimum it must be non-zero and finite.
        for c in server.algorithm.server_control:
            assert np.isfinite(c).all()
        total = sum(np.abs(c).sum() for c in server.algorithm.server_control)
        assert total > 0

    def test_both_options_learn(self):
        # SCAFFOLD's round-to-round accuracy is unstable (a paper finding),
        # so assert on the best accuracy reached rather than the last.
        for option in (1, 2):
            server = make_setup(Scaffold(option=option))
            assert server.fit(8).best_accuracy > 0.65, f"option {option}"

    def test_server_control_update_uses_total_party_count(self):
        # With sample_fraction < 1, c moves by 1/N (N = all parties), not
        # 1/|S_t| — the very property that breaks SCAFFOLD in Figure 12.
        server = make_setup(
            Scaffold(option=2), num_parties=4, sample_fraction=0.5, seed=23
        )
        server.fit(1)
        participants = server.history.records[0].participants
        assert len(participants) == 2
        # Recompute expected c from the participating clients' c_i (which
        # equal their delta_c after round one since they started at zero).
        expected = [np.zeros_like(c) for c in server.algorithm.server_control]
        for party in participants:
            for slot, c_i in zip(expected, server.clients[party].state["scaffold_c"]):
                slot += np.asarray(c_i) / 4.0
        for got, want in zip(server.algorithm.server_control, expected):
            np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-9)


class TestFedOpt:
    def test_sgdm_learns(self):
        server = make_setup(FedOpt(variant="sgdm"), seed=29, server_lr=1.0)
        assert server.fit(6).final_accuracy > 0.6

    def test_adam_learns(self):
        server = make_setup(FedOpt(variant="adam"), seed=29)
        assert server.fit(6).final_accuracy > 0.5

    def test_momentum_accumulates(self):
        server = make_setup(FedOpt(variant="sgdm"), seed=29)
        server.fit(2)
        total = sum(np.abs(v).sum() for v in server.algorithm._momentum_buf.values())
        assert total > 0


class TestFedNovaMomentumCorrection:
    def test_effective_steps_formula(self):
        from repro.federated.algorithms.fednova import effective_steps

        # No momentum: effective steps = raw steps.
        assert effective_steps(7, 0.0) == 7.0
        # One step is one step regardless of momentum.
        assert effective_steps(1, 0.9) == pytest.approx(1.0)
        # Long runs approach tau / (1 - rho) asymptotically from below.
        assert 7.0 < effective_steps(7, 0.9) < 7.0 / (1 - 0.9)

    def test_effective_steps_validation(self):
        from repro.federated.algorithms.fednova import effective_steps

        with pytest.raises(ValueError):
            effective_steps(0, 0.9)
        with pytest.raises(ValueError):
            effective_steps(5, 1.0)

    def test_corrected_variant_differs_under_heterogeneity(self):
        from repro.federated.algorithms.base import ClientResult

        global_state = {"w": np.array([10.0])}
        results = [
            ClientResult(0, {"w": np.array([9.0])}, 1, 50, 0.0),
            ClientResult(1, {"w": np.array([6.0])}, 4, 50, 0.0),
        ]

        def aggregate(correction):
            algo = FedNova(momentum_correction=correction)
            algo._param_keys = ["w"]
            algo._buffer_keys = []
            algo._num_parties = 2
            return algo.aggregate(global_state, results, FederatedConfig(momentum=0.9))

        plain = aggregate(False)["w"]
        corrected = aggregate(True)["w"]
        assert not np.allclose(plain, corrected)

    def test_corrected_equals_plain_without_momentum(self):
        from repro.federated.algorithms.base import ClientResult

        global_state = {"w": np.array([10.0])}
        results = [ClientResult(0, {"w": np.array([8.0])}, 3, 50, 0.0)]

        def aggregate(correction):
            algo = FedNova(momentum_correction=correction)
            algo._param_keys = ["w"]
            algo._buffer_keys = []
            algo._num_parties = 1
            return algo.aggregate(global_state, results, FederatedConfig(momentum=0.0))

        np.testing.assert_allclose(aggregate(False)["w"], aggregate(True)["w"])
