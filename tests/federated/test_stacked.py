"""Stacked executor: serial-vs-stacked equivalence, fallbacks, drift check.

The stacked executor's contract is bitwise identity to the serial path
(``tolerance == 0.0``) on hosts whose batched kernels run each client
slice through the same code path as the 2-D ops — which
``stacked_matmul_is_exact()`` probes.  Where the probe fails, the matrix
runs in the documented tolerance mode instead, so the equivalence suite
is meaningful on every host.
"""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    FederatedConfig,
    FederatedServer,
    StackedDriftError,
    StackedExecutor,
    make_algorithm,
    make_clients,
    make_executor,
)
from repro.federated import executor as executor_mod
from repro.grad import nn
from repro.grad.capture import stacked_matmul_is_exact
from repro.grad.optim import StackedSGD
from repro.models.cnn import PaperCNN
from repro.partition import HomogeneousPartitioner

pytestmark = pytest.mark.stacked

ALGORITHMS = ("fedavg", "fedprox", "scaffold", "fednova")

#: bitwise when the host's batched kernels are slice-exact, else the
#: documented tolerance mode (loose bound; per-step drift is ~1e-7)
EXACT = stacked_matmul_is_exact()
TOLERANCE = 0.0 if EXACT else 1e-4


def image_split(seed=5, n=256, side=16, classes=4):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 1, side, side)).astype(np.float32)
    y = rng.integers(0, classes, size=n).astype(np.int64)
    return ArrayDataset(x, y)


def tabular_split(seed=5, n=384, dim=12, classes=4):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)
    x = rng.standard_normal((n, dim)).astype(np.float32)
    return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))


def make_server(
    algorithm="fedavg",
    model_kind="mlp",
    executor="serial",
    num_parties=6,
    seed=11,
    **config_kwargs,
):
    """A server whose party sizes divide the batch size (stackable)."""
    if model_kind == "mlp":
        train = tabular_split(n=64 * num_parties)
        rng = np.random.default_rng(1)
        model = nn.Sequential(
            nn.Linear(12, 16, rng=rng), nn.ReLU(), nn.Linear(16, 4, rng=rng)
        )
    else:
        train = image_split(n=32 * num_parties)
        model = PaperCNN(num_classes=4, rng=np.random.default_rng(1))
    part = HomogeneousPartitioner().partition(
        train, num_parties, np.random.default_rng(seed)
    )
    defaults = dict(
        num_rounds=2,
        local_epochs=2,
        batch_size=16,
        lr=0.05,
        momentum=0.9,
        seed=seed,
        executor=executor,
        stack_size=4,
        stacked_tolerance=TOLERANCE,
    )
    defaults.update(config_kwargs)
    config = FederatedConfig(**defaults)
    clients = make_clients(part, train, seed=config.seed)
    return FederatedServer(
        model, make_algorithm(algorithm), clients, config, test_dataset=train
    )


def assert_states_match(serial, stacked):
    for key in serial.global_state:
        left = serial.global_state[key]
        right = stacked.global_state[key]
        if EXACT:
            np.testing.assert_array_equal(left, right, err_msg=key)
        else:
            np.testing.assert_allclose(
                left, right, atol=TOLERANCE, rtol=0, err_msg=key
            )
    for left, right in zip(serial.clients, stacked.clients):
        assert left.rng.bit_generator.state == right.rng.bit_generator.state


def run_pair(**kwargs):
    serial = make_server(executor="serial", **kwargs)
    with serial:
        serial.fit()
    stacked = make_server(executor="stacked", **kwargs)
    with stacked:
        stacked.fit()
    return serial, stacked


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mlp(self, algorithm):
        serial, stacked = run_pair(algorithm=algorithm, model_kind="mlp")
        assert_states_match(serial, stacked)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_cnn(self, algorithm):
        serial, stacked = run_pair(
            algorithm=algorithm, model_kind="cnn", num_parties=4, num_rounds=1
        )
        assert_states_match(serial, stacked)

    def test_stacked_path_actually_runs(self, monkeypatch):
        """Guard against the matrix silently passing via serial fallback."""
        ran = []
        original = StackedExecutor._train_stack

        def spy(self, records):
            ran.append(len(records))
            return original(self, records)

        monkeypatch.setattr(StackedExecutor, "_train_stack", spy)
        server = make_server(executor="stacked")
        with server:
            server.fit(1)
        assert ran, "no group ever reached the batched training phase"
        assert max(ran) >= 2


class TestFallbacks:
    def test_ragged_parties_fall_back_to_serial(self):
        """Sample counts not divisible by the batch size stay serial."""
        train = tabular_split(n=6 * 40)  # 40 % 16 != 0 for every party
        part = HomogeneousPartitioner().partition(
            train, 6, np.random.default_rng(3)
        )

        def build(executor):
            rng = np.random.default_rng(1)
            model = nn.Sequential(
                nn.Linear(12, 16, rng=rng), nn.ReLU(),
                nn.Linear(16, 4, rng=rng),
            )
            config = FederatedConfig(
                num_rounds=2, local_epochs=1, batch_size=16, lr=0.05,
                seed=7, executor=executor, stack_size=4,
            )
            clients = make_clients(part, train, seed=7)
            return FederatedServer(model, make_algorithm("fedavg"), clients, config)

        serial = build("serial")
        with serial:
            serial.fit()
        stacked = build("stacked")
        with stacked:
            stacked.fit()
        for key in serial.global_state:
            np.testing.assert_array_equal(
                serial.global_state[key], stacked.global_state[key], err_msg=key
            )

    def test_plan_groups_and_leftovers(self):
        server = make_server(executor="stacked", num_parties=6)
        executor = server.executor
        groups, serial = executor._plan(list(range(6)), None)
        assert sorted(sum(groups, serial)) == list(range(6))
        assert all(2 <= len(group) <= 4 for group in groups)

    def test_unsupported_model_falls_back_bitwise(self):
        """A model the stacked compiler rejects (batch norm) still runs."""

        def build(executor):
            train = tabular_split(n=6 * 32)
            part = HomogeneousPartitioner().partition(
                train, 6, np.random.default_rng(3)
            )
            rng = np.random.default_rng(1)
            model = nn.Sequential(
                nn.Linear(12, 16, rng=rng), nn.BatchNorm1d(16), nn.ReLU(),
                nn.Linear(16, 4, rng=rng),
            )
            config = FederatedConfig(
                num_rounds=2, local_epochs=1, batch_size=16, lr=0.05,
                seed=7, executor=executor, stack_size=4,
            )
            clients = make_clients(part, train, seed=7)
            return FederatedServer(model, make_algorithm("fedavg"), clients, config)

        serial = build("serial")
        with serial:
            serial.fit()
        stacked = build("stacked")
        with stacked:
            stacked.fit()
        for key in serial.global_state:
            np.testing.assert_array_equal(
                serial.global_state[key], stacked.global_state[key], err_msg=key
            )


class TestCodecsAndFaults:
    def test_qsgd_codec_equivalence(self):
        serial, stacked = run_pair(
            codec="qsgd", codec_bits=6, num_rounds=3, local_epochs=1
        )
        assert_states_match(serial, stacked)
        assert serial.history.records[-1].bytes_up == (
            stacked.history.records[-1].bytes_up
        )

    def test_fault_injection_equivalence(self):
        serial, stacked = run_pair(
            num_rounds=3,
            local_epochs=1,
            dropout_prob=0.25,
            straggler_prob=0.3,
            straggler_factor=2.0,
            deadline=1.5,
        )
        assert_states_match(serial, stacked)
        left = [sorted(r.participants) for r in serial.history.records]
        right = [sorted(r.participants) for r in stacked.history.records]
        assert left == right

    def test_crash_faults_stay_serial(self):
        serial, stacked = run_pair(
            num_rounds=3, local_epochs=1, crash_prob=0.4, crash_after_steps=2
        )
        assert_states_match(serial, stacked)


class TestCheckpointResume:
    def test_resume_is_bitwise(self, tmp_path):
        path = str(tmp_path / "stacked.ckpt")
        straight = make_server(executor="stacked", num_rounds=4)
        with straight:
            straight.fit(4)
        first = make_server(executor="stacked", num_rounds=4)
        with first:
            first.fit(2)
            first.save_checkpoint(path)
        resumed = make_server(executor="stacked", num_rounds=4)
        with resumed:
            resumed.resume(path)
            resumed.fit(2)
        for key in straight.global_state:
            np.testing.assert_array_equal(
                straight.global_state[key], resumed.global_state[key], err_msg=key
            )
        assert [r.to_dict() for r in straight.history.records] == [
            r.to_dict() for r in resumed.history.records
        ]


class TestDriftCheck:
    def _perturbing(self, monkeypatch, scale):
        original = StackedSGD.step

        def perturbed(self, grads):
            original(self, grads)
            for stack in self.stacks:
                if stack is not None:
                    stack += np.float32(scale)

        monkeypatch.setattr(executor_mod.StackedSGD, "step", perturbed)

    def test_divergence_raises(self, monkeypatch):
        self._perturbing(monkeypatch, 1e-3)
        server = make_server(executor="stacked", stacked_tolerance=0.0)
        with server:
            with pytest.raises(StackedDriftError):
                server.fit(1)

    def test_tolerance_bounds_drift(self, monkeypatch):
        self._perturbing(monkeypatch, 1e-3)
        # Well above the injected drift: accepted ...
        server = make_server(executor="stacked", stacked_tolerance=1.0)
        with server:
            server.fit(1)
        # ... but a tolerance below it still trips the check.
        self._perturbing(monkeypatch, 1e-3)
        server = make_server(executor="stacked", stacked_tolerance=1e-6)
        with server:
            with pytest.raises(StackedDriftError):
                server.fit(1)


class TestConstruction:
    def test_make_executor_stacked(self):
        config = FederatedConfig(
            executor="stacked", stack_size=8, stacked_tolerance=0.5
        )
        executor = make_executor(config)
        assert isinstance(executor, StackedExecutor)
        assert executor.stack_size == 8
        assert executor.tolerance == 0.5

    def test_make_executor_unknown_name(self):
        config = FederatedConfig()
        config.executor = "bogus"
        with pytest.raises(ValueError, match="unknown executor 'bogus'"):
            make_executor(config)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="stack_size"):
            StackedExecutor(stack_size=1)
        with pytest.raises(ValueError, match="tolerance"):
            StackedExecutor(tolerance=-0.1)

    def test_config_validates_stacked_fields(self):
        with pytest.raises(ValueError, match="stack_size"):
            FederatedConfig(stack_size=1)
        with pytest.raises(ValueError, match="stacked_tolerance"):
            FederatedConfig(stacked_tolerance=-1.0)

    def test_repr(self):
        assert "stack_size=4" in repr(StackedExecutor(stack_size=4))
