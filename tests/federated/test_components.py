"""Tests for FL building blocks: config, clients, sampling, aggregation,
history, evaluation."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import Client, FederatedConfig, History, RoundRecord, make_clients
from repro.federated.aggregation import (
    apply_update,
    merge_states,
    subtract_states,
    weighted_average_states,
)
from repro.federated.evaluation import evaluate_accuracy, evaluate_loss
from repro.federated.sampling import sample_parties
from repro.partition import HomogeneousPartitioner


def small_dataset(n=40, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.standard_normal((n, 3)).astype(np.float32),
        (np.arange(n) % classes).astype(np.int64),
    )


class TestConfig:
    def test_defaults_match_paper(self):
        config = FederatedConfig()
        assert config.local_epochs == 10
        assert config.batch_size == 64
        assert config.momentum == 0.9
        assert config.sample_fraction == 1.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_rounds", 0),
            ("local_epochs", -1),
            ("batch_size", 0),
            ("lr", 0.0),
            ("sample_fraction", 0.0),
            ("sample_fraction", 1.5),
            ("server_lr", 0.0),
            ("bn_policy", "weird"),
            ("eval_every", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            FederatedConfig(**{field: value})


class TestClient:
    def test_properties(self, rng):
        client = Client(3, small_dataset(), rng)
        assert client.client_id == 3
        assert client.num_samples == 40

    def test_empty_dataset_permitted(self, rng):
        # Legitimate under extreme Dirichlet skew; make_clients gates
        # construction, the server treats them as zero-count parties.
        ds = small_dataset()
        client = Client(0, ds.subset(np.array([], dtype=int)), rng)
        assert client.num_samples == 0

    def test_label_distribution(self, rng):
        client = Client(0, small_dataset(classes=4), rng)
        np.testing.assert_allclose(client.label_distribution(4), [0.25] * 4)

    def test_loader_respects_batch_size(self, rng):
        client = Client(0, small_dataset(), rng)
        batches = list(client.loader(16))
        assert [len(y) for _, y in batches] == [16, 16, 8]

    def test_make_clients_from_partition(self, rng):
        ds = small_dataset()
        part = HomogeneousPartitioner().partition(ds, 4, rng)
        clients = make_clients(part, ds, seed=1)
        assert len(clients) == 4
        assert sum(c.num_samples for c in clients) == 40

    def test_make_clients_deterministic(self, rng):
        ds = small_dataset()
        part = HomogeneousPartitioner().partition(ds, 4, rng)
        a = make_clients(part, ds, seed=1)
        b = make_clients(part, ds, seed=1)
        for ca, cb in zip(a, b):
            xa, _ = next(iter(ca.loader(8)))
            xb, _ = next(iter(cb.loader(8)))
            np.testing.assert_array_equal(xa, xb)

    def test_make_clients_empty_party_raises(self):
        from repro.partition import Partition

        ds = small_dataset()
        part = Partition(
            indices=[np.arange(40), np.array([], dtype=int)],
        )
        with pytest.raises(ValueError):
            make_clients(part, ds, drop_empty=False)
        clients = make_clients(part, ds, drop_empty=True)
        assert len(clients) == 1


class TestSampling:
    def test_full_participation_ordered(self, rng):
        np.testing.assert_array_equal(sample_parties(5, 1.0, rng), np.arange(5))

    def test_fraction_count(self, rng):
        assert len(sample_parties(100, 0.1, rng)) == 10

    def test_at_least_one(self, rng):
        assert len(sample_parties(3, 0.01, rng)) == 1

    def test_no_duplicates(self, rng):
        sampled = sample_parties(100, 0.5, rng)
        assert len(np.unique(sampled)) == len(sampled)

    def test_varies_across_calls(self):
        gen = np.random.default_rng(0)
        draws = {tuple(sample_parties(20, 0.25, gen)) for _ in range(10)}
        assert len(draws) > 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            sample_parties(0, 0.5, rng)
        with pytest.raises(ValueError):
            sample_parties(10, 0.0, rng)
        with pytest.raises(ValueError):
            sample_parties(10, 1.0001, rng)


class TestAggregation:
    def test_weighted_average_basic(self):
        states = [{"w": np.array([0.0, 0.0])}, {"w": np.array([2.0, 4.0])}]
        out = weighted_average_states(states, [1, 1])
        np.testing.assert_allclose(out["w"], [1.0, 2.0])

    def test_weights_normalized(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([10.0])}]
        out = weighted_average_states(states, [30, 10])
        np.testing.assert_allclose(out["w"], [2.5])

    def test_respects_key_subset(self):
        states = [{"a": np.ones(2), "b": np.zeros(2)}] * 2
        out = weighted_average_states(states, [1, 1], keys=["a"])
        assert "b" not in out

    def test_integer_buffers_cast_back(self):
        states = [
            {"n": np.asarray(3, dtype=np.int64)},
            {"n": np.asarray(5, dtype=np.int64)},
        ]
        out = weighted_average_states(states, [1, 1])
        assert out["n"].dtype == np.int64
        assert out["n"] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_average_states([], [])
        with pytest.raises(ValueError):
            weighted_average_states([{"w": np.ones(1)}], [1, 2])
        with pytest.raises(ValueError):
            weighted_average_states([{"w": np.ones(1)}] * 2, [0, 0])
        with pytest.raises(ValueError):
            weighted_average_states([{"w": np.ones(1)}] * 2, [-1, 2])

    def test_subtract_states(self):
        delta = subtract_states({"w": np.array([3.0])}, {"w": np.array([1.0])}, ["w"])
        np.testing.assert_allclose(delta["w"], [2.0])

    def test_apply_update(self):
        state = {"w": np.array([1.0], dtype=np.float32), "b": np.array([5.0])}
        out = apply_update(state, {"w": np.array([2.0])}, lr=0.5)
        np.testing.assert_allclose(out["w"], [0.0])
        np.testing.assert_allclose(out["b"], [5.0])
        assert out["w"].dtype == np.float32

    def test_merge_states(self):
        base = {"a": np.zeros(2), "b": np.zeros(2)}
        overlay = {"a": np.ones(2), "b": np.ones(2)}
        out = merge_states(base, overlay, ["b"])
        np.testing.assert_allclose(out["a"], 0.0)
        np.testing.assert_allclose(out["b"], 1.0)


class TestHistory:
    def make_history(self, accs):
        h = History()
        for i, a in enumerate(accs):
            h.append(RoundRecord(i, a, train_loss=1.0, participants=[0]))
        return h

    def test_final_and_best(self):
        h = self.make_history([0.3, 0.8, 0.6])
        assert h.final_accuracy == 0.6
        assert h.best_accuracy == 0.8

    def test_skipped_evals_are_nan(self):
        h = self.make_history([0.3, None, 0.6])
        acc = h.accuracies
        assert np.isnan(acc[1])
        assert h.final_accuracy == 0.6

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            self.make_history([]).final_accuracy

    def test_instability_metric(self):
        flat = self.make_history([0.5, 0.5, 0.5])
        wild = self.make_history([0.1, 0.9, 0.1])
        assert flat.accuracy_instability() == 0.0
        assert wild.accuracy_instability() == pytest.approx(0.8)

    def test_curve_drops_nan(self):
        h = self.make_history([0.3, None, 0.6])
        rounds, accs = h.curve()
        np.testing.assert_array_equal(rounds, [0, 2])
        np.testing.assert_allclose(accs, [0.3, 0.6])

    def test_to_dict_roundtrippable(self):
        h = self.make_history([0.5])
        data = h.to_dict()
        assert data["records"][0]["test_accuracy"] == 0.5

    def test_from_dict_json_roundtrip(self):
        import json

        h = History()
        h.append(
            RoundRecord(
                0, 0.5, train_loss=1.25, participants=[0, 2],
                bytes_communicated=1000, client_steps=[3, 4],
                bytes_down=600, bytes_up=400,
            )
        )
        h.append(RoundRecord(1, None, train_loss=1.0, participants=[1]))
        reloaded = History.from_dict(json.loads(json.dumps(h.to_dict())))
        assert [r.to_dict() for r in reloaded.records] == [
            r.to_dict() for r in h.records
        ]
        np.testing.assert_array_equal(
            reloaded.cumulative_communication(), h.cumulative_communication()
        )

    def test_from_dict_tolerates_records_without_byte_split(self):
        # Stores written before bytes_down/bytes_up existed must reload.
        data = {
            "records": [
                {
                    "round": 0,
                    "test_accuracy": 0.4,
                    "train_loss": 1.0,
                    "participants": [0],
                    "bytes_communicated": 80,
                    "client_steps": [2],
                }
            ]
        }
        record = History.from_dict(data).records[0]
        assert record.bytes_communicated == 80
        assert record.bytes_down == 0 and record.bytes_up == 0


class TestEvaluation:
    def test_perfect_model(self, rng):
        from repro.grad import nn

        # A fixed linear model that predicts class = argmax of input.
        ds = ArrayDataset(
            np.eye(3, dtype=np.float32), np.arange(3, dtype=np.int64)
        )
        model = nn.Linear(3, 3, rng=rng)
        model.weight.data = np.eye(3, dtype=np.float32) * 10
        model.bias.data = np.zeros(3, dtype=np.float32)
        assert evaluate_accuracy(model, ds) == 1.0

    def test_empty_dataset_rejected(self, rng):
        from repro.grad import nn

        ds = small_dataset().subset(np.array([], dtype=int))
        with pytest.raises(ValueError):
            evaluate_accuracy(nn.Linear(3, 4, rng=rng), ds)

    def test_restores_training_mode(self, rng):
        from repro.grad import nn

        model = nn.Sequential(nn.Linear(3, 4, rng=rng))
        model.train()
        evaluate_accuracy(model, small_dataset())
        assert model.training

    def test_loss_positive(self, rng):
        from repro.grad import nn

        loss = evaluate_loss(nn.Linear(3, 4, rng=rng), small_dataset())
        assert loss > 0
