"""Tests for the differential-privacy extension (paper Section 6.1)."""

import math

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    DifferentialPrivacy,
    FedAvg,
    FederatedConfig,
    FederatedServer,
    approximate_epsilon,
    make_clients,
)
from repro.federated.privacy import add_noise, clip_gradients
from repro.grad import nn
from repro.partition import HomogeneousPartitioner


class TestConfigValidation:
    def test_clip_norm_positive(self):
        with pytest.raises(ValueError):
            DifferentialPrivacy(clip_norm=0.0)

    def test_noise_nonnegative(self):
        with pytest.raises(ValueError):
            DifferentialPrivacy(noise_multiplier=-1.0)

    def test_defaults(self):
        dp = DifferentialPrivacy()
        assert dp.clip_norm == 1.0
        assert dp.noise_multiplier == 1.0


class TestClipping:
    def test_small_gradients_untouched(self):
        grads = [np.array([0.3, 0.4])]  # norm 0.5
        norm = clip_gradients(grads, clip_norm=1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(grads[0], [0.3, 0.4])

    def test_large_gradients_scaled_to_bound(self):
        grads = [np.array([3.0, 4.0])]  # norm 5
        clip_gradients(grads, clip_norm=1.0)
        assert np.linalg.norm(grads[0]) == pytest.approx(1.0)

    def test_joint_norm_over_parameter_groups(self):
        grads = [np.array([3.0]), np.array([4.0])]
        clip_gradients(grads, clip_norm=2.5)
        joint = math.sqrt(sum(float((g**2).sum()) for g in grads))
        assert joint == pytest.approx(2.5)

    def test_zero_gradient_safe(self):
        grads = [np.zeros(3)]
        assert clip_gradients(grads, 1.0) == 0.0


class TestNoise:
    def test_zero_multiplier_is_noop(self, rng):
        grads = [np.ones(4)]
        add_noise(grads, clip_norm=1.0, noise_multiplier=0.0, batch_size=8, rng=rng)
        np.testing.assert_allclose(grads[0], 1.0)

    def test_noise_scale(self):
        gen = np.random.default_rng(0)
        grads = [np.zeros(100_000, dtype=np.float64)]
        add_noise(grads, clip_norm=2.0, noise_multiplier=1.5, batch_size=4, rng=gen)
        expected_std = 1.5 * 2.0 / 4
        assert grads[0].std() == pytest.approx(expected_std, rel=0.05)


class TestEpsilon:
    def test_stronger_noise_smaller_epsilon(self):
        weak = approximate_epsilon(100, 0.1, noise_multiplier=0.5)
        strong = approximate_epsilon(100, 0.1, noise_multiplier=4.0)
        assert strong < weak

    def test_more_steps_larger_epsilon(self):
        few = approximate_epsilon(10, 0.1, 1.0)
        many = approximate_epsilon(1000, 0.1, 1.0)
        assert many > few

    def test_zero_noise_infinite(self):
        assert approximate_epsilon(10, 0.1, 0.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            approximate_epsilon(0, 0.1, 1.0)
        with pytest.raises(ValueError):
            approximate_epsilon(10, 0.0, 1.0)
        with pytest.raises(ValueError):
            approximate_epsilon(10, 0.1, 1.0, delta=2.0)


class TestDPTraining:
    def make_server(self, dp, seed=0):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((5, 2)).astype(np.float32)
        x = rng.standard_normal((120, 5)).astype(np.float32)
        ds = ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))
        part = HomogeneousPartitioner().partition(ds, 3, rng)
        clients = make_clients(part, ds, seed=seed)
        model = nn.Sequential(nn.Linear(5, 2, rng=rng))
        config = FederatedConfig(
            num_rounds=3, local_epochs=2, batch_size=20, lr=0.1, seed=seed, dp=dp
        )
        return FederatedServer(model, FedAvg(), clients, config, test_dataset=ds)

    def test_dp_training_runs_and_learns(self):
        dp = DifferentialPrivacy(clip_norm=1.0, noise_multiplier=0.2, seed=1)
        server = self.make_server(dp)
        history = server.fit()
        assert history.final_accuracy > 0.6

    def test_dp_changes_trajectory(self):
        clean = self.make_server(None, seed=2)
        noisy = self.make_server(
            DifferentialPrivacy(clip_norm=0.5, noise_multiplier=1.0, seed=2), seed=2
        )
        clean.fit(2)
        noisy.fit(2)
        key = next(iter(clean.global_state))
        assert not np.allclose(clean.global_state[key], noisy.global_state[key])

    def test_dp_deterministic_given_seed(self):
        dp = DifferentialPrivacy(clip_norm=1.0, noise_multiplier=0.5, seed=5)
        a = self.make_server(dp, seed=3)
        b = self.make_server(dp, seed=3)
        a.fit(2)
        b.fit(2)
        for key in a.global_state:
            np.testing.assert_array_equal(a.global_state[key], b.global_state[key])

    def test_heavy_noise_hurts_accuracy(self):
        gentle = self.make_server(
            DifferentialPrivacy(clip_norm=1.0, noise_multiplier=0.1, seed=4), seed=4
        )
        harsh = self.make_server(
            DifferentialPrivacy(clip_norm=1.0, noise_multiplier=20.0, seed=4), seed=4
        )
        gentle_acc = gentle.fit(3).final_accuracy
        harsh_acc = harsh.fit(3).final_accuracy
        assert gentle_acc > harsh_acc - 0.05  # harsh should not be better
