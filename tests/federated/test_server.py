"""Server loop mechanics: determinism, evaluation cadence, BN policies."""

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    FedAvg,
    FederatedConfig,
    FederatedServer,
    make_clients,
)
from repro.grad import nn
from repro.partition import HomogeneousPartitioner


def toy_split(seed=0, n=90, n_test=60, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)

    def sample(count):
        x = rng.standard_normal((count, dim)).astype(np.float32)
        return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))

    return sample(n), sample(n_test)


def bn_model(seed=0, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.Linear(dim, 8, rng=rng), nn.BatchNorm1d(8), nn.ReLU(), nn.Linear(8, classes, rng=rng)
    )


def make_server(seed=0, num_parties=3, model=None, **config_kwargs):
    train, test = toy_split(seed)
    part = HomogeneousPartitioner().partition(train, num_parties, np.random.default_rng(seed))
    clients = make_clients(part, train, seed=seed)
    if model is None:
        rng = np.random.default_rng(seed)
        model = nn.Sequential(nn.Linear(5, 16, rng=rng), nn.ReLU(), nn.Linear(16, 3, rng=rng))
    defaults = dict(num_rounds=3, local_epochs=2, batch_size=16, lr=0.05, seed=seed)
    defaults.update(config_kwargs)
    return FederatedServer(model, FedAvg(), clients, FederatedConfig(**defaults), test_dataset=test)


class TestServerMechanics:
    def test_requires_clients(self):
        train, test = toy_split()
        with pytest.raises(ValueError):
            FederatedServer(bn_model(), FedAvg(), [], FederatedConfig())

    def test_runs_config_round_count(self):
        server = make_server(num_rounds=4)
        history = server.fit()
        assert len(history) == 4

    def test_fit_is_resumable(self):
        server = make_server()
        server.fit(2)
        server.fit(2)
        assert [r.round_index for r in server.history.records] == [0, 1, 2, 3]

    def test_identical_seeds_identical_runs(self):
        a = make_server(seed=3)
        b = make_server(seed=3)
        a.fit(3)
        b.fit(3)
        for key in a.global_state:
            np.testing.assert_array_equal(a.global_state[key], b.global_state[key])
        np.testing.assert_allclose(a.history.accuracies, b.history.accuracies)

    def test_different_seeds_differ(self):
        a = make_server(seed=3)
        b = make_server(seed=4)
        a.fit(2)
        b.fit(2)
        key = next(iter(a.global_state))
        assert not np.array_equal(a.global_state[key], b.global_state[key])

    def test_eval_every_skips_rounds(self):
        server = make_server(num_rounds=4, eval_every=2)
        history = server.fit()
        evals = [r.test_accuracy is not None for r in history.records]
        assert evals == [False, True, False, True]

    def test_round_callback_invoked(self):
        seen = []
        server = make_server()
        server.round_callback = lambda idx, srv: seen.append(idx)
        server.fit(3)
        assert seen == [0, 1, 2]

    def test_no_test_dataset_records_loss_only(self):
        server = make_server()
        server.test_dataset = None
        history = server.fit(2)
        assert all(r.test_accuracy is None for r in history.records)
        assert all(np.isfinite(r.train_loss) for r in history.records)

    def test_evaluate_without_dataset_raises(self):
        server = make_server()
        server.test_dataset = None
        with pytest.raises(ValueError):
            server.evaluate()

    def test_partial_participation_recorded(self):
        server = make_server(num_parties=4, sample_fraction=0.5)
        record = server.run_round(0)
        assert len(record.participants) == 2

    def test_global_state_independent_of_workspace(self):
        # Mutating the workspace model after a round must not corrupt the
        # recorded global state (state dicts are copies).
        server = make_server()
        server.fit(1)
        key = next(iter(server.global_state))
        before = server.global_state[key].copy()
        for param in server.model.parameters():
            param.data += 100.0
        np.testing.assert_array_equal(server.global_state[key], before)


class TestBNPolicies:
    def test_average_policy_broadcasts_buffers(self):
        model = bn_model()
        server = make_server(model=model, bn_policy="average")
        server.fit(2)
        # Global state's BN buffers moved away from init (0 mean, 1 var).
        mean_key = [k for k in server.global_state if k.endswith("running_mean")][0]
        assert np.abs(server.global_state[mean_key]).sum() > 0

    def test_local_policy_keeps_party_bn_state(self):
        model = bn_model()
        server = make_server(model=model, bn_policy="local")
        server.fit(2)
        # Every client stashed its own BN entries.
        for client in server.clients:
            assert "bn_local" in client.state
        # And party BN statistics differ across parties.
        mean_key = [k for k in server.global_state if k.endswith("running_mean")][0]
        party = server.clients[0].state["bn_local"][mean_key]
        other = server.clients[1].state["bn_local"][mean_key]
        assert not np.allclose(party, other)

    def test_policies_diverge(self):
        a = make_server(model=bn_model(), bn_policy="average", seed=5)
        b = make_server(model=bn_model(), bn_policy="local", seed=5)
        a.fit(3)
        b.fit(3)
        # Learned parameters end up different because parties normalized
        # with different statistics from round 2 on.
        key = [k for k in a.global_state if k.endswith("0.weight")][0]
        assert not np.allclose(a.global_state[key], b.global_state[key])
