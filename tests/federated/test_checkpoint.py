"""Checkpoint/resume: a resumed run must be bitwise identical to the
uninterrupted one — global state, history, and every generator schedule."""

import os
import pickle

import numpy as np
import pytest

from repro.data import ArrayDataset
from repro.federated import (
    FedAvg,
    FedOpt,
    FederatedConfig,
    FederatedServer,
    Scaffold,
    make_clients,
)
from repro.federated.executor import fork_available
from repro.federated.server import CHECKPOINT_FORMAT
from repro.grad import nn
from repro.partition import HomogeneousPartitioner

pytestmark = pytest.mark.faults

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="parallel executor requires fork"
)


def toy_dataset(seed=3, n=240, dim=5, classes=3):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((dim, classes)).astype(np.float32)
    x = rng.standard_normal((n, dim)).astype(np.float32)
    return ArrayDataset(x, (x @ w).argmax(axis=1).astype(np.int64))


def make_server(algorithm=None, num_parties=6, num_workers=0, **config_kwargs):
    train = toy_dataset()
    part = HomogeneousPartitioner().partition(
        train, num_parties, np.random.default_rng(0)
    )
    defaults = dict(
        num_rounds=6, local_epochs=1, batch_size=16, lr=0.05,
        seed=23, num_workers=num_workers,
        # Force the pool on single-CPU hosts, where "auto" degrades.
        executor="parallel" if num_workers >= 2 else "auto",
    )
    defaults.update(config_kwargs)
    config = FederatedConfig(**defaults)
    clients = make_clients(part, train, seed=config.seed)
    rng = np.random.default_rng(1)
    model = nn.Sequential(
        nn.Linear(5, 16, rng=rng), nn.ReLU(), nn.Linear(16, 3, rng=rng)
    )
    return FederatedServer(
        model, algorithm or FedAvg(), clients, config, test_dataset=train
    )


def assert_bitwise_equal(uninterrupted, resumed):
    assert [r.to_dict() for r in uninterrupted.history.records] == [
        r.to_dict() for r in resumed.history.records
    ]
    for key in uninterrupted.global_state:
        np.testing.assert_array_equal(
            uninterrupted.global_state[key], resumed.global_state[key], err_msg=key
        )
    for left, right in zip(uninterrupted.clients, resumed.clients):
        assert left.rng.bit_generator.state == right.rng.bit_generator.state


def roundtrip(tmp_path, make, split=3, total=6):
    """Run ``total`` rounds straight, and again with a save/load at ``split``."""
    path = str(tmp_path / "run.ckpt")
    straight = make()
    with straight:
        straight.fit(total)
    first = make()
    with first:
        first.fit(split)
        first.save_checkpoint(path)
    second = make()
    with second:
        second.resume(path)
        assert len(second.history) == split
        second.fit(total - split)
    assert_bitwise_equal(straight, second)
    return straight, second


class TestResumeBitwise:
    def test_fedavg_serial(self, tmp_path):
        roundtrip(tmp_path, make_server)

    def test_with_sampling_and_dropout(self, tmp_path):
        # The sampler generator and the pure fault schedule must both
        # survive the checkpoint: sampled/dropped sets line up per round.
        roundtrip(
            tmp_path,
            lambda: make_server(sample_fraction=0.5, dropout_prob=0.3),
        )

    def test_scaffold_control_variates(self, tmp_path):
        straight, resumed = roundtrip(tmp_path, lambda: make_server(Scaffold()))
        for left, right in zip(
            straight.algorithm.server_control, resumed.algorithm.server_control
        ):
            np.testing.assert_array_equal(left, right)

    def test_fedopt_moments(self, tmp_path):
        roundtrip(tmp_path, lambda: make_server(FedOpt(variant="adam")))

    def test_topk_error_feedback_residuals(self, tmp_path):
        # topk keeps per-party residuals in client.state and incremental
        # broadcast state in the channel; both must round-trip.
        roundtrip(
            tmp_path,
            lambda: make_server(codec="topk", codec_k=0.25),
        )

    def test_qsgd_downlink_rng(self, tmp_path):
        roundtrip(
            tmp_path,
            lambda: make_server(codec="qsgd", codec_bits=4),
        )

    @needs_fork
    @pytest.mark.parallel
    def test_parallel_executor(self, tmp_path):
        roundtrip(tmp_path, lambda: make_server(num_workers=2))

    @needs_fork
    @pytest.mark.parallel
    def test_serial_checkpoint_resumed_in_parallel(self, tmp_path):
        # Executors are bitwise interchangeable, so a checkpoint written
        # by a serial run must resume identically under the pool.
        path = str(tmp_path / "run.ckpt")
        with make_server() as straight:
            straight.fit(6)
        with make_server() as first:
            first.fit(3)
            first.save_checkpoint(path)
        with make_server(num_workers=2) as second:
            second.resume(path)
            second.fit(3)
        assert_bitwise_equal(straight, second)


class TestPeriodicCheckpoint:
    def test_autosave_during_fit(self, tmp_path):
        path = str(tmp_path / "auto.ckpt")
        server = make_server(checkpoint_every=2, checkpoint_path=path)
        server.fit(3)
        payload = pickle.loads(open(path, "rb").read())
        assert payload["rounds_completed"] == 2  # last multiple of 2
        # no stray temp file left behind
        assert not os.path.exists(path + ".tmp")
        # resuming the autosave continues to the same end state
        straight = make_server()
        straight.fit(6)
        resumed = make_server(checkpoint_every=2, checkpoint_path=path)
        resumed.resume(path)
        resumed.fit(4)
        assert_bitwise_equal(straight, resumed)


class TestValidation:
    def test_algorithm_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        server = make_server(Scaffold())
        server.fit(1)
        server.save_checkpoint(path)
        other = make_server(FedAvg())
        with pytest.raises(ValueError, match="algorithm"):
            other.resume(path)

    def test_party_count_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        server = make_server(num_parties=6)
        server.fit(1)
        server.save_checkpoint(path)
        other = make_server(num_parties=4)
        with pytest.raises(ValueError, match="parties"):
            other.resume(path)

    def test_unknown_format_rejected(self, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"format": CHECKPOINT_FORMAT + 1}, handle)
        with pytest.raises(ValueError, match="format"):
            make_server().resume(path)

    def test_model_keys_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        server = make_server()
        server.fit(1)
        server.save_checkpoint(path)
        train = toy_dataset()
        part = HomogeneousPartitioner().partition(
            train, 6, np.random.default_rng(0)
        )
        clients = make_clients(part, train, seed=23)
        different = nn.Sequential(nn.Linear(5, 3, rng=np.random.default_rng(1)))
        other = FederatedServer(
            different, FedAvg(), clients,
            FederatedConfig(num_rounds=6, local_epochs=1, batch_size=16, seed=23),
        )
        with pytest.raises(ValueError, match="keys"):
            other.resume(path)
